#!/usr/bin/env python
"""Fail if internal code passes the deprecated execution-knob keywords.

Since PR 8 the execution knobs travel as one
:class:`repro.kernels.ExecutionOptions` object; the legacy ``sparse_mode=`` /
``backend=`` keywords on the shimmed surfaces (``DEFAAttention``,
``DEFAEncoderRunner``, ``defa_forward_fn`` and the ``forward_detailed``
methods) only remain for *external* callers, routed through
``normalize_execution_options`` with a ``DeprecationWarning``.  This checker
walks the ASTs under ``src/repro/`` and exits non-zero on any internal call
that still uses them, keeping the old surface external-only.

Run directly (CI lint job) or through ``tests/test_no_deprecated_kwargs.py``
(tier-1).  Other functions are free to have their own ``sparse_mode``/
``backend`` parameters (e.g. ``use_sparse_rows``) — only calls whose callee
name is one of the shimmed surfaces are flagged.

``machine_profile`` (PR 9) never had a loose-keyword shim — it is an
``ExecutionOptions`` field only — and this checker keeps it that way: an
internal ``machine_profile=`` keyword on a shimmed surface would be a new
loose knob sneaking in, so it is flagged exactly like the legacy ones.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Callee names whose calls must not pass the deprecated keywords.  Both
#: plain names (``DEFAAttention(...)``) and attribute access
#: (``runner.defa_layers[0].forward_detailed(...)``) are matched by the
#: final name segment.
SHIMMED_CALLEES = frozenset(
    {"DEFAAttention", "DEFAEncoderRunner", "defa_forward_fn", "forward_detailed"}
)

#: The keywords that moved into ``ExecutionOptions`` — plus
#: ``machine_profile``, which is options-only by construction (PR 9).
DEPRECATED_KEYWORDS = frozenset({"sparse_mode", "backend", "machine_profile"})


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def find_violations(path: Path) -> list[tuple[Path, int, str, str]]:
    """``(file, line, callee, keyword)`` for every deprecated-keyword call."""
    violations = []
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_name(node)
        if callee not in SHIMMED_CALLEES:
            continue
        for keyword in node.keywords:
            if keyword.arg in DEPRECATED_KEYWORDS:
                violations.append((path, node.lineno, callee, keyword.arg))
    return violations


def main(root: str = "src/repro") -> int:
    base = Path(root)
    if not base.is_dir():
        print(f"error: {base} is not a directory", file=sys.stderr)
        return 2
    violations = []
    for path in sorted(base.rglob("*.py")):
        violations.extend(find_violations(path))
    for path, lineno, callee, keyword in violations:
        print(
            f"{path}:{lineno}: {callee}(... {keyword}=...) — internal code must "
            f"pass options=ExecutionOptions(...) (see repro/kernels/options.py)"
        )
    if violations:
        print(f"\n{len(violations)} deprecated-keyword call(s) under {base}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
