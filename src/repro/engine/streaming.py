"""Streaming encoder sessions: temporal reuse across video frames (PR 8).

The DEFA algorithm prunes *within* one image: FWP masks flow block to block,
and under query pruning a pruned pixel's row leaves the whole encoder block
frozen (PR 4).  A video stream adds a second axis of redundancy — most
pixels do not change between consecutive frames.
:class:`StreamingEncoderSession` carries encoder state frame to frame and
extends the same frozen-row convention across *frames*:

* **Warm-started FWP masks.**  The prune trajectory of the last cold
  (keyframe) forward is cached; warm frames intersect it with the frame's
  temporally-dirty set, so a pixel skips a block unless it both changed
  recently *and* survived the keyframe's frequency-based pruning.
* **Cross-frame frozen rows.**  Rows outside the dirty set are excluded from
  every block's mask, leave the whole encoder frozen at their input (the PR
  4 convention, unchanged), and their *output* rows are patched from the
  previous frame's encoded memory — temporally static pixels skip whole
  blocks between frames and reuse their last computed encoding, the
  video-codec P-frame idea applied to encoder blocks.
* **Trace reuse under small motion.**  Sampling offsets are linear in the
  query row (``offsets = query @ W + b``), so ``max|Δoffsets| <= off_gain *
  max|Δfeatures|`` with ``off_gain`` the induced norm of the offset
  projections.  When no row is dirty and that bound stays within
  ``trace_reuse_tol``, the compact sampling trace of the previous frame
  would be reproduced (range narrowing keeps every offset inside the same
  bounded window), and the session skips the forward entirely, returning
  the previous frame's memory.  With the exact defaults (tolerances 0.0)
  this fires precisely on bit-identical frames.
* **Warm arenas.**  A stream has one pyramid signature for its lifetime, so
  the session's :class:`~repro.core.encoder_runner.DEFAEncoderRunner` keeps
  reusing the same :class:`~repro.kernels.ExecutionPlan` arenas frame after
  frame: ``plan_stats()`` shows hits climbing while bytes plateau.

Equivalence discipline (the PR 4 trajectory-sensitivity rules): a warm frame
*by design* prunes differently than a cold start — masks are algorithm
decisions, so warm-vs-cold end-to-end diffs are diagnostics, not gates.  The
gated probe is lockstep and blockwise
(:func:`repro.eval.profiler.measure_streaming_blockwise_equivalence`): both
execution paths replay the exact per-block masks a warm frame recorded, so
any drift measured is pure execution-path drift under the usual tolerances
(fp32 1e-5, INT12 a few quantization steps).

Cold starts are forced by the first frame, a ``frame_index`` discontinuity
(serving restarts resynchronize deterministically), every
``keyframe_interval`` frames (bounds drift accumulation and refreshes the
cached prune trajectory), and :meth:`StreamingEncoderSession.reset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.core.pipeline import DEFALayerStats
from repro.kernels import ExecutionOptions
from repro.nn.encoder import DeformableEncoder
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.shapes import LevelShape, total_pixels


@dataclass(frozen=True)
class StreamingConfig:
    """Temporal-reuse policy of a :class:`StreamingEncoderSession`.

    Parameters
    ----------
    keyframe_interval:
        Force a cold (fully recomputed) frame every this many frames.  The
        cold frame refreshes the cached FWP trajectory and flushes any
        accumulated warm-frame drift, exactly like a video keyframe.
    static_tol:
        Per-element feature threshold below which a row counts as
        temporally static.  ``0.0`` (default) means *bit-identical rows
        only* — the synthetic video workload quantizes slow motion to
        unchanged cells, so the exact default already exercises the reuse
        machinery; raising it is an explicit approximation opt-in.
    trace_reuse_tol:
        Bound on the predicted sampling-offset movement under which a fully
        static frame skips the forward and reuses the previous memory
        outright.  ``0.0`` (default) fires only when the offsets provably
        cannot move (bit-identical input), keeping the fast path exact.
    dilation:
        Half-width, in cells of each level, by which the dirty set is grown
        before masking (the dependency cone of one attention hop).  ``None``
        derives it per level from the config's bounded sampling ranges
        (``ceil(range_l) + 2`` — the range plus the bilinear footprint and
        rounding margin).  Range narrowing is what makes temporal locality
        exploitable: with narrowing disabled a sample may land anywhere, so
        every pixel depends on every dirty pixel and warm frames recompute
        all rows (sessions still reuse arenas and the static fast path).
    options:
        :class:`~repro.kernels.ExecutionOptions` for the session's runner
        (execution path, kernel backend).  ``collect_details`` must stay
        ``False``: detail collection disables the execution-plan arenas the
        session exists to keep warm.
    """

    keyframe_interval: int = 8
    static_tol: float = 0.0
    trace_reuse_tol: float = 0.0
    dilation: int | None = None
    options: ExecutionOptions | None = None

    def __post_init__(self) -> None:
        if self.keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")
        if self.static_tol < 0 or self.trace_reuse_tol < 0:
            raise ValueError("tolerances must be non-negative")
        if self.dilation is not None and self.dilation < 0:
            raise ValueError("dilation must be non-negative")
        if self.options is not None and self.options.collect_details:
            raise ValueError(
                "collect_details disables the execution-plan arenas; "
                "streaming sessions require plans"
            )


@dataclass
class StreamingFrameResult:
    """Outcome of one :meth:`StreamingEncoderSession.process` call."""

    memory: np.ndarray
    """Encoded frame ``(N_in, D)`` — a private copy, safe to retain."""

    kind: str
    """``"cold"`` (full forward), ``"warm"`` (dirty-set forward with
    cross-frame frozen rows) or ``"reused"`` (fully static frame, previous
    memory returned without a forward)."""

    frame_index: int
    """Stream position this frame resynchronized to."""

    computed_rows: int
    """Rows the encoder actually processed (``N_in`` for cold frames, the
    dilated dirty set for warm ones, 0 for reused frames)."""

    total_rows: int
    """``N_in`` of the stream's pyramid."""

    incoming_masks: list[np.ndarray | None] = field(default_factory=list)
    """The incoming FWP mask each block executed with (entry ``j`` feeds
    block ``j``; ``None`` = dense).  Recorded for the lockstep equivalence
    probe, which replays exactly these masks through both execution paths."""

    layer_stats: list[DEFALayerStats] = field(default_factory=list)
    """Per-block pruning statistics (empty for reused frames)."""

    @property
    def pixels_kept(self) -> float:
        """Fraction of rows computed this frame — the pixels-kept diagnostic
        end-to-end warm-vs-cold diffs are reported with."""
        return self.computed_rows / self.total_rows if self.total_rows else 0.0


class StreamingEncoderSession:
    """One video stream's stateful encoder (see the module docstring).

    Sessions always run the block-sparse frozen-row convention —
    ``enable_query_pruning`` is forced on regardless of the config passed
    in, because cross-frame freezing *is* row pruning: without it a masked
    row would still pay the residual/norm/FFN work the session is trying to
    skip.  Configs that already enable it are unchanged.

    Parameters
    ----------
    encoder:
        The shared encoder (sessions of one model bank reuse one).
    config:
        DEFA algorithm configuration (quantization, thresholds, ranges).
    spatial_shapes:
        The stream's fixed pyramid signature; every frame must match.
    streaming:
        Temporal-reuse policy (:class:`StreamingConfig`).
    """

    def __init__(
        self,
        encoder: DeformableEncoder,
        config: DEFAConfig,
        spatial_shapes: list[LevelShape] | tuple[LevelShape, ...],
        streaming: StreamingConfig | None = None,
    ) -> None:
        self.streaming = streaming or StreamingConfig()
        config = config.with_overrides(enable_query_pruning=True)
        self.config = config
        self.spatial_shapes = list(spatial_shapes)
        self.num_tokens = total_pixels(self.spatial_shapes)
        options = self.streaming.options or ExecutionOptions()
        self.runner = DEFAEncoderRunner(encoder, config, options)
        self._pos = sine_positional_encoding(self.spatial_shapes, encoder.d_model)
        self._reference_points = make_reference_points(self.spatial_shapes)
        self._radii = self._level_radii()
        # Induced inf-norm of the offset projections (max output-column L1
        # weight sum over all blocks): |Δoffsets| <= off_gain * |Δfeatures|.
        # Computed from the fp32 weights; with trace_reuse_tol == 0.0 the
        # bound is only ever compared against an exactly-zero delta, so
        # quantization of the projections cannot loosen the exact fast path.
        self._off_gain = max(
            float(np.abs(layer.self_attn.sampling_offsets.weight).sum(axis=0).max())
            for layer in encoder.layers
        )
        self.reset()

    def reset(self) -> None:
        """Drop all cross-frame state; the next frame runs cold."""
        self._prev_input: np.ndarray | None = None
        self._prev_memory: np.ndarray | None = None
        self._warm_fwp: list[np.ndarray | None] = []
        self._last_frame_index: int | None = None
        self._frames_since_cold = 0

    # ------------------------------------------------------------- geometry

    def _level_radii(self) -> list[int]:
        """Per-level dirty-set dilation radius (cells)."""
        if self.streaming.dilation is not None:
            return [self.streaming.dilation] * len(self.spatial_shapes)
        ranges = self.config.effective_ranges(len(self.spatial_shapes))
        if any(not np.isfinite(r) for r in ranges):
            return [-1] * len(self.spatial_shapes)  # unbounded: recompute all
        return [int(np.ceil(r)) + 2 for r in ranges]

    @staticmethod
    def _dilate(grid: np.ndarray, radius: int) -> np.ndarray:
        """Box-dilate a 2D boolean grid by ``radius`` cells (separable OR of
        shifted copies — no SciPy dependency)."""
        if radius <= 0 or not grid.any():
            return grid
        out = grid
        for axis in (0, 1):
            acc = out.copy()
            for shift in range(1, radius + 1):
                forward = np.roll(out, shift, axis=axis)
                backward = np.roll(out, -shift, axis=axis)
                # np.roll wraps; zero the wrapped-around slices so dilation
                # stops at the grid border instead of leaking across it.
                if axis == 0:
                    forward[:shift, :] = False
                    backward[-shift:, :] = False
                else:
                    forward[:, :shift] = False
                    backward[:, -shift:] = False
                acc |= forward
                acc |= backward
            out = acc
        return out

    def _need_mask(self, dirty: np.ndarray) -> np.ndarray | None:
        """Grow the dirty rows into the rows whose outputs they can reach.

        A dirty *value* cell influences any query whose bounded sampling
        window covers it — on every level, since each query samples all
        levels.  The dirty set is therefore projected into every level's
        grid (nearest-cell coordinate scaling) and box-dilated by that
        level's radius.  One attention hop's cone is the deliberate
        heuristic (a full ``num_layers``-hop cone at paper scale would
        cover most of the frame and erase the reuse win); the keyframe
        interval bounds how far the truncation can drift before a cold
        frame flushes it.  Returns ``None`` when locality cannot be
        exploited (unbounded ranges) — recompute every row.
        """
        if any(radius < 0 for radius in self._radii):
            return None
        shapes = self.spatial_shapes
        per_level = []
        offset = 0
        for shape in shapes:
            per_level.append(
                dirty[offset : offset + shape.num_pixels].reshape(
                    shape.height, shape.width
                )
            )
            offset += shape.num_pixels
        need = np.zeros_like(dirty)
        offset = 0
        for target_index, target in enumerate(shapes):
            union = np.zeros((target.height, target.width), dtype=bool)
            for source_index, source in enumerate(shapes):
                grid = per_level[source_index]
                if not grid.any():
                    continue
                if source_index == target_index:
                    union |= grid
                    continue
                rows = np.minimum(
                    (np.arange(target.height) * source.height) // target.height,
                    source.height - 1,
                )
                cols = np.minimum(
                    (np.arange(target.width) * source.width) // target.width,
                    source.width - 1,
                )
                union |= grid[np.ix_(rows, cols)]
            union = self._dilate(union, self._radii[target_index])
            need[offset : offset + target.num_pixels] = union.reshape(-1)
            offset += target.num_pixels
        return need

    # --------------------------------------------------------------- frames

    def _run_cold(self, features: np.ndarray, frame_index: int) -> StreamingFrameResult:
        result = self.runner.forward(
            features, self._pos, self._reference_points, self.spatial_shapes
        )
        # Incoming mask of block j+1 is the mask block j generated; only
        # cold frames refresh the cache — warm frames count sampling
        # frequencies over the dirty subset only, a biased trajectory.
        self._warm_fwp = [None] + [mask.copy() for mask in result.fmap_masks[:-1]]
        return StreamingFrameResult(
            memory=result.memory,
            kind="cold",
            frame_index=frame_index,
            computed_rows=self.num_tokens,
            total_rows=self.num_tokens,
            incoming_masks=[None] + [mask.copy() for mask in result.fmap_masks[:-1]],
            layer_stats=result.layer_stats,
        )

    def _run_warm(
        self, features: np.ndarray, frame_index: int, need: np.ndarray
    ) -> StreamingFrameResult:
        masks = [
            need if cached is None else (need & cached) for cached in self._warm_fwp
        ]
        result = self.runner.forward(
            features,
            self._pos,
            self._reference_points,
            self.spatial_shapes,
            fmap_masks=masks,
        )
        memory = result.memory
        # Rows outside the dilated dirty set were frozen through every block
        # (their output rows equal their input rows, by the frozen-row
        # convention); patch in their previous *encoded* values instead —
        # the cross-frame extension of the convention.
        static = ~need
        memory[static] = self._prev_memory[static]
        return StreamingFrameResult(
            memory=memory,
            kind="warm",
            frame_index=frame_index,
            computed_rows=int(need.sum()),
            total_rows=self.num_tokens,
            incoming_masks=masks,
            layer_stats=result.layer_stats,
        )

    def process(
        self, features: np.ndarray, frame_index: int | None = None
    ) -> StreamingFrameResult:
        """Encode one frame, reusing cross-frame state where possible.

        ``frame_index`` defaults to the next index in sequence; passing an
        explicit index that is not ``last + 1`` (a dropped frame, a replay,
        a serving restart) forces a deterministic cold resynchronization.
        """
        features = np.asarray(features, dtype=FLOAT_DTYPE)
        if features.ndim != 2 or features.shape[0] != self.num_tokens:
            raise ValueError(
                f"frame features must have shape ({self.num_tokens}, D) "
                f"matching the session's pyramid, got {features.shape}"
            )
        if frame_index is None:
            frame_index = (
                0 if self._last_frame_index is None else self._last_frame_index + 1
            )
        contiguous = (
            self._last_frame_index is not None
            and frame_index == self._last_frame_index + 1
        )
        cold = (
            self._prev_memory is None
            or not contiguous
            or self._frames_since_cold >= self.streaming.keyframe_interval
        )
        if cold:
            result = self._run_cold(features, frame_index)
            self._frames_since_cold = 1
        else:
            delta = float(np.max(np.abs(features - self._prev_input)))
            if delta <= self.streaming.static_tol:
                dirty = np.zeros(self.num_tokens, dtype=bool)
            else:
                dirty = np.any(
                    np.abs(features - self._prev_input) > self.streaming.static_tol,
                    axis=1,
                )
            if not dirty.any() and (
                self._off_gain * delta <= self.streaming.trace_reuse_tol
            ):
                # Fully static frame: the sampling trace provably cannot
                # move, so the previous memory is the answer — no forward.
                result = StreamingFrameResult(
                    memory=self._prev_memory.copy(),
                    kind="reused",
                    frame_index=frame_index,
                    computed_rows=0,
                    total_rows=self.num_tokens,
                )
                self._frames_since_cold += 1
            else:
                need = self._need_mask(dirty)
                if need is None:
                    need = np.ones(self.num_tokens, dtype=bool)
                result = self._run_warm(features, frame_index, need)
                self._frames_since_cold += 1
        # Private snapshots: the caller keeps result.memory, the session
        # keeps its own copies, so neither can corrupt the other.
        self._prev_input = features.copy()
        self._prev_memory = result.memory.copy()
        self._last_frame_index = frame_index
        return result

    def plan_stats(self) -> dict[str, int | str]:
        """Arena accounting of the session's runner (hits climb frame over
        frame while bytes plateau — the fixed pyramid signature keeps one
        warm plan for the stream's whole lifetime)."""
        return self.runner.plan_stats()
