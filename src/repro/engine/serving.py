"""Sharded serving engine: a long-running scheduler over persistent workers.

:mod:`repro.engine.batching` made same-shape batching a *library* call and
:mod:`repro.engine.parallel` spins up a fresh process pool per invocation —
neither keeps anything warm between requests, so the per-shape-signature
:class:`~repro.kernels.ExecutionPlan` arenas of PR 5 (and every positional /
reference-point cache) are rebuilt for every call.  This module promotes the
engine into a *service*:

* :class:`ServingEngine` — a scheduler that accepts a stream of
  :class:`~repro.engine.batching.WorkItem` requests, groups them by
  ``(request class, shape signature)`` under a queueing policy (flush a group
  when it reaches ``max_batch_size`` or its oldest request has waited
  ``max_wait_s``), and fans the batches out to persistent worker processes.
* Each worker owns a warm :class:`ModelBank` — one
  :class:`~repro.core.encoder_runner.DEFAEncoderRunner` per request class —
  for its whole lifetime, so the execution-plan arenas and positional caches
  survive across requests and the zero-allocation steady state of PR 5 holds
  *across* the request stream, not just within one batch.
* A **degraded mode** falls back to in-process serial execution whenever no
  worker process is alive (mirroring the primary/degraded split of a service
  that must answer even while its backend restarts): dead workers are
  restarted with exponential backoff, and the engine returns to primary mode
  once a restarted worker reports ready.  The fallback executes the *same*
  forward functions as the workers, and the batched kernels are bit-equal to
  the per-image loop for any batch composition (per-image auto-dispatch
  thresholds, per-image quantization scales), so scheduling decisions —
  batch packing, worker placement, fallback path — can never change a
  served result.

The scheduler core is a plain state machine driven by :meth:`ServingEngine.
poll`; :meth:`ServingEngine.start` runs it on a background pump thread for
real streaming traffic, while unit tests drive ``poll()`` directly under a
manual clock for deterministic queueing-policy checks.

Single-core note: this container serves every process from one core, so the
engine is gated on scheduling *correctness* (served results bit-equal to the
serial loop, bounded queueing latency, overhead) — multi-worker speedup is
reported by the benchmarks as informational only.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import select
import struct
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.config import DEFAConfig
from repro.engine.batching import BatchForward, ShapeKey, WorkItem, defa_forward_fn
from repro.engine.faults import FaultInjectedError, FaultPlan, WorkerFaultState
from repro.engine.streaming import StreamingConfig, StreamingEncoderSession
from repro.kernels import ExecutionOptions, ExecutionPlan, MachineProfile
from repro.nn.tensor_utils import FLOAT_DTYPE

__all__ = [
    "DEFAULT_REQUEST_CLASS",
    "DeadlineExceeded",
    "ModelBank",
    "ModelBankSpec",
    "PoisonRequestError",
    "QueueFullError",
    "ServingConfig",
    "ServingEngine",
    "ServingStats",
    "StreamingClassServer",
    "BatchRecord",
    "WorkerError",
]

DEFAULT_REQUEST_CLASS = "default"
"""Request class used when a caller does not distinguish request classes."""


class QueueFullError(RuntimeError):
    """Admission control shed a request: the queue is at ``max_queue_depth``."""


class DeadlineExceeded(TimeoutError):
    """A queued request's per-request deadline passed before dispatch."""


class PoisonRequestError(RuntimeError):
    """A request exhausted its retry budget and was quarantined.

    The request was in flight across ``kills`` worker faults (process
    deaths or retryable forward faults) — more than ``max_retries`` — so the
    engine stops redispatching it rather than letting it take down worker
    after worker.  A quarantined request is *never* run on the in-process
    fallback either: a poison forward executed in the engine process would
    kill the engine itself.
    """

    def __init__(self, item_id: int | str, kills: int, max_retries: int) -> None:
        self.item_id = item_id
        self.kills = kills
        self.max_retries = max_retries
        super().__init__(
            f"request {item_id!r} quarantined as poison: in flight for {kills} "
            f"worker faults (retry budget max_retries={max_retries})"
        )


class StreamingClassServer:
    """Per-request-class pool of :class:`StreamingEncoderSession`\\ s (PR 8).

    A stream-affine request class serves *video streams*: each distinct
    ``stream_id`` gets its own session (created lazily on first frame, with
    that frame's pyramid as the stream's fixed signature) and keeps it for
    the server's lifetime, carrying warm FWP masks, the previous frame's
    memory and the warm :class:`~repro.kernels.ExecutionPlan` arenas between
    requests.  Batches are executed frame by frame — the session state is
    inherently sequential — relying on the engine's per-stream sticky
    routing to deliver each stream's frames in order to one server.
    """

    def __init__(
        self,
        encoder,
        config: DEFAConfig,
        streaming: StreamingConfig | None = None,
    ) -> None:
        self.encoder = encoder
        self.config = config
        self.streaming = streaming or StreamingConfig()
        self.sessions: dict[str, StreamingEncoderSession] = {}

    def session(self, stream_id: str, spatial_shapes) -> StreamingEncoderSession:
        session = self.sessions.get(stream_id)
        if session is None:
            session = self.sessions[stream_id] = StreamingEncoderSession(
                self.encoder, self.config, spatial_shapes, self.streaming
            )
        return session

    def forward(self, features: np.ndarray, spatial_shapes, meta) -> np.ndarray:
        """Run one batch of frames through their per-stream sessions.

        ``meta`` pairs each batch element with its ``(stream_id,
        frame_index)`` — the engine forwards it alongside the stacked
        features.  Frames of one stream must arrive in index order; an
        out-of-order index deterministically resynchronizes that session
        with a cold frame (see :meth:`StreamingEncoderSession.process`).
        """
        if meta is None or len(meta) != features.shape[0]:
            raise ValueError(
                "a stream-affine request class needs (stream_id, frame_index) "
                "meta for every batch element"
            )
        outputs = np.empty_like(features)
        for index, (stream_id, frame_index) in enumerate(meta):
            if stream_id is None:
                raise ValueError(
                    "items of a stream-affine request class must carry a stream_id"
                )
            session = self.session(stream_id, spatial_shapes)
            outputs[index] = session.process(features[index], frame_index).memory
        return outputs

    def plan_stats(self) -> dict[str, int | str]:
        """Arena accounting aggregated over the class's live sessions."""
        merged: dict[str, int | str] = {"plans": 0, "hits": 0, "grows": 0, "bytes": 0}
        for session in self.sessions.values():
            stats = session.plan_stats()
            merged["backend"] = stats["backend"]
            merged["profile"] = stats["profile"]
            for key in ("plans", "hits", "grows", "bytes"):
                merged[key] += stats[key]
        merged["sessions"] = len(self.sessions)
        return merged


class ModelBank:
    """The forward functions (one per request class) a worker serves with.

    A *request class* names one serving configuration — e.g. ``"fp32"`` and
    ``"int12"`` pruning/quantization variants — and maps to one batched
    forward callable (see :data:`~repro.engine.batching.BatchForward`).  When
    the forwards are :func:`~repro.engine.batching.defa_forward_fn` adapters,
    the backing runners can be registered too so :meth:`plan_stats` can
    report the warm execution-plan arenas (the evidence that the PR 5
    zero-allocation steady state survives across requests).
    """

    def __init__(
        self,
        forwards: dict[str, BatchForward],
        runners: dict[str, object] | None = None,
        streaming: dict[str, StreamingClassServer] | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if not forwards and not streaming:
            raise ValueError("a ModelBank needs at least one request class")
        self.forwards = dict(forwards)
        self.runners = dict(runners or {})
        self.streaming = dict(streaming or {})
        self.fault_plan = fault_plan
        """Scripted worker faults (PR 10).  Consumed by ``_worker_main``
        only — the in-process fallback and direct ``forward`` calls never
        execute faults, so a fault plan can't kill the engine process."""
        overlap = set(self.forwards) & set(self.streaming)
        if overlap:
            raise ValueError(
                f"request classes cannot be both stateless and stream-affine: "
                f"{sorted(overlap)}"
            )

    @classmethod
    def coerce(cls, obj: "ModelBank | dict[str, BatchForward]") -> "ModelBank":
        """Accept a plain ``{class: forward}`` dict wherever a bank is expected."""
        return obj if isinstance(obj, cls) else cls(obj)

    @property
    def request_classes(self) -> tuple[str, ...]:
        return tuple(self.forwards) + tuple(self.streaming)

    def forward(
        self,
        request_class: str,
        features: np.ndarray,
        spatial_shapes,
        meta=None,
    ) -> np.ndarray:
        """Run one batch.  ``meta`` carries per-element ``(stream_id,
        frame_index)`` pairs for stream-affine classes (ignored by
        stateless ones)."""
        if request_class in self.streaming:
            return self.streaming[request_class].forward(
                features, list(spatial_shapes), meta
            )
        if request_class not in self.forwards:
            raise KeyError(
                f"unknown request class {request_class!r}; "
                f"known classes: {sorted(self.request_classes)}"
            )
        return self.forwards[request_class](features, list(spatial_shapes))

    def plan_stats(self) -> dict[str, dict[str, int | str]]:
        """Per-class arena accounting (and active kernel backend) per runner.

        Each class entry carries the runner's plan counters plus the
        ``backend`` it resolves to at call time (post registry fallback), so
        ``ServingEngine.worker_stats()`` shows which kernel implementation
        each request class is actually served with on each worker.
        """
        stats: dict[str, dict[str, int | str]] = {}
        for name, runner in self.runners.items():
            plan_stats = getattr(runner, "plan_stats", None)
            if callable(plan_stats):
                stats[name] = plan_stats()
        for name, server in self.streaming.items():
            stats[name] = server.plan_stats()
        return stats


@dataclass(frozen=True)
class ModelBankSpec:
    """Picklable recipe for building identical :class:`ModelBank`\\ s everywhere.

    The spec travels to each worker process (and is also built locally for
    the degraded fallback), so every execution path constructs the *same*
    deterministic encoder weights (``rng_seed``) and the same per-class
    :class:`~repro.core.config.DEFAConfig`\\ s — the precondition for served
    results being independent of which path ran a batch.  All classes share
    one encoder (one set of weights); each gets its own
    :class:`~repro.core.encoder_runner.DEFAEncoderRunner` so per-class
    sparse-mode/quantization state never interferes.
    """

    num_layers: int = 2
    d_model: int = 64
    num_heads: int = 4
    num_levels: int = 2
    num_points: int = 2
    ffn_dim: int = 128
    rng_seed: int = 0
    classes: tuple[tuple[str, DEFAConfig], ...] = ((DEFAULT_REQUEST_CLASS, DEFAConfig()),)
    streams: tuple[tuple[str, DEFAConfig, StreamingConfig], ...] = ()
    """Stream-affine request classes ``(name, config, streaming_policy)``:
    each is served by a :class:`StreamingClassServer` over the shared
    encoder, one :class:`StreamingEncoderSession` per ``stream_id``.  All
    components are frozen dataclasses of primitives, so the spec stays
    picklable (use backend *names* in any embedded
    :class:`~repro.kernels.ExecutionOptions`)."""

    machine_profile: "MachineProfile | str | None" = None
    """Dispatch profile (PR 9) every runner of the bank is built with:
    a :class:`~repro.kernels.MachineProfile` (frozen, picklable),
    ``"reference"``, a path to a profile JSON — resolved *on the worker
    host* at bank build, so each heterogeneous serving host can load its
    own calibrated crossovers — or ``None`` to follow each worker's
    process-default active profile (``REPRO_MACHINE_PROFILE``, else the
    committed reference constants)."""

    fault_plan: FaultPlan | None = None
    """Deterministic fault script (PR 10), threaded to every worker
    process via the bank.  :class:`~repro.engine.faults.FaultPlan` is a
    frozen dataclass of primitives, so the spec stays picklable.  Faults
    execute only inside workers; the parent's fallback bank ignores them."""

    def build(self) -> ModelBank:
        from repro.core.encoder_runner import DEFAEncoderRunner
        from repro.nn.encoder import DeformableEncoder

        encoder = DeformableEncoder(
            num_layers=self.num_layers,
            d_model=self.d_model,
            num_heads=self.num_heads,
            num_levels=self.num_levels,
            num_points=self.num_points,
            ffn_dim=self.ffn_dim,
            rng=self.rng_seed,
        )
        options = ExecutionOptions(machine_profile=self.machine_profile)
        forwards: dict[str, BatchForward] = {}
        runners: dict[str, object] = {}
        for name, config in self.classes:
            runner = DEFAEncoderRunner(encoder, config, options)
            runners[name] = runner
            forwards[name] = defa_forward_fn(runner)
        streaming = {}
        for name, config, policy in self.streams:
            if self.machine_profile is not None:
                session_options = (
                    policy.options or ExecutionOptions()
                ).with_overrides(machine_profile=self.machine_profile)
                policy = replace(policy, options=session_options)
            streaming[name] = StreamingClassServer(encoder, config, policy)
        return ModelBank(forwards, runners, streaming, fault_plan=self.fault_plan)


@dataclass
class ServingConfig:
    """Queueing and worker policy of a :class:`ServingEngine`.

    ``num_workers=0`` serves every batch in-process (no subprocesses at all
    — the permanent form of the degraded path, useful for tests and
    single-core deployments).  ``max_wait_s`` bounds the queueing latency a
    request can accumulate waiting for its shape group to fill: a group is
    flushed as soon as it is full *or* its oldest request has waited this
    long.

    The PR 10 request-lifecycle knobs default to the pre-hardening
    behaviour: unbounded admission, no deadlines, no watchdog — each is an
    opt-in bound.  Only the retry budget (``max_retries``) is bounded by
    default, because an unbounded budget lets one poison request crash-loop
    every worker slot to retirement.
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.002
    num_workers: int = 1
    restart_backoff_s: float = 0.05
    """Base delay before restarting a dead worker; doubles per consecutive
    death of the same worker slot (capped at :attr:`max_backoff_s`)."""

    max_backoff_s: float = 2.0
    max_restarts: int | None = None
    """Per-slot restart budget; ``None`` means restart forever.  A slot that
    exhausts its budget stays dead and the engine serves degraded."""

    poll_interval_s: float = 0.0005
    """Sleep of the background pump thread between scheduler steps."""

    max_queue_depth: int | None = None
    """Admission bound: a ``submit`` finding this many requests already
    queued is shed with :class:`QueueFullError` (``admission="shed"``) or
    blocks until the queue drains below the bound (``admission="block"``).
    ``None`` admits unboundedly (the pre-PR 10 behaviour)."""

    admission: str = "shed"
    """What a full queue does to ``submit``: ``"shed"`` (raise
    :class:`QueueFullError`, fast-fail backpressure) or ``"block"``
    (producer-side backpressure: the submitting thread waits for space —
    requires the pump thread, or another thread driving ``poll``, to drain
    the queue)."""

    batch_timeout_s: float | None = None
    """Hung-worker watchdog: a dispatched batch still unanswered after this
    long (engine clock) gets its worker SIGKILLed and handled through the
    ordinary death path (requeue + backoff restart).  ``None`` disables the
    watchdog."""

    max_retries: int = 2
    """Retry budget per request: how many times a request that was in
    flight during a worker fault may be requeued.  A request exceeding the
    budget is quarantined with :class:`PoisonRequestError`."""

    dispatch_timeout_s: float | None = 5.0
    """Bound on the pipe write of one batch dispatch (wall clock).  A worker
    that stops draining its pipe would otherwise block ``conn.send`` — and
    with it the pump thread, while it holds the engine lock — forever; on
    timeout the worker is killed and the batch requeued via the death path.
    ``None`` restores the blocking send."""

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        if self.num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if self.restart_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive (or None)")
        if self.admission not in ("shed", "block"):
            raise ValueError(
                f"admission must be 'shed' or 'block', got {self.admission!r}"
            )
        if self.batch_timeout_s is not None and self.batch_timeout_s <= 0:
            raise ValueError("batch_timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.dispatch_timeout_s is not None and self.dispatch_timeout_s <= 0:
            raise ValueError("dispatch_timeout_s must be positive (or None)")


@dataclass(frozen=True)
class BatchRecord:
    """Accounting of one dispatched batch (one entry per forward launched)."""

    request_class: str
    shape_key: ShapeKey
    size: int
    path: str
    """``"worker"`` (served by a worker process) or ``"inproc"`` (served by
    the in-process fallback — degraded mode or a ``num_workers=0`` engine)."""

    reason: str
    """Why the group was flushed: ``"full"`` (reached ``max_batch_size``),
    ``"wait"`` (oldest request hit ``max_wait_s``), ``"flush"`` (explicit
    :meth:`ServingEngine.flush`) or ``"retry"`` (a requeued suspect request
    redispatched in isolation — see :meth:`ServingEngine.poll`)."""

    worker: int | None = None
    """Worker slot index for ``path="worker"`` batches."""


@dataclass
class ServingStats:
    """Mutable accounting of one engine's lifetime."""

    num_requests: int = 0
    num_completed: int = 0
    batches: list[BatchRecord] = field(default_factory=list)
    latencies_s: list[float] = field(default_factory=list)
    """Submit-to-completion latency of every completed request (engine clock)."""

    worker_deaths: int = 0
    worker_restarts: int = 0
    mode_transitions: list[tuple[float, str]] = field(default_factory=list)
    """``(clock time, new mode)`` — recorded whenever the health mode flips."""

    num_shed: int = 0
    """Requests rejected at submit by admission control (``max_queue_depth``
    with ``admission="shed"``)."""

    num_expired: int = 0
    """Queued requests that hit their per-request deadline before dispatch
    (failed with :class:`DeadlineExceeded`)."""

    num_retried: int = 0
    """Requeue events: a request in flight during a worker fault put back
    on the queue (one request can contribute several)."""

    num_quarantined: int = 0
    """Requests that exhausted ``max_retries`` and were failed with
    :class:`PoisonRequestError`."""

    watchdog_kills: int = 0
    """Workers SIGKILLed by the engine: hung-batch watchdog expiries plus
    dispatch-send timeouts (both are counted as deaths too)."""

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def batch_sizes(self) -> list[int]:
        return [b.size for b in self.batches]

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batches else 0.0

    @property
    def primary_batches(self) -> int:
        return sum(1 for b in self.batches if b.path == "worker")

    @property
    def degraded_batches(self) -> int:
        return sum(1 for b in self.batches if b.path == "inproc")

    def latency_quantile(self, q: float) -> float:
        """Latency percentile in seconds (``q`` in [0, 100])."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(self.latencies_s, q))


@dataclass(eq=False)
class _Pending:
    """One submitted request waiting for (or in) execution."""

    seq: int
    item: WorkItem
    request_class: str
    arrival: float
    future: Future
    deadline_at: float | None = None
    """Engine-clock instant after which the request expires unserved (from
    the item's / submit's ``deadline_s``); ``None`` = no deadline."""

    retries: int = 0
    """How many worker faults this request has been in flight for.  A
    non-zero count marks the request a *suspect*: it redispatches alone
    (reason ``"retry"``) and only ever to a worker process."""


@dataclass(eq=False)
class _Batch:
    """One dispatched batch, in flight on a worker."""

    batch_id: int
    request_class: str
    shape_key: ShapeKey
    requests: list[_Pending]
    dispatched_at: float = 0.0
    """Engine-clock dispatch instant; the watchdog measures batch age
    against this."""


class _WorkerHandle:
    """Parent-side state of one worker slot (process + pipe + liveness)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: mp.Process | None = None
        self.conn = None
        self.alive = False
        self.ready = False
        self.busy: _Batch | None = None
        self.deaths = 0
        self.restart_at: float | None = None
        self.retired = False
        """Set when the slot exhausted ``max_restarts``: never respawned."""


def _worker_main(conn, model_bank_factory, worker_index: int = 0, incarnation: int = 0) -> None:
    """Worker process entry point: build the bank once, serve batches forever.

    The bank — and with it every runner's execution-plan arenas and
    positional caches — lives for the whole worker lifetime, which is the
    point of persistent workers: a steady stream of same-signature batches
    executes in the PR 5 warm-arena regime.  Any exception inside a forward
    is reported back as a traceback string (the worker itself survives); only
    a hard process death tears the slot down.  The error reply carries a
    *retryable* flag: :class:`~repro.engine.faults.FaultInjectedError`
    models a transient infrastructure fault, so the parent requeues the
    batch against each request's retry budget; every other exception is a
    deterministic model/config bug and fails the futures directly.

    ``worker_index``/``incarnation`` identify this process generation to the
    bank's :class:`~repro.engine.faults.FaultPlan`, if one is scripted.
    """
    bank = ModelBank.coerce(model_bank_factory())
    fault_plan = getattr(bank, "fault_plan", None)
    faults = (
        WorkerFaultState(fault_plan, worker_index, incarnation)
        if fault_plan is not None
        else None
    )
    conn.send(("ready", os.getpid()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        kind = message[0]
        if kind == "batch":
            _, batch_id, request_class, features, shapes, meta, item_ids = message
            try:
                if faults is not None:
                    faults.on_batch(item_ids)
                output = bank.forward(request_class, features, shapes, meta)
                conn.send(("ok", batch_id, output))
            except FaultInjectedError:
                conn.send(("err", batch_id, traceback.format_exc(), True))
            except Exception:  # noqa: BLE001 - reported to the parent verbatim
                conn.send(("err", batch_id, traceback.format_exc(), False))
        elif kind == "stats":
            conn.send(("stats_ok", bank.plan_stats()))
        elif kind == "shutdown":
            return


class _PipeSendTimeout(OSError):
    """A deadline-bounded pipe send did not complete in time."""


def _send_with_deadline(conn, obj, timeout: float | None) -> None:
    """``conn.send(obj)`` bounded by ``timeout`` wall-clock seconds.

    A worker that stops reading its pipe eventually fills the pipe buffer,
    at which point a plain ``conn.send`` blocks *forever* — inside the
    engine this happens on the pump thread while it holds the engine lock,
    wedging the whole service.  This helper reproduces ``Connection.send``'s
    wire format (``!i`` length header, ``-1`` + ``!Q`` escape for huge
    payloads, ``ForkingPickler`` body) with the fd in non-blocking mode and
    a ``select`` loop against a real deadline, raising
    :class:`_PipeSendTimeout` on expiry.

    A timeout after a *partial* write leaves the stream corrupt mid-frame —
    callers must treat the worker as lost (kill + death path), never retry
    the send.  Falls back to the blocking ``conn.send`` when ``timeout`` is
    ``None`` or the connection has no usable fd (test stubs).
    """
    if timeout is None:
        conn.send(obj)
        return
    try:
        fd = conn.fileno()
    except (AttributeError, OSError, ValueError):
        conn.send(obj)
        return
    from multiprocessing.reduction import ForkingPickler

    payload = bytes(ForkingPickler.dumps(obj))
    n = len(payload)
    if n > 0x7FFFFFFF:
        header = struct.pack("!i", -1) + struct.pack("!Q", n)
    else:
        header = struct.pack("!i", n)
    data = memoryview(header + payload)
    deadline = time.monotonic() + timeout
    sent = 0
    was_blocking = os.get_blocking(fd)
    os.set_blocking(fd, False)
    try:
        while sent < len(data):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _PipeSendTimeout(
                    f"pipe send timed out after {timeout:.3f}s with "
                    f"{len(data) - sent} of {len(data)} bytes unsent"
                )
            _, writable, _ = select.select([], [fd], [], remaining)
            if not writable:
                continue
            try:
                sent += os.write(fd, data[sent:])
            except BlockingIOError:
                continue
    finally:
        os.set_blocking(fd, was_blocking)


class WorkerError(RuntimeError):
    """A worker's forward raised; carries the worker-side traceback."""

    def __init__(self, request_class: str, worker_traceback: str) -> None:
        self.request_class = request_class
        self.worker_traceback = worker_traceback
        super().__init__(
            f"worker forward failed for request class {request_class!r}:\n"
            f"{worker_traceback}"
        )


class ServingEngine:
    """Long-running scheduler fanning batched requests out to warm workers.

    Parameters
    ----------
    model_bank_factory:
        Zero-argument picklable callable returning the :class:`ModelBank`
        (or plain ``{class: forward}`` dict) to serve with.  Called once
        inside every worker process and once lazily in the parent for the
        degraded fallback, so all paths serve identical models (use
        :meth:`ModelBankSpec.build` for the deterministic DEFA bank).
    config:
        Queueing/worker policy (see :class:`ServingConfig`).
    clock:
        Monotonic time source; injectable so unit tests can drive the
        queueing policy deterministically.

    The engine is driven by :meth:`poll` — one scheduler step: reap worker
    replies and deaths, restart due workers, dispatch due batches.
    :meth:`start` runs ``poll`` on a background pump thread; tests may skip
    ``start`` and call ``poll`` directly.
    """

    def __init__(
        self,
        model_bank_factory: Callable[[], ModelBank | dict[str, BatchForward]],
        config: ServingConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.model_bank_factory = model_bank_factory
        self.config = config or ServingConfig()
        self._clock = clock
        self.stats = ServingStats()
        self._lock = threading.RLock()
        self._space = threading.Condition(self._lock)
        """Signalled whenever queue depth can have dropped; ``submit`` under
        ``admission="block"`` waits on it for admission."""

        self._pending: deque[_Pending] = deque()
        self._seq = 0
        self._batch_seq = 0
        self._flush_all = False
        self._local_bank: ModelBank | None = None
        self._workers = [_WorkerHandle(i) for i in range(self.config.num_workers)]
        self._stack_plan = ExecutionPlan()
        """Arena for the per-dispatch ``(B, N_in, D)`` stacking copies (the
        last steady-state allocation of the engine itself — see
        :meth:`_stack` for why reuse is safe)."""
        self._mp = mp.get_context()
        self._pump: threading.Thread | None = None
        self._stop = threading.Event()
        self._shut_down = False
        self._last_mode: str | None = None
        self._stream_routes: dict[str, int] = {}
        """Sticky ``stream_id -> worker index`` routing.  Streaming sessions
        live inside a worker's bank, so all frames of a stream must hit the
        same worker to stay warm; a route is only rebuilt when its worker
        dies or retires (the replacement's fresh session cold-starts)."""

    # ------------------------------------------------------------ lifecycle

    def start(self, wait_ready: bool = True, timeout: float = 60.0) -> "ServingEngine":
        """Spawn the workers (and the pump thread); optionally block until
        every worker has built its model bank and reported ready."""
        with self._lock:
            if self._shut_down:
                raise RuntimeError("engine already shut down")
            now = self._clock()
            for handle in self._workers:
                if not handle.alive and not handle.retired:
                    self._spawn(handle)
            if self.config.num_workers == 0:
                # The permanent in-process engine pays its model build here,
                # not inside the first served batch.
                self._ensure_local_bank()
            self._record_mode(now)
        if wait_ready and self._workers:
            # Deadline math goes through the injected clock (like every other
            # timing decision here) so FakeClock-driven tests never race real
            # wall time.
            deadline = self._clock() + timeout
            while not all(h.ready for h in self._workers if h.alive):
                self.poll()
                if self._clock() > deadline:
                    raise TimeoutError(
                        f"workers did not report ready within {timeout:g}s "
                        f"({self._diagnose()})"
                    )
                time.sleep(0.001)
        if self._pump is None:
            self._stop.clear()
            self._pump = threading.Thread(
                target=self._pump_loop, name="serving-pump", daemon=True
            )
            self._pump.start()
        return self

    def _pump_loop(self) -> None:
        while not self._stop.is_set():
            self.poll()
            self._stop.wait(self.config.poll_interval_s)

    def shutdown(self) -> None:
        """Stop the pump, terminate the workers, fail any unserved futures."""
        self._stop.set()
        if self._pump is not None:
            self._pump.join(timeout=5.0)
            self._pump = None
        with self._lock:
            self._shut_down = True
            for handle in self._workers:
                if handle.conn is not None:
                    try:
                        handle.conn.send(("shutdown",))
                    except (BrokenPipeError, OSError):
                        pass
            for handle in self._workers:
                if handle.process is not None:
                    handle.process.join(timeout=1.0)
                    if handle.process.is_alive():
                        handle.process.terminate()
                        handle.process.join(timeout=1.0)
                if handle.conn is not None:
                    handle.conn.close()
                    handle.conn = None
                handle.alive = handle.ready = False
            abandoned = list(self._pending)
            self._pending.clear()
            for handle in self._workers:
                if handle.busy is not None:
                    abandoned.extend(handle.busy.requests)
                    handle.busy = None
            for pending in abandoned:
                if not pending.future.done():
                    pending.future.set_exception(
                        RuntimeError("serving engine shut down with the request unserved")
                    )
            # Wake any submitter blocked on backpressure so it can observe
            # the shutdown instead of waiting for space that never comes.
            self._space.notify_all()

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------ submission

    def submit(
        self,
        item: WorkItem,
        request_class: str = DEFAULT_REQUEST_CLASS,
        deadline_s: float | None = None,
    ) -> Future:
        """Queue one request; the future resolves to its ``(N_in, D)`` output.

        The item's features were copied and frozen at :class:`WorkItem`
        construction, so nothing the caller does to its own arrays after
        submit can reach the queued request.

        ``deadline_s`` bounds the time the request may spend *queued* (from
        this submit, on the engine clock): a request still undispatched when
        its deadline passes fails with :class:`DeadlineExceeded`.  Omitted,
        the item's own :attr:`~repro.engine.batching.WorkItem.deadline_s`
        applies; a request already dispatched never expires (its batch is
        bounded by the watchdog instead).

        With ``max_queue_depth`` set, a full queue sheds the request with
        :class:`QueueFullError` (``admission="shed"``) or blocks this thread
        until the pump drains space (``admission="block"``).
        """
        if deadline_s is None:
            deadline_s = item.deadline_s
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        depth = self.config.max_queue_depth
        with self._lock:
            if self._shut_down:
                raise RuntimeError("engine already shut down")
            if depth is not None and len(self._pending) >= depth:
                if self.config.admission == "shed":
                    self.stats.num_shed += 1
                    raise QueueFullError(
                        f"request {item.item_id!r} shed: queue at "
                        f"max_queue_depth={depth}"
                    )
                # admission="block": producer-side backpressure.  The wait
                # re-checks on every notify (dispatch, expiry, shutdown) and
                # on a coarse wall-clock heartbeat in case a notify is lost.
                while not self._shut_down and len(self._pending) >= depth:
                    self._space.wait(timeout=0.05)
                if self._shut_down:
                    raise RuntimeError("engine already shut down")
            arrival = self._clock()
            future: Future = Future()
            self._pending.append(
                _Pending(
                    seq=self._seq,
                    item=item,
                    request_class=request_class,
                    arrival=arrival,
                    future=future,
                    deadline_at=(
                        arrival + deadline_s if deadline_s is not None else None
                    ),
                )
            )
            self._seq += 1
            self.stats.num_requests += 1
            return future

    def flush(self, timeout: float = 60.0) -> None:
        """Dispatch everything pending regardless of wait policy and block
        until every in-flight batch has completed."""
        deadline = self._clock() + timeout
        self._flush_all = True
        try:
            while True:
                self.poll()
                with self._lock:
                    drained = not self._pending and all(
                        h.busy is None for h in self._workers
                    )
                if drained:
                    return
                if self._clock() > deadline:
                    raise TimeoutError(
                        f"flush did not drain the engine within {timeout:g}s "
                        f"({self._diagnose()})"
                    )
                time.sleep(0.0002)
        finally:
            self._flush_all = False

    # ------------------------------------------------------------ health

    def _diagnose(self) -> str:
        """One-line engine state for timeout messages: a wedged engine must
        be diagnosable from the exception alone."""
        with self._lock:
            workers = []
            for h in self._workers:
                busy = getattr(h.busy, "batch_id", None) if h.busy is not None else None
                workers.append(
                    f"w{h.index}[alive={h.alive} ready={h.ready} "
                    f"busy_batch={busy} deaths={h.deaths} retired={h.retired} "
                    f"restart_at={h.restart_at}]"
                )
            return (
                f"mode={self.mode} queue_depth={len(self._pending)} "
                f"workers=({' '.join(workers) or 'none'})"
            )

    @property
    def mode(self) -> str:
        """``"inproc"`` (no workers configured), ``"primary"`` (>= 1 worker
        process alive) or ``"degraded"`` (all workers dead: in-process
        fallback serves until a restart succeeds)."""
        if self.config.num_workers == 0:
            return "inproc"
        return "primary" if any(h.alive for h in self._workers) else "degraded"

    @property
    def num_alive_workers(self) -> int:
        return sum(1 for h in self._workers if h.alive)

    def kill_worker(self, index: int = 0) -> bool:
        """Fault injection: SIGKILL one worker process (tests/benchmarks
        exercise the death -> degraded -> restart path through this).

        Returns whether a kill actually happened — ``False`` for a slot
        whose process is already dead (or not yet spawned).  A bad index is
        a caller bug and raises :class:`ValueError` naming the valid range.
        """
        with self._lock:
            if not 0 <= index < len(self._workers):
                raise ValueError(
                    f"worker index {index} out of range: this engine has "
                    f"{len(self._workers)} worker slot(s)"
                )
            handle = self._workers[index]
            if handle.process is not None and handle.process.is_alive():
                handle.process.kill()
                return True
            return False

    def worker_stats(self, timeout: float = 5.0) -> list[dict | None]:
        """Execution-plan arena accounting per worker slot (``None`` for
        dead *or unresponsive* slots).  Only meaningful on a drained engine
        (no batches in flight).

        ``timeout`` bounds the whole call end to end (wall clock), the
        request write included — a hung worker that stopped draining its
        pipe can no longer wedge this in a blocking ``conn.send``; its slot
        just reports ``None``.
        """
        results: list[dict | None] = []
        deadline = time.monotonic() + timeout
        with self._lock:
            for handle in self._workers:
                if not (handle.alive and handle.ready and handle.busy is None):
                    results.append(None)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    results.append(None)
                    continue
                try:
                    _send_with_deadline(handle.conn, ("stats",), remaining)
                    remaining = max(deadline - time.monotonic(), 0.0)
                    if handle.conn.poll(remaining):
                        message = handle.conn.recv()
                        results.append(message[1] if message[0] == "stats_ok" else None)
                    else:
                        results.append(None)
                except (BrokenPipeError, EOFError, OSError):
                    # _PipeSendTimeout lands here too: unresponsive => None.
                    results.append(None)
        return results

    # ------------------------------------------------------------ scheduler

    def poll(self) -> None:
        """One scheduler step: reap replies and deaths, kill hung workers,
        expire overdue queued requests, restart due workers, dispatch due
        batches.  Reentrant-safe; called by the pump thread and directly by
        tests/:meth:`flush`."""
        with self._lock:
            if self._shut_down:
                return
            now = self._clock()
            self._reap(now)
            self._watchdog(now)
            self._expire_due(now)
            self._restart_due(now)
            self._dispatch(now)
            self._record_mode(now)

    def _record_mode(self, now: float) -> None:
        mode = self.mode
        if mode != self._last_mode:
            self.stats.mode_transitions.append((now, mode))
            self._last_mode = mode

    # -- worker replies and deaths

    def _reap(self, now: float) -> None:
        for handle in self._workers:
            if not handle.alive:
                continue
            try:
                while handle.conn.poll():
                    self._handle_message(handle, now, handle.conn.recv())
            except (EOFError, BrokenPipeError, OSError):
                self._handle_death(handle, now)
                continue
            if handle.process is not None and not handle.process.is_alive():
                self._handle_death(handle, now)

    def _handle_message(self, handle: _WorkerHandle, now: float, message) -> None:
        kind = message[0]
        if kind == "ready":
            handle.ready = True
        elif kind == "ok":
            _, batch_id, output = message
            batch = handle.busy
            if batch is not None and batch.batch_id == batch_id:
                handle.busy = None
                self._resolve(batch, output, now)
        elif kind == "err":
            _, batch_id, worker_tb, *flags = message
            retryable = bool(flags[0]) if flags else False
            batch = handle.busy
            if batch is not None and batch.batch_id == batch_id:
                handle.busy = None
                if retryable:
                    # A transient worker fault (the worker itself survived):
                    # requeue the batch against each request's retry budget
                    # instead of failing the futures.
                    self._requeue(batch.requests, now)
                else:
                    error = WorkerError(batch.request_class, worker_tb)
                    for pending in batch.requests:
                        if not pending.future.done():
                            pending.future.set_exception(error)
        # stats_ok replies are consumed synchronously by worker_stats().

    def _watchdog(self, now: float) -> None:
        """Kill workers whose in-flight batch is older than
        ``batch_timeout_s``: a hung worker never answers, so its batch age on
        the engine clock is the only signal.  The kill funnels through
        :meth:`_handle_death`, reusing requeue/retry-budget/backoff/stream
        cold-resync semantics unchanged."""
        if self.config.batch_timeout_s is None:
            return
        for handle in self._workers:
            if not (handle.alive and handle.busy is not None):
                continue
            if now - handle.busy.dispatched_at < self.config.batch_timeout_s:
                continue
            self.stats.watchdog_kills += 1
            self._kill_process(handle)
            self._handle_death(handle, now)

    @staticmethod
    def _kill_process(handle: _WorkerHandle) -> None:
        """SIGKILL a handle's process if it has one (stub processes in tests
        may not implement ``kill``)."""
        kill = getattr(handle.process, "kill", None)
        if callable(kill):
            try:
                kill()
            except OSError:
                pass

    def _expire_due(self, now: float) -> None:
        """Fail queued requests whose deadline passed, before dispatch ever
        considers them.  Only *queued* requests expire — once dispatched, a
        batch is bounded by the watchdog, and failing a future the worker is
        still computing would race its result."""
        expired = [
            p
            for p in self._pending
            if p.deadline_at is not None and now >= p.deadline_at
        ]
        if not expired:
            return
        self._remove_pending(expired)
        for pending in expired:
            self.stats.num_expired += 1
            if not pending.future.done():
                pending.future.set_exception(
                    DeadlineExceeded(
                        f"request {pending.item.item_id!r} expired after "
                        f"{now - pending.arrival:.6g}s queued (deadline "
                        f"{pending.deadline_at - pending.arrival:.6g}s)"
                    )
                )

    def _requeue(self, requests: list[_Pending], now: float) -> None:
        """Return a faulted batch's requests to the queue against their
        retry budgets.

        Every request was in flight for the same fault, so each one's
        retry count rises; a request past ``max_retries`` has now taken down
        ``retries`` workers and is quarantined (fails with
        :class:`PoisonRequestError`) instead of being redispatched.
        Survivors go back at the *front* of the queue in seq order (every
        requeued seq predates everything still pending).
        """
        survivors: list[_Pending] = []
        for pending in requests:
            pending.retries += 1
            if pending.retries > self.config.max_retries:
                self.stats.num_quarantined += 1
                if not pending.future.done():
                    pending.future.set_exception(
                        PoisonRequestError(
                            pending.item.item_id,
                            pending.retries,
                            self.config.max_retries,
                        )
                    )
            else:
                self.stats.num_retried += 1
                survivors.append(pending)
        for pending in sorted(survivors, key=lambda p: p.seq, reverse=True):
            self._pending.appendleft(pending)

    def _handle_death(self, handle: _WorkerHandle, now: float) -> None:
        """A worker process died: salvage nothing, requeue its in-flight
        requests at the front of the queue (submission order preserved)
        against their retry budgets, and schedule a restart with exponential
        backoff."""
        handle.alive = False
        handle.ready = False
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None
        if handle.process is not None:
            handle.process.join(timeout=1.0)
            handle.process = None
        handle.deaths += 1
        self.stats.worker_deaths += 1
        if handle.busy is not None:
            self._requeue(handle.busy.requests, now)
            handle.busy = None
        if (
            self.config.max_restarts is not None
            and handle.deaths > self.config.max_restarts
        ):
            handle.retired = True
            handle.restart_at = None
        else:
            backoff = min(
                self.config.restart_backoff_s * (2 ** (handle.deaths - 1)),
                self.config.max_backoff_s,
            )
            handle.restart_at = now + backoff

    def _restart_due(self, now: float) -> None:
        for handle in self._workers:
            if (
                not handle.alive
                and not handle.retired
                and handle.restart_at is not None
                and handle.restart_at <= now
            ):
                self._spawn(handle)
                self.stats.worker_restarts += 1

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_worker_main,
            # deaths doubles as the incarnation number: 0 before the first
            # death, 1 for the first replacement, ... — what a FaultPlan
            # scripts against.
            args=(child_conn, self.model_bank_factory, handle.index, handle.deaths),
            name=f"serving-worker-{handle.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.alive = True
        handle.ready = False
        handle.restart_at = None

    # -- batching and dispatch

    def _due_reason(self, group: list[_Pending], now: float) -> str | None:
        if len(group) >= self.config.max_batch_size:
            return "full"
        if self._flush_all:
            return "flush"
        if now - group[0].arrival >= self.config.max_wait_s:
            return "wait"
        return None

    def _dispatch(self, now: float) -> None:
        while self._pending:
            groups: dict[tuple, list[_Pending]] = {}
            for pending in self._pending:  # deque stays seq-ordered
                # A suspect (retries > 0) was in flight for a worker fault:
                # it gets a singleton group keyed by its own seq, so it
                # redispatches *alone* — innocents co-batched with a poison
                # request must not be killed alongside it again and again.
                key = (
                    pending.request_class,
                    pending.item.shape_key,
                    pending.item.stream_id,
                    pending.seq if pending.retries else None,
                )
                groups.setdefault(key, []).append(pending)
            due = []
            for key, group in groups.items():
                if key[3] is not None:
                    due.append((key, group, "retry"))
                else:
                    reason = self._due_reason(group, now)
                    if reason is not None:
                        due.append((key, group, reason))
            if not due:
                return
            progressed = False
            for key, group, reason in due:
                chunk = group[: self.config.max_batch_size]
                stream_id = key[2]
                if stream_id is not None:
                    worker = self._stream_worker(stream_id)
                else:
                    worker = self._idle_worker()
                if worker is not None:
                    self._remove_pending(chunk)
                    self._dispatch_to_worker(worker, key[:3], chunk, reason, now)
                    progressed = True
                elif reason == "retry":
                    # Suspects never run in-process: if the request is the
                    # poison that killed its workers, an inproc forward would
                    # kill the engine itself.  Wait for a worker restart —
                    # unless no slot can ever come back, which makes the
                    # suspect unservable: quarantine it now.
                    if self._workers and all(h.retired for h in self._workers):
                        self._remove_pending(chunk)
                        for pending in chunk:
                            self.stats.num_quarantined += 1
                            if not pending.future.done():
                                pending.future.set_exception(
                                    PoisonRequestError(
                                        pending.item.item_id,
                                        pending.retries,
                                        self.config.max_retries,
                                    )
                                )
                        progressed = True
                elif self.num_alive_workers == 0:
                    self._remove_pending(chunk)
                    self._run_inproc(key[:3], chunk, reason, now)
                    progressed = True
                # else: workers exist but are busy/starting — bounded
                # queueing: the batch dispatches as soon as one frees.
                # Stream-affine batches additionally wait for their *routed*
                # worker specifically, preserving per-stream frame order.
            if not progressed:
                return

    def _idle_worker(self) -> _WorkerHandle | None:
        for handle in self._workers:
            if handle.alive and handle.ready and handle.busy is None:
                return handle
        return None

    def _stream_worker(self, stream_id: str) -> _WorkerHandle | None:
        """Sticky routing for stream-affine batches.

        Returns the stream's routed worker only when it is idle — a busy
        routed worker means *wait* (frames of one stream never interleave
        across workers).  A dead or retired routed worker triggers a reroute
        to any idle worker: the new worker's session has no state for this
        stream, so its next frame cold-starts (deterministic resync via the
        session's frame-index discontinuity rule).
        """
        index = self._stream_routes.get(stream_id)
        if index is not None:
            handle = self._workers[index]
            if handle.alive and handle.ready:
                return handle if handle.busy is None else None
            # Routed worker is gone — fall through and reroute.
        handle = self._idle_worker()
        if handle is not None:
            self._stream_routes[stream_id] = handle.index
        return handle

    def _remove_pending(self, chunk: list[_Pending]) -> None:
        taken = set(id(p) for p in chunk)
        self._pending = deque(p for p in self._pending if id(p) not in taken)
        # Queue depth dropped: admit any submitter blocked on backpressure.
        self._space.notify_all()

    def _stack(self, chunk: list[_Pending]) -> np.ndarray:
        """Stack a chunk's features into the reused stacking arena.

        Safe to reuse per dispatch: worker dispatch pickles the array inside
        ``conn.send`` before returning, and the in-process paths consume it
        synchronously (``_resolve`` hands out per-request *copies*), so the
        buffer never escapes the dispatch that filled it.
        """
        first = chunk[0].item.features
        stacked = self._stack_plan.buffer(
            "stack", (len(chunk),) + first.shape, FLOAT_DTYPE
        )
        for row, pending in enumerate(chunk):
            np.copyto(stacked[row], pending.item.features)
        return stacked

    @staticmethod
    def _meta(
        key: tuple[str, ShapeKey, str | None], chunk: list[_Pending]
    ) -> tuple[tuple[str, int], ...] | None:
        """Per-request ``(stream_id, frame_index)`` for stream-affine batches
        (``None`` for stateless classes)."""
        if key[2] is None:
            return None
        return tuple((p.item.stream_id, p.item.frame_index) for p in chunk)

    def _dispatch_to_worker(
        self,
        handle: _WorkerHandle,
        key: tuple[str, ShapeKey, str | None],
        chunk: list[_Pending],
        reason: str,
        now: float,
    ) -> None:
        request_class, shape_key = key[0], key[1]
        batch = _Batch(
            batch_id=self._batch_seq,
            request_class=request_class,
            shape_key=shape_key,
            requests=chunk,
            dispatched_at=now,
        )
        self._batch_seq += 1
        shapes = tuple(chunk[0].item.spatial_shapes)
        message = (
            "batch",
            batch.batch_id,
            request_class,
            self._stack(chunk),
            shapes,
            self._meta(key, chunk),
            tuple(p.item.item_id for p in chunk),
        )
        try:
            _send_with_deadline(handle.conn, message, self.config.dispatch_timeout_s)
        except _PipeSendTimeout:
            # The worker stopped draining its pipe mid-dispatch.  The stream
            # may be corrupt after a partial frame, so the worker is
            # unsalvageable: kill it and requeue through the death path.
            handle.busy = batch
            self.stats.watchdog_kills += 1
            self._kill_process(handle)
            self._handle_death(handle, now)
            return
        except (BrokenPipeError, OSError):
            # The worker died between reap and dispatch: requeue and let the
            # next poll handle the death properly.
            handle.busy = batch
            self._handle_death(handle, now)
            return
        handle.busy = batch
        self.stats.batches.append(
            BatchRecord(
                request_class=request_class,
                shape_key=shape_key,
                size=len(chunk),
                path="worker",
                reason=reason,
                worker=handle.index,
            )
        )

    def _ensure_local_bank(self) -> ModelBank:
        if self._local_bank is None:
            self._local_bank = ModelBank.coerce(self.model_bank_factory())
        return self._local_bank

    def _run_inproc(
        self,
        key: tuple[str, ShapeKey, str | None],
        chunk: list[_Pending],
        reason: str,
        now: float,
    ) -> None:
        """Degraded/in-process execution: same forwards, same batching, so
        the outputs are bit-equal to what a worker would have served.

        Stream-affine classes run in the *local* bank's sessions here; if a
        stream previously ran on a now-dead worker, the local session sees a
        frame-index discontinuity and cold-resyncs deterministically (warm
        state is per-process, so outputs may differ from an uninterrupted
        run — the bit-equality gate therefore only covers kill-free runs).
        """
        request_class, shape_key = key[0], key[1]
        bank = self._ensure_local_bank()
        shapes = list(chunk[0].item.spatial_shapes)
        self.stats.batches.append(
            BatchRecord(
                request_class=request_class,
                shape_key=shape_key,
                size=len(chunk),
                path="inproc",
                reason=reason,
            )
        )
        try:
            output = bank.forward(
                request_class, self._stack(chunk), shapes, self._meta(key, chunk)
            )
        except Exception as error:  # noqa: BLE001 - delivered via the futures
            for pending in chunk:
                if not pending.future.done():
                    pending.future.set_exception(error)
            return
        batch = _Batch(
            batch_id=-1, request_class=request_class, shape_key=shape_key, requests=chunk
        )
        self._resolve(batch, output, self._clock())

    def _resolve(self, batch: _Batch, output: np.ndarray, now: float) -> None:
        if output.shape[0] != len(batch.requests):
            error = RuntimeError(
                f"forward returned a batch of {output.shape[0]} for "
                f"{len(batch.requests)} requests"
            )
            for pending in batch.requests:
                if not pending.future.done():
                    pending.future.set_exception(error)
            return
        for index, pending in enumerate(batch.requests):
            # Copy so a retained per-request output does not pin the whole
            # batch array (mirrors BatchRunner.run).
            result = np.array(output[index])
            self.stats.latencies_s.append(now - pending.arrival)
            self.stats.num_completed += 1
            if not pending.future.done():
                pending.future.set_result(result)
