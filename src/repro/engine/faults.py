"""Deterministic fault injection for the serving engine (PR 10).

The request-lifecycle hardening of :mod:`repro.engine.serving` — admission
control, deadlines, the hung-worker watchdog, retry budgets and poison
quarantine — is only trustworthy if every one of those paths can be driven
*on purpose*, repeatably, in tests and benchmarks.  This module is that
driver: a :class:`FaultPlan` scripts exactly which worker incarnation
misbehaves on exactly which batch, with no randomness anywhere, the same
discipline ``FakeClock`` gave the PR 6 scheduler tests.

A plan travels inside the (picklable) :class:`~repro.engine.serving.
ModelBankSpec`, so the *worker process* executes the faults while the parent
engine stays oblivious — the engine under test sees only the symptoms a real
production fault would produce: a dead process, a silent hang, a forward
exception, a slow batch.

Fault taxonomy (see ``FAULT_KINDS``):

* ``"crash"`` — the worker process hard-exits (``os._exit``) before running
  the batch: the parent sees EOF/closed pipe, exactly like a segfault or
  OOM kill.  Drives ``_handle_death``, degraded fallback and backoff.
* ``"hang"`` — the worker sleeps ``seconds`` before serving the batch: the
  parent sees a batch that never completes.  Drives the watchdog.
* ``"raise"`` — the worker's forward raises :class:`FaultInjectedError`,
  reported back over the pipe as a *retryable* error (the worker survives).
  Drives the retry path without a process death.
* ``"delay"`` — the worker sleeps ``seconds`` and then serves normally.
  Drives latency accounting and deadline expiry without killing anything.

Faults address a batch by its *ordinal within one worker incarnation*
(0-based count of batches that incarnation has received), not by the
engine's global batch id — so a plan stays meaningful across restarts:
``incarnation=0`` is the first process spawned into a worker slot,
``incarnation=1`` its first replacement, and so on.

**Poison requests** are scripted by item id instead: any batch containing a
poisoned ``item_id`` crashes the worker, in *every* incarnation — the
canonical poison-pill shape (a request whose payload reliably kills its
server).  The engine's retry budget is what must contain it.

Determinism contract: a plan never consults wall-clock time or randomness
to decide *whether* to fire — only batch ordinals and item ids.  (``hang``
and ``delay`` sleep real seconds inside the worker, because a subprocess
cannot share the parent's injected clock; tests bound them with the
engine-side watchdog, which *is* driven by the injected clock.)
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace

__all__ = [
    "FAULT_KINDS",
    "FaultInjectedError",
    "FaultPlan",
    "FaultSpec",
    "WorkerFaultState",
]

FAULT_KINDS = ("crash", "hang", "raise", "delay")
"""The supported fault kinds, in the order documented above."""


class FaultInjectedError(RuntimeError):
    """A scripted ``"raise"`` fault fired inside a worker forward.

    The serving engine treats this error class (and only this class) as
    *retryable*: the batch's requests are requeued against their retry
    budget instead of failing their futures, because the fault models a
    transient infrastructure error, not a deterministic model bug.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: ``kind`` at batch ordinal ``batch`` of one
    ``(worker, incarnation)``."""

    kind: str
    batch: int
    """0-based ordinal of the target batch within the worker incarnation."""

    worker: int = 0
    """Worker slot index the fault is scripted for."""

    incarnation: int = 0
    """Which process generation of the slot misbehaves (0 = first spawn,
    1 = first restart, ...)."""

    seconds: float = 0.0
    """Sleep duration for ``"hang"``/``"delay"`` (must be positive there,
    ignored for ``"crash"``/``"raise"``)."""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: {FAULT_KINDS}"
            )
        if self.batch < 0 or self.worker < 0 or self.incarnation < 0:
            raise ValueError("batch, worker and incarnation must be non-negative")
        if self.kind in ("hang", "delay"):
            if self.seconds <= 0:
                raise ValueError(f"a {self.kind!r} fault needs seconds > 0")
        elif self.seconds:
            raise ValueError(f"a {self.kind!r} fault takes no seconds")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of worker faults plus poisoned item ids.

    Frozen and built from primitives only, so it pickles into worker
    processes inside a :class:`~repro.engine.serving.ModelBankSpec`.  Use
    the ``with_*`` builders::

        plan = (FaultPlan()
                .with_crash(batch=2)                      # worker 0, first life
                .with_hang(seconds=30.0, batch=0, incarnation=1)
                .with_poison("req-0007"))
    """

    faults: tuple[FaultSpec, ...] = ()
    poison_items: tuple[int | str, ...] = ()

    def __post_init__(self) -> None:
        seen: set[tuple[int, int, int]] = set()
        for fault in self.faults:
            key = (fault.worker, fault.incarnation, fault.batch)
            if key in seen:
                raise ValueError(
                    f"duplicate fault for worker {fault.worker}, incarnation "
                    f"{fault.incarnation}, batch {fault.batch}"
                )
            seen.add(key)

    # ------------------------------------------------------------- builders

    def _with_fault(self, fault: FaultSpec) -> "FaultPlan":
        return replace(self, faults=self.faults + (fault,))

    def with_crash(
        self, batch: int, worker: int = 0, incarnation: int = 0
    ) -> "FaultPlan":
        """Hard process exit before serving batch ordinal ``batch``."""
        return self._with_fault(
            FaultSpec("crash", batch, worker=worker, incarnation=incarnation)
        )

    def with_hang(
        self, seconds: float, batch: int, worker: int = 0, incarnation: int = 0
    ) -> "FaultPlan":
        """Sleep ``seconds`` before serving batch ordinal ``batch`` (the
        engine-side watchdog is expected to kill the worker first)."""
        return self._with_fault(
            FaultSpec(
                "hang", batch, worker=worker, incarnation=incarnation, seconds=seconds
            )
        )

    def with_raise(
        self, batch: int, worker: int = 0, incarnation: int = 0
    ) -> "FaultPlan":
        """Raise :class:`FaultInjectedError` from the forward of batch
        ordinal ``batch`` (the worker survives; the error is retryable)."""
        return self._with_fault(
            FaultSpec("raise", batch, worker=worker, incarnation=incarnation)
        )

    def with_delay(
        self, seconds: float, batch: int, worker: int = 0, incarnation: int = 0
    ) -> "FaultPlan":
        """Sleep ``seconds`` and then serve batch ordinal ``batch`` normally."""
        return self._with_fault(
            FaultSpec(
                "delay", batch, worker=worker, incarnation=incarnation, seconds=seconds
            )
        )

    def with_poison(self, *item_ids: int | str) -> "FaultPlan":
        """Mark item ids as poison: any batch containing one crashes the
        worker, in every incarnation."""
        return replace(self, poison_items=self.poison_items + tuple(item_ids))

    # -------------------------------------------------------------- queries

    def fault_for(
        self, worker: int, incarnation: int, batch: int
    ) -> FaultSpec | None:
        """The scripted fault of one batch ordinal, if any."""
        for fault in self.faults:
            if (fault.worker, fault.incarnation, fault.batch) == (
                worker,
                incarnation,
                batch,
            ):
                return fault
        return None

    def poisons(self, item_ids) -> bool:
        """Whether any of ``item_ids`` is a poisoned item."""
        if not self.poison_items:
            return False
        poisoned = set(self.poison_items)
        return any(item_id in poisoned for item_id in item_ids)


def _hard_crash() -> None:
    """Terminate the worker process without cleanup (monkeypatchable seam:
    in-process tests replace this instead of actually dying)."""
    os._exit(1)


class WorkerFaultState:
    """Per-worker-incarnation fault executor, driven once per batch.

    Owned by ``_worker_main``: counts the batches this incarnation has
    received and fires the plan's scripted fault (if any) for each ordinal.
    Poison checks run first — a poisoned batch crashes the worker no matter
    what else is scripted.
    """

    def __init__(self, plan: FaultPlan, worker_index: int, incarnation: int) -> None:
        self.plan = plan
        self.worker_index = worker_index
        self.incarnation = incarnation
        self.batches_seen = 0

    def on_batch(self, item_ids) -> None:
        """Apply the scripted fault for the next batch ordinal (called by
        the worker immediately before the forward)."""
        ordinal = self.batches_seen
        self.batches_seen += 1
        if self.plan.poisons(item_ids):
            _hard_crash()
        fault = self.plan.fault_for(self.worker_index, self.incarnation, ordinal)
        if fault is None:
            return
        if fault.kind == "crash":
            _hard_crash()
        elif fault.kind in ("hang", "delay"):
            time.sleep(fault.seconds)
        elif fault.kind == "raise":
            raise FaultInjectedError(
                f"scripted raise fault: worker {self.worker_index}, "
                f"incarnation {self.incarnation}, batch ordinal {ordinal}"
            )
