"""Keyed cache for deterministic layer-trace generation.

Trace generation (:func:`repro.workloads.traces.generate_layer_traces`) is the
most expensive artefact of the accelerator-level experiments: it runs the full
NumPy encoder with head fitting.  It is also fully deterministic given
``(spec, seed, num_layers, fit_heads)``, so re-running it for an identical key
is pure waste.  :class:`TraceCache` memoizes the generated traces under the
canonical :func:`~repro.workloads.traces.trace_cache_key` and keeps hit/miss
accounting so callers (and tests) can verify that no identical trace is ever
regenerated.

A module-level :data:`DEFAULT_TRACE_CACHE` is provided for callers that want
one process-wide cache; experiments that manage memory explicitly can
instantiate their own and :meth:`TraceCache.clear` it when done.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.specs import WorkloadSpec
from repro.workloads.traces import LayerTrace, TraceKey, generate_layer_traces, trace_cache_key


@dataclass(frozen=True)
class TraceCacheStats:
    """Immutable snapshot of a cache's accounting."""

    hits: int
    misses: int
    entries: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class TraceCache:
    """Memoize :func:`generate_layer_traces` results by canonical key.

    Parameters
    ----------
    max_entries:
        Optional bound on the number of cached trace lists; when exceeded the
        least-recently-*used* entry is evicted (a hit refreshes an entry's
        recency, so a hot workload is never pushed out by a stream of one-off
        ones; traces are large, so unbounded growth across many workloads
        would exhaust memory).
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        self.max_entries = max_entries
        self._entries: dict[TraceKey, list[LayerTrace]] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TraceKey) -> bool:
        return key in self._entries

    @property
    def stats(self) -> TraceCacheStats:
        return TraceCacheStats(hits=self._hits, misses=self._misses, entries=len(self._entries))

    def get_or_generate(
        self,
        spec: WorkloadSpec,
        seed: int = 0,
        num_layers: int | None = None,
        fit_heads: bool = True,
    ) -> list[LayerTrace]:
        """Return the traces for ``(spec, seed, ...)``, generating on a miss.

        The supported parameters are exactly the ones that feed the canonical
        key — anything else would make equal keys map to different traces.
        A fresh list is returned on every call (the :class:`LayerTrace`
        entries themselves are shared), so callers that reorder or trim their
        copy cannot corrupt the cache for later hits.
        """
        key = trace_cache_key(spec, seed=seed, num_layers=num_layers, fit_heads=fit_heads)
        if key in self._entries:
            self._hits += 1
            # LRU refresh: dicts iterate in insertion order and eviction takes
            # the first key, so re-inserting a hit entry moves it to the
            # most-recently-used position.
            traces = self._entries.pop(key)
            self._entries[key] = traces
            return list(traces)
        self._misses += 1
        traces = generate_layer_traces(
            spec, num_layers=num_layers, fit_heads=fit_heads, rng=seed
        )
        self._entries[key] = traces
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        return list(traces)

    def clear(self) -> None:
        """Drop all cached traces (accounting is kept)."""
        self._entries.clear()


DEFAULT_TRACE_CACHE = TraceCache(max_entries=16)
"""Process-wide default cache used by callers that do not manage their own."""
