"""Batched multi-image execution engine.

This package is the scaling layer on top of the single-image reproduction:

* :mod:`repro.engine.batching` — :class:`BatchRunner` groups same-shape
  workload inputs and executes them through the vectorized batched kernels;
* :mod:`repro.engine.trace_cache` — :class:`TraceCache` memoizes deterministic
  ``(spec, seed)`` layer traces with hit/miss accounting;
* :mod:`repro.engine.parallel` — process-parallel experiment execution behind
  the ``--jobs`` flag of :mod:`repro.experiments.runner`;
* :mod:`repro.engine.serving` — :class:`ServingEngine`, the long-running
  scheduler that streams requests into persistent warm workers with a
  degraded in-process fallback;
* :mod:`repro.engine.streaming` — :class:`StreamingEncoderSession`, per-stream
  temporal reuse (warm-started FWP masks, cross-frame frozen rows, exact
  trace-reuse fast path) over the PR 5 warm execution-plan arenas;
* :mod:`repro.engine.traffic` — synthetic serving traffic (uniform / bursty /
  diurnal arrivals over mixed pyramid shapes and request classes, plus
  stream-affine ``video`` sessions);
* :mod:`repro.engine.faults` — :class:`FaultPlan`, the deterministic
  worker-fault script (crash / hang / raise / delay / poison) that drives
  the PR 10 request-lifecycle hardening in tests and benchmarks.

The names re-exported here (see ``__all__``) are the package's supported
public surface — import them as ``from repro.engine import ServingEngine``.
Anything reachable only through a submodule path (leading-underscore helpers,
worker internals) is implementation detail and may change between PRs.
"""

from repro.engine.batching import (
    BatchRunner,
    BatchRunResult,
    BatchRunStats,
    WorkItem,
    defa_forward_fn,
    encoder_forward_fn,
)
from repro.engine.faults import (
    FAULT_KINDS,
    FaultInjectedError,
    FaultPlan,
    FaultSpec,
)
from repro.engine.parallel import ParallelExperimentError, run_experiments_parallel
from repro.engine.serving import (
    DEFAULT_REQUEST_CLASS,
    BatchRecord,
    DeadlineExceeded,
    ModelBank,
    ModelBankSpec,
    PoisonRequestError,
    QueueFullError,
    ServingConfig,
    ServingEngine,
    ServingStats,
    StreamingClassServer,
    WorkerError,
)
from repro.engine.streaming import (
    StreamingConfig,
    StreamingEncoderSession,
    StreamingFrameResult,
)
from repro.engine.trace_cache import DEFAULT_TRACE_CACHE, TraceCache, TraceCacheStats
from repro.engine.traffic import (
    ARRIVAL_PROCESSES,
    ReplayResult,
    TrafficEvent,
    generate_traffic,
    generate_video_traffic,
    merge_traffic,
    replay_traffic,
    serial_reference_outputs,
)

__all__ = [
    "BatchRunner",
    "BatchRunResult",
    "BatchRunStats",
    "WorkItem",
    "defa_forward_fn",
    "encoder_forward_fn",
    "ParallelExperimentError",
    "run_experiments_parallel",
    "DEFAULT_TRACE_CACHE",
    "TraceCache",
    "TraceCacheStats",
    "FAULT_KINDS",
    "FaultInjectedError",
    "FaultPlan",
    "FaultSpec",
    "DEFAULT_REQUEST_CLASS",
    "BatchRecord",
    "DeadlineExceeded",
    "ModelBank",
    "ModelBankSpec",
    "PoisonRequestError",
    "QueueFullError",
    "ServingConfig",
    "ServingEngine",
    "ServingStats",
    "StreamingClassServer",
    "WorkerError",
    "StreamingConfig",
    "StreamingEncoderSession",
    "StreamingFrameResult",
    "ARRIVAL_PROCESSES",
    "ReplayResult",
    "TrafficEvent",
    "generate_traffic",
    "generate_video_traffic",
    "merge_traffic",
    "replay_traffic",
    "serial_reference_outputs",
]
