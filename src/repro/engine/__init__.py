"""Batched multi-image execution engine.

This package is the scaling layer on top of the single-image reproduction:

* :mod:`repro.engine.batching` — :class:`BatchRunner` groups same-shape
  workload inputs and executes them through the vectorized batched kernels;
* :mod:`repro.engine.trace_cache` — :class:`TraceCache` memoizes deterministic
  ``(spec, seed)`` layer traces with hit/miss accounting;
* :mod:`repro.engine.parallel` — process-parallel experiment execution behind
  the ``--jobs`` flag of :mod:`repro.experiments.runner`.
"""

from repro.engine.batching import (
    BatchRunner,
    BatchRunResult,
    BatchRunStats,
    WorkItem,
    defa_forward_fn,
    encoder_forward_fn,
)
from repro.engine.parallel import run_experiments_parallel
from repro.engine.trace_cache import DEFAULT_TRACE_CACHE, TraceCache, TraceCacheStats

__all__ = [
    "BatchRunner",
    "BatchRunResult",
    "BatchRunStats",
    "WorkItem",
    "defa_forward_fn",
    "encoder_forward_fn",
    "run_experiments_parallel",
    "DEFAULT_TRACE_CACHE",
    "TraceCache",
    "TraceCacheStats",
]
