"""Shape-grouped batched execution of workload inputs.

The NN substrate and the DEFA pipeline can execute a *same-shape* batch of
images in one fully vectorized pass (see
:meth:`repro.nn.msdeform_attn.MSDeformAttn.forward_detailed` and
:meth:`repro.core.pipeline.DEFAAttention.forward_detailed`).  Real workload
streams, however, mix resolutions.  :class:`BatchRunner` bridges the two: it
groups submitted :class:`WorkItem`\\ s by their shape signature, packs each
group into batches of at most ``max_batch_size`` images, runs one batched
forward per pack and scatters the results back into submission order.

The runner is model-agnostic — it drives any callable with the signature
``forward(features (B, N_in, D), spatial_shapes) -> (B, N_in, D)`` — and
:func:`encoder_forward_fn` / :func:`defa_forward_fn` adapt the stock encoder
and the DEFA encoder runner to that signature (deriving the positional
encoding and reference points per shape signature, cached across batches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.kernels import ExecutionOptions, ExecutionPlan, normalize_execution_options
from repro.kernels.options import _UNSET
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.shapes import LevelShape

ShapeKey = tuple[tuple[int, int], ...]
"""Shape signature of a work item: the ``(height, width)`` of every level."""

BatchForward = Callable[[np.ndarray, list[LevelShape]], np.ndarray]
"""A batched forward: ``(features (B, N_in, D), spatial_shapes) -> (B, N_in, D)``."""


@dataclass(frozen=True, eq=False)
class WorkItem:
    """One image (flattened multi-scale features) queued for execution.

    ``eq=False``: the dataclass-generated ``__eq__``/``__hash__`` would
    choke on the ndarray field (ambiguous truth value / unhashable), so
    items use identity semantics like any queue entry.

    The features are snapshotted at construction: the item stores a private,
    read-only :data:`FLOAT_DTYPE` copy of the caller's array.  Once requests
    queue asynchronously (the serving engine), the time between submit and
    batch execution is unbounded — a caller mutating or recycling its own
    buffer in that window must not be able to corrupt the queued request.
    Non-float dtypes are rejected here (an integer feature array is almost
    certainly a caller bug, not something to cast silently per batch).
    """

    item_id: int | str
    features: np.ndarray
    """Flattened multi-scale features of shape ``(N_in, D)``; stored as a
    read-only ``FLOAT_DTYPE`` copy of the array passed in."""

    spatial_shapes: tuple[LevelShape, ...]
    """Pyramid level shapes whose pixel counts sum to ``N_in``."""

    stream_id: str | None = None
    """Video-stream identity for stream-affine request classes (PR 8).
    ``None`` for ordinary stateless requests.  Items of one stream must be
    processed in ``frame_index`` order by one
    :class:`~repro.engine.streaming.StreamingEncoderSession`, so the serving
    engine routes a stream stickily to a single worker."""

    frame_index: int = 0
    """Position of this item within its stream (ignored without a
    ``stream_id``).  A gap or restart in the sequence forces the session to
    resynchronize with a cold frame."""

    deadline_s: float | None = None
    """Per-request queueing deadline (seconds from submit, PR 10): a serving
    engine expires the request with ``DeadlineExceeded`` if it is still
    queued this long after submission.  ``None`` = no deadline; ignored by
    the synchronous :class:`BatchRunner`."""

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        features = np.asarray(self.features)
        if features.ndim != 2:
            raise ValueError("WorkItem features must have shape (N_in, D)")
        if not np.issubdtype(features.dtype, np.floating):
            raise ValueError(
                f"WorkItem features must be floating point, got {features.dtype}"
            )
        n_in = sum(s.num_pixels for s in self.spatial_shapes)
        if features.shape[0] != n_in:
            raise ValueError(
                f"features have {features.shape[0]} tokens but spatial "
                f"shapes sum to {n_in}"
            )
        frozen = np.array(features, dtype=FLOAT_DTYPE)  # always copies
        frozen.flags.writeable = False
        object.__setattr__(self, "features", frozen)

    @property
    def shape_key(self) -> ShapeKey:
        """Grouping key: items with equal keys can share one batched forward."""
        return tuple(s.as_tuple() for s in self.spatial_shapes)


@dataclass
class BatchRunStats:
    """Accounting of one :meth:`BatchRunner.run` call."""

    num_items: int = 0
    num_groups: int = 0
    """Number of distinct shape signatures seen."""

    batch_sizes: list[int] = field(default_factory=list)
    """Size of every batched forward that was launched, in launch order."""

    @property
    def num_batches(self) -> int:
        return len(self.batch_sizes)

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0


@dataclass
class BatchRunResult:
    """Outputs of a :meth:`BatchRunner.run` call, in submission order."""

    outputs: list[np.ndarray]
    """Per-item outputs (``(N_in, D)`` each), aligned with the input items."""

    item_ids: list[int | str]
    stats: BatchRunStats


class BatchRunner:
    """Group same-shape work items and execute them in vectorized batches.

    Parameters
    ----------
    forward_fn:
        Batched forward callable (see :data:`BatchForward`).
    max_batch_size:
        Upper bound on the number of images stacked into one forward.
    """

    def __init__(self, forward_fn: BatchForward, max_batch_size: int = 8) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        self.forward_fn = forward_fn
        self.max_batch_size = max_batch_size
        # Arena for the (B, N_in, D) stacking copies: the stacked batch is
        # consumed synchronously by forward_fn and never escapes run() (the
        # per-item outputs are fresh copies below), so one named buffer per
        # shape keeps steady-state runs free of per-batch allocations.
        self._stack_plan = ExecutionPlan()

    def plan(self, items: list[WorkItem]) -> dict[ShapeKey, list[int]]:
        """Group item indices by shape signature (insertion-ordered)."""
        groups: dict[ShapeKey, list[int]] = {}
        for index, item in enumerate(items):
            groups.setdefault(item.shape_key, []).append(index)
        return groups

    def run(self, items: list[WorkItem]) -> BatchRunResult:
        """Execute all items, batching within each shape group.

        The result order matches the submission order regardless of how the
        items were grouped, and every output equals the corresponding
        single-image forward (the batched kernels are equivalence-tested).
        """
        groups = self.plan(items)
        outputs: list[np.ndarray | None] = [None] * len(items)
        stats = BatchRunStats(num_items=len(items), num_groups=len(groups))
        for indices in groups.values():
            shapes = list(items[indices[0]].spatial_shapes)
            for start in range(0, len(indices), self.max_batch_size):
                chunk = indices[start : start + self.max_batch_size]
                # Items froze their features to FLOAT_DTYPE at construction,
                # so the stack needs no per-item cast; the rows are copied
                # into a reused arena buffer instead of a fresh np.stack.
                first = items[chunk[0]].features
                stacked = self._stack_plan.buffer(
                    "stack", (len(chunk),) + first.shape, FLOAT_DTYPE
                )
                for row, i in enumerate(chunk):
                    np.copyto(stacked[row], items[i].features)
                batched_out = self.forward_fn(stacked, shapes)
                if batched_out.shape[0] != len(chunk):
                    raise ValueError(
                        "forward_fn returned a batch of "
                        f"{batched_out.shape[0]} for {len(chunk)} items"
                    )
                for out_index, item_index in enumerate(chunk):
                    # Copy so a retained per-item output does not pin the
                    # whole (B, N_in, D) batch array in memory.
                    outputs[item_index] = np.array(batched_out[out_index])
                stats.batch_sizes.append(len(chunk))
        filled = [out for out in outputs if out is not None]
        if len(filled) != len(items):
            raise RuntimeError("BatchRunner left an item without an output")
        return BatchRunResult(outputs=filled, item_ids=[item.item_id for item in items], stats=stats)


def _positional_inputs(spatial_shapes: list[LevelShape], d_model: int):
    from repro.nn.positional import make_reference_points, sine_positional_encoding

    pos = sine_positional_encoding(spatial_shapes, d_model)
    reference_points = make_reference_points(spatial_shapes)
    return pos, reference_points


def encoder_forward_fn(encoder) -> BatchForward:
    """Adapt a :class:`~repro.nn.encoder.DeformableEncoder` to the runner.

    Positional encodings and reference points depend only on the pyramid
    shapes, so they are derived once per shape signature and cached.
    """
    cache: dict[ShapeKey, tuple[np.ndarray, np.ndarray]] = {}

    def forward(features: np.ndarray, spatial_shapes: list[LevelShape]) -> np.ndarray:
        key = tuple(s.as_tuple() for s in spatial_shapes)
        if key not in cache:
            cache[key] = _positional_inputs(spatial_shapes, encoder.d_model)
        pos, reference_points = cache[key]
        return encoder.forward(features, pos, reference_points, spatial_shapes)

    return forward


def defa_forward_fn(
    runner,
    options: ExecutionOptions | None = None,
    *,
    sparse_mode=_UNSET,
    backend=_UNSET,
) -> BatchForward:
    """Adapt a :class:`~repro.core.encoder_runner.DEFAEncoderRunner`.

    Runs the full DEFA algorithm (per-image FWP/PAP mask threading) on each
    batch and returns the batched encoder memory.  ``options.sparse_mode``
    (one of ``"auto"``/``"dense"``/``"sparse"``) sets the runner's execution
    switch around every batch dispatched through this adapter, so each
    adapter always runs in its own mode even when several adapters share one
    runner; the runner's previous mode is restored afterwards (the adapter
    must not leak its mode into other adapters or later direct calls on the
    shared runner).  ``None`` keeps the runner's current mode.
    ``options.kernel_backend`` does the same for the runner's kernel backend
    (``"reference"``/``"fused"``); under the fused backend the runner's
    per-shape-signature :class:`~repro.kernels.ExecutionPlan` arenas are
    reused across every work item this adapter dispatches, so a steady
    stream of same-shape items executes with zero large allocations.
    ``options.enable_query_pruning`` and ``options.collect_details`` are
    rejected — the pruning projections are baked into the runner at
    construction, and the adapter only ever returns the batched memory.  The
    legacy ``sparse_mode=`` / ``backend=`` keywords are deprecated shims.
    """
    options = normalize_execution_options(
        options, owner="defa_forward_fn", sparse_mode=sparse_mode, backend=backend
    )
    if options.enable_query_pruning is not None:
        raise ValueError(
            "enable_query_pruning cannot be set per adapter: the pruning "
            "projections are baked into the runner at construction"
        )
    if options.collect_details:
        raise ValueError("defa_forward_fn only returns the batched memory")
    if options.machine_profile is not None:
        raise ValueError(
            "machine_profile cannot be set per adapter: the dispatch profile "
            "is resolved when the runner is constructed"
        )
    sparse_mode = options.sparse_mode
    backend = options.kernel_backend
    cache: dict[ShapeKey, tuple[np.ndarray, np.ndarray]] = {}

    def forward(features: np.ndarray, spatial_shapes: list[LevelShape]) -> np.ndarray:
        saved_mode = runner.sparse_mode
        saved_backend = runner.kernel_backend
        try:
            if sparse_mode is not None:
                runner.sparse_mode = sparse_mode
            if backend is not None:
                runner.kernel_backend = backend
            key = tuple(s.as_tuple() for s in spatial_shapes)
            if key not in cache:
                cache[key] = _positional_inputs(spatial_shapes, runner.encoder.d_model)
            pos, reference_points = cache[key]
            return runner.forward_batched(
                features, pos, reference_points, spatial_shapes
            ).memory
        finally:
            if sparse_mode is not None:
                runner.sparse_mode = saved_mode
            if backend is not None:
                runner.kernel_backend = saved_backend

    return forward
