"""Synthetic serving traffic: arrival processes over mixed pyramid workloads.

The serving benchmarks need request streams that stress the scheduler the way
real detection traffic would: mixed pyramid shapes (so the shape-signature
grouping actually has to group), mixed request classes (fp32 vs. quantized
pruning configs sharing one engine), and arrival processes ranging from
steady to bursty.  :func:`generate_traffic` builds such a stream
deterministically from a seed; :func:`replay_traffic` paces it into a
:class:`~repro.engine.serving.ServingEngine`; and
:func:`serial_reference_outputs` computes the per-image serial reference the
served outputs must be bit-equal to.

Three arrival processes are provided:

* ``"uniform"`` — Poisson arrivals (i.i.d. exponential interarrival times) at
  a constant mean rate.
* ``"bursty"`` — a two-state on/off modulated Poisson process: bursts arrive
  ``burst_factor`` times faster than the mean, idle gaps correspondingly
  slower, with geometric state holding times.  Exercises queue build-up and
  max-batch flushes.
* ``"diurnal"`` — a sinusoidally rate-modulated process (thinning-free: the
  interarrival of each request is scaled by the instantaneous inverse rate),
  sweeping between quiet and peak load ``num_periods`` times over the
  stream.  Exercises the max-wait policy at low load and batching at peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.engine.batching import FLOAT_DTYPE, WorkItem
from repro.engine.serving import (
    DEFAULT_REQUEST_CLASS,
    DeadlineExceeded,
    ModelBank,
    PoisonRequestError,
    QueueFullError,
    ServingEngine,
)
from repro.utils.shapes import LevelShape

__all__ = [
    "ARRIVAL_PROCESSES",
    "TrafficEvent",
    "ReplayResult",
    "generate_traffic",
    "generate_video_traffic",
    "merge_traffic",
    "replay_traffic",
    "serial_reference_outputs",
]

ARRIVAL_PROCESSES = ("uniform", "bursty", "diurnal")
"""Names of the supported arrival processes."""


@dataclass(frozen=True)
class TrafficEvent:
    """One request of a synthetic traffic stream."""

    arrival_s: float
    """Arrival time relative to the start of the stream (non-decreasing)."""

    item: WorkItem
    request_class: str = DEFAULT_REQUEST_CLASS


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a traffic stream through a serving engine."""

    outputs: list["np.ndarray | None"]
    """Served output per event, in event (submission) order.  ``None`` for
    an event that failed a lifecycle bound (only possible under
    ``tolerate_faults=True`` — see :attr:`failures`)."""

    elapsed_s: float
    """Wall-clock time of the replay (submission through final completion)."""

    failures: dict[int, BaseException] = field(default_factory=dict)
    """Event index -> the lifecycle exception that failed it (shed, expired
    or quarantined).  Empty when every event served."""

    @property
    def num_failed(self) -> int:
        return len(self.failures)


def _interarrivals(
    rng: np.random.Generator,
    num_requests: int,
    mean_rate_rps: float,
    process: str,
    burst_factor: float,
    burst_length: int,
    num_periods: float,
) -> np.ndarray:
    base = rng.exponential(scale=1.0 / mean_rate_rps, size=num_requests)
    if process == "uniform":
        return base
    if process == "bursty":
        # Two-state modulation with geometric holding times of mean
        # `burst_length` requests.  Rates are balanced so the long-run mean
        # rate stays `mean_rate_rps`.
        scale = np.empty(num_requests)
        in_burst = False
        toggle = rng.random(num_requests) < (1.0 / burst_length)
        for i in range(num_requests):
            if toggle[i]:
                in_burst = not in_burst
            scale[i] = 1.0 / burst_factor if in_burst else burst_factor
        return base * scale
    if process == "diurnal":
        # Instantaneous rate sweeps sinusoidally between ~0.25x and ~1.75x of
        # the mean, `num_periods` full cycles across the stream.
        phase = np.arange(num_requests) / num_requests * (2.0 * np.pi * num_periods)
        rate_factor = 1.0 + 0.75 * np.sin(phase)
        return base / rate_factor
    raise ValueError(
        f"unknown arrival process {process!r}; known: {ARRIVAL_PROCESSES}"
    )


def _pick_weighted(rng: np.random.Generator, choices: Sequence, weights) -> int:
    weights = np.asarray([float(w) for w in weights])
    if len(choices) != len(weights) or len(choices) == 0:
        raise ValueError("mix must be a non-empty sequence of (value, weight) pairs")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("mix weights must be non-negative with a positive sum")
    return int(rng.choice(len(choices), p=weights / weights.sum()))


def generate_traffic(
    num_requests: int,
    mean_rate_rps: float = 200.0,
    d_model: int = 64,
    shape_mix: Sequence[tuple[Sequence[LevelShape], float]] | None = None,
    class_mix: Sequence[tuple[str, float]] = ((DEFAULT_REQUEST_CLASS, 1.0),),
    process: str = "uniform",
    seed: int = 0,
    burst_factor: float = 4.0,
    burst_length: int = 8,
    num_periods: float = 2.0,
) -> list[TrafficEvent]:
    """Build a deterministic synthetic request stream.

    ``shape_mix`` is a weighted list of pyramid shape tuples (defaults to a
    two-entry mix of small pyramids); ``class_mix`` a weighted list of request
    class names.  Each request draws its pyramid and class independently, so
    consecutive requests routinely differ in shape signature — the scheduler
    has to re-group them, exactly the situation the serving engine exists
    for.  The same ``seed`` always produces the same stream (arrival times,
    shapes, classes and feature tensors).
    """
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    if mean_rate_rps <= 0:
        raise ValueError("mean_rate_rps must be positive")
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")
    if shape_mix is None:
        shape_mix = (
            ((LevelShape(8, 12), LevelShape(4, 6)), 2.0),
            ((LevelShape(6, 8), LevelShape(3, 4)), 1.0),
        )
    rng = np.random.default_rng(seed)
    gaps = _interarrivals(
        rng, num_requests, mean_rate_rps, process, burst_factor, burst_length, num_periods
    )
    arrivals = np.cumsum(gaps)
    shapes_options = [tuple(shapes) for shapes, _ in shape_mix]
    shape_weights = [w for _, w in shape_mix]
    class_options = [name for name, _ in class_mix]
    class_weights = [w for _, w in class_mix]
    events: list[TrafficEvent] = []
    for i in range(num_requests):
        shapes = shapes_options[_pick_weighted(rng, shapes_options, shape_weights)]
        request_class = class_options[_pick_weighted(rng, class_options, class_weights)]
        n_in = sum(s.num_pixels for s in shapes)
        features = rng.standard_normal((n_in, d_model)).astype(FLOAT_DTYPE)
        events.append(
            TrafficEvent(
                arrival_s=float(arrivals[i]),
                item=WorkItem(
                    item_id=f"req-{i:04d}", features=features, spatial_shapes=shapes
                ),
                request_class=request_class,
            )
        )
    return events


def generate_video_traffic(
    num_streams: int,
    frames_per_stream: int,
    frame_interval_s: float = 1.0 / 30.0,
    spatial_shapes: Sequence[LevelShape] = (LevelShape(8, 12), LevelShape(4, 6)),
    d_model: int = 64,
    video_spec: "VideoStreamSpec | None" = None,
    request_class: str = "video",
    seed: int = 0,
) -> list[TrafficEvent]:
    """Build a deterministic stream-affine ``video`` request stream.

    Each of the ``num_streams`` concurrent streams renders its own
    :class:`~repro.workloads.SyntheticVideoStream` (seeded ``seed + s``, so
    streams differ but the whole mix is reproducible) and emits its frames in
    order at a fixed ``frame_interval_s`` cadence, phase-offset per stream so
    arrivals interleave.  Every event's :class:`~repro.engine.batching.
    WorkItem` carries ``stream_id``/``frame_index`` — the engine's sticky
    routing and the sessions' cold-resync rule both key off these.  The merged
    stream is sorted by arrival with per-stream frame order preserved.
    """
    from repro.workloads.video import SyntheticVideoStream, VideoStreamSpec

    if num_streams < 0:
        raise ValueError("num_streams must be non-negative")
    if frames_per_stream <= 0:
        raise ValueError("frames_per_stream must be positive")
    if frame_interval_s <= 0:
        raise ValueError("frame_interval_s must be positive")
    base_spec = video_spec or VideoStreamSpec()
    shapes = tuple(spatial_shapes)
    events: list[TrafficEvent] = []
    for s in range(num_streams):
        stream = SyntheticVideoStream(
            shapes,
            d_model,
            VideoStreamSpec(
                num_frames=frames_per_stream,
                num_objects=base_spec.num_objects,
                object_size=base_spec.object_size,
                motion=base_spec.motion,
                feature_scale=base_spec.feature_scale,
                seed=seed + s,
            ),
        )
        stream_id = f"stream-{s}"
        offset = s * frame_interval_s / max(num_streams, 1)
        for i in range(frames_per_stream):
            events.append(
                TrafficEvent(
                    arrival_s=offset + i * frame_interval_s,
                    item=WorkItem(
                        item_id=f"{stream_id}/frame-{i:04d}",
                        features=stream.frame(i),
                        spatial_shapes=shapes,
                        stream_id=stream_id,
                        frame_index=i,
                    ),
                    request_class=request_class,
                )
            )
    # Stable sort: equal arrivals keep emission order, so frames of one
    # stream always appear in index order.
    events.sort(key=lambda event: event.arrival_s)
    return events


def merge_traffic(*streams: Sequence[TrafficEvent]) -> list[TrafficEvent]:
    """Merge traffic streams into one arrival-ordered stream.

    Stable in arrival time, so each input's internal order (e.g. a video
    stream's frame order) is preserved — use to mix stateless
    :func:`generate_traffic` load with :func:`generate_video_traffic`
    sessions on one engine.
    """
    merged = [event for stream in streams for event in stream]
    merged.sort(key=lambda event: event.arrival_s)
    return merged


_LIFECYCLE_FAULTS = (QueueFullError, DeadlineExceeded, PoisonRequestError)
"""Per-request lifecycle bounds a tolerant replay records instead of raising:
shed at admission, expired in queue, quarantined as poison.  Anything else
(a model bug, an engine failure) always propagates."""


def replay_traffic(
    engine: ServingEngine,
    events: Sequence[TrafficEvent],
    speed: float = 1.0,
    on_submit: Callable[[int], None] | None = None,
    timeout: float = 120.0,
    tolerate_faults: bool = False,
) -> ReplayResult:
    """Pace a traffic stream into a started engine and gather the results.

    ``speed`` scales the arrival timeline (``2.0`` replays twice as fast);
    ``speed <= 0`` submits everything as fast as possible (open-loop stress).
    ``on_submit(i)`` fires after event *i* is submitted — benchmark fault
    injection hooks a worker kill here.  Returns the served outputs in event
    order; any per-request failure propagates from its future.

    ``tolerate_faults=True`` treats the PR 10 lifecycle bounds —
    :class:`~repro.engine.serving.QueueFullError` at submit,
    :class:`~repro.engine.serving.DeadlineExceeded` and
    :class:`~repro.engine.serving.PoisonRequestError` at completion — as
    *data*: the failed event gets a ``None`` output and its exception is
    recorded in :attr:`ReplayResult.failures`, so a replay through a fault
    plan can still bit-check every request that did serve.
    """
    import time

    start = time.monotonic()
    futures: list = []
    failures: dict[int, BaseException] = {}
    for i, event in enumerate(events):
        if speed > 0:
            target = start + event.arrival_s / speed
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        try:
            futures.append(engine.submit(event.item, event.request_class))
        except QueueFullError as error:
            if not tolerate_faults:
                raise
            failures[i] = error
            futures.append(None)
        if on_submit is not None:
            on_submit(i)
    engine.flush(timeout=timeout)
    outputs: list = []
    for i, future in enumerate(futures):
        if future is None:
            outputs.append(None)
            continue
        try:
            outputs.append(future.result(timeout=timeout))
        except _LIFECYCLE_FAULTS as error:
            if not tolerate_faults:
                raise
            failures[i] = error
            outputs.append(None)
    return ReplayResult(
        outputs=outputs, elapsed_s=time.monotonic() - start, failures=failures
    )


def serial_reference_outputs(
    bank: ModelBank | dict, events: Sequence[TrafficEvent]
) -> list[np.ndarray]:
    """Per-image serial reference: one forward per request, batch size 1.

    This is the ground truth the serving engine is gated against — served
    outputs must be bit-equal to this loop for any scheduling decision.
    Stream-affine events pass their ``(stream_id, frame_index)`` through, so
    the reference bank's sessions see the same frame sequence the engine's
    would (the gate holds for kill-free runs, where warm state follows one
    process).
    """
    bank = ModelBank.coerce(bank)
    outputs = []
    for event in events:
        meta = None
        if event.item.stream_id is not None:
            meta = ((event.item.stream_id, event.item.frame_index),)
        batched = bank.forward(
            event.request_class,
            event.item.features[None],
            list(event.item.spatial_shapes),
            meta,
        )
        outputs.append(np.array(batched[0]))
    return outputs
