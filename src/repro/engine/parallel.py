"""Process-parallel execution of the registered experiments.

Every experiment in :data:`repro.experiments.EXPERIMENTS` is an independent,
deterministic computation, so the experiment suite is embarrassingly parallel
across experiment ids.  :func:`run_experiments_parallel` fans the selected ids
out over a :class:`concurrent.futures.ProcessPoolExecutor` and returns the
same ``{experiment_id: ExperimentResult}`` mapping the serial runner produces
— determinism of the individual experiments guarantees identical results (the
engine test suite asserts this).

The worker imports the experiment registry inside the subprocess, so the
module stays importable without triggering the (heavy) experiment imports.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable


class ParallelExperimentError(RuntimeError):
    """One or more experiments failed in a parallel run.

    Unlike re-raising the first worker exception (which silently discards
    the rest), this carries *every* failure in :attr:`failures` so a
    multi-failure run is diagnosable from a single traceback.  A plain
    ``RuntimeError`` subclass rather than :class:`ExceptionGroup` because the
    suite still supports Python 3.10.
    """

    def __init__(self, failures: dict[str, Exception]) -> None:
        self.failures = dict(failures)
        failed_ids = sorted(self.failures)
        details = "; ".join(
            f"{experiment_id}: {type(error).__name__}: {error}"
            for experiment_id, error in sorted(self.failures.items())
        )
        super().__init__(
            f"{len(failed_ids)} experiment(s) failed: {', '.join(failed_ids)} ({details})"
        )


def _run_single_experiment(experiment_id: str):
    """Worker entry point: run one experiment by id (must be picklable)."""
    from repro.experiments import EXPERIMENTS

    return EXPERIMENTS[experiment_id]()


def run_experiments_parallel(
    ids: list[str],
    jobs: int,
    on_result: Callable[[str, object], None] | None = None,
    worker: Callable[[str], object] = _run_single_experiment,
) -> dict:
    """Run the given experiment ids across *jobs* worker processes.

    Parameters
    ----------
    ids:
        Experiment ids to run (already validated against the registry).
    jobs:
        Number of worker processes; capped at ``len(ids)``.
    on_result:
        Optional ``(experiment_id, result)`` callback fired as each
        experiment *completes* (completion order, not submission order).
        This lets callers persist finished results incrementally, so one
        failing experiment does not discard the others — matching the
        serial runner's save-as-you-go behaviour.
    worker:
        Worker callable mapping an experiment id to its result; defaults to
        the registry-backed runner (overridable as a test seam — must stay
        picklable, i.e. a top-level function).

    Returns
    -------
    ``{experiment_id: ExperimentResult}`` in the input id order.

    Raises
    ------
    ParallelExperimentError
        If any experiment failed; carries every ``{id: exception}`` so a
        multi-failure run reports all failed ids, not just the first.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if not ids:
        return {}
    workers = min(jobs, len(ids))
    results: dict = {}
    errors: dict[str, Exception] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(worker, experiment_id): experiment_id
            for experiment_id in ids
        }
        for future in as_completed(futures):
            experiment_id = futures[future]
            try:
                result = future.result()
            except Exception as error:  # noqa: BLE001 - collected and re-raised below
                errors[experiment_id] = error
                continue
            results[experiment_id] = result
            if on_result is not None:
                on_result(experiment_id, result)
    if errors:
        first_error = errors[min(errors, key=ids.index)]
        raise ParallelExperimentError(errors) from first_error
    return {experiment_id: results[experiment_id] for experiment_id in ids}
