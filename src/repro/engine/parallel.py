"""Process-parallel execution of the registered experiments.

Every experiment in :data:`repro.experiments.EXPERIMENTS` is an independent,
deterministic computation, so the experiment suite is embarrassingly parallel
across experiment ids.  :func:`run_experiments_parallel` fans the selected ids
out over a :class:`concurrent.futures.ProcessPoolExecutor` and returns the
same ``{experiment_id: ExperimentResult}`` mapping the serial runner produces
— determinism of the individual experiments guarantees identical results (the
engine test suite asserts this).

The worker imports the experiment registry inside the subprocess, so the
module stays importable without triggering the (heavy) experiment imports.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable


def _run_single_experiment(experiment_id: str):
    """Worker entry point: run one experiment by id (must be picklable)."""
    from repro.experiments import EXPERIMENTS

    return EXPERIMENTS[experiment_id]()


def run_experiments_parallel(
    ids: list[str],
    jobs: int,
    on_result: Callable[[str, object], None] | None = None,
) -> dict:
    """Run the given experiment ids across *jobs* worker processes.

    Parameters
    ----------
    ids:
        Experiment ids to run (already validated against the registry).
    jobs:
        Number of worker processes; capped at ``len(ids)``.
    on_result:
        Optional ``(experiment_id, result)`` callback fired as each
        experiment *completes* (completion order, not submission order).
        This lets callers persist finished results incrementally, so one
        failing experiment does not discard the others — matching the
        serial runner's save-as-you-go behaviour.

    Returns
    -------
    ``{experiment_id: ExperimentResult}`` in the input id order.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if not ids:
        return {}
    workers = min(jobs, len(ids))
    results: dict = {}
    first_error: Exception | None = None
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_run_single_experiment, experiment_id): experiment_id
            for experiment_id in ids
        }
        for future in as_completed(futures):
            experiment_id = futures[future]
            try:
                result = future.result()
            except Exception as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
                continue
            results[experiment_id] = result
            if on_result is not None:
                on_result(experiment_id, result)
    if first_error is not None:
        raise first_error
    return {experiment_id: results[experiment_id] for experiment_id in ids}
