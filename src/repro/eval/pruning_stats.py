"""Aggregated pruning statistics (the quantities of Fig. 6b).

Collects the sampling-point reduction (PAP), fmap-pixel reduction (FWP) and
computation reduction over all MSDeformAttn blocks of an encoder run under the
DEFA algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoder_runner import DEFAEncoderResult
from repro.core.flops import FlopsBreakdown


@dataclass(frozen=True)
class PruningStatsReport:
    """Reduction ratios of one encoder run (all values in ``[0, 1]``)."""

    model_name: str
    sampling_point_reduction: float
    fmap_pixel_reduction: float
    flops_reduction: float
    flops_reduction_with_output_proj: float
    per_layer_point_reduction: tuple[float, ...]
    per_layer_pixel_reduction: tuple[float, ...]

    def as_row(self) -> list[float]:
        """Row of the Fig. 6(b) table: point, pixel and FLOP reduction (in %)."""
        return [
            100.0 * self.sampling_point_reduction,
            100.0 * self.fmap_pixel_reduction,
            100.0 * self.flops_reduction,
        ]


def collect_pruning_stats(result: DEFAEncoderResult, model_name: str = "") -> PruningStatsReport:
    """Build a :class:`PruningStatsReport` from a DEFA encoder run."""
    if not result.layer_stats:
        raise ValueError("encoder result contains no layer statistics")
    merged = FlopsBreakdown()
    for stats in result.layer_stats:
        merged = merged.merged_with(stats.flops)
    return PruningStatsReport(
        model_name=model_name,
        sampling_point_reduction=result.mean_point_reduction,
        fmap_pixel_reduction=result.mean_pixel_reduction,
        flops_reduction=merged.reduction(include_output_proj=False),
        flops_reduction_with_output_proj=merged.reduction(include_output_proj=True),
        per_layer_point_reduction=tuple(s.point_reduction for s in result.layer_stats),
        per_layer_pixel_reduction=tuple(s.pixel_reduction for s in result.layer_stats),
    )


def summarize_reports(reports: list[PruningStatsReport]) -> dict[str, float]:
    """Average the reduction ratios over several models (the Fig. 6b averages)."""
    if not reports:
        raise ValueError("no reports to summarize")
    return {
        "sampling_point_reduction": float(
            np.mean([r.sampling_point_reduction for r in reports])
        ),
        "fmap_pixel_reduction": float(np.mean([r.fmap_pixel_reduction for r in reports])),
        "flops_reduction": float(np.mean([r.flops_reduction for r in reports])),
    }
