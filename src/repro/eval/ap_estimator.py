"""Calibrated COCO-AP estimator.

The paper reports COCO AP of finetuned Deformable DETR / DN-DETR / DINO
checkpoints under the DEFA algorithm modifications (Fig. 6a).  Finetuned
checkpoints, COCO data and training are unavailable offline, so the
reproduction estimates the AP impact with a two-step substitution that is
documented in DESIGN.md:

1. the *measured* quantity is output fidelity: the relative error of the
   encoder memory produced under a DEFA configuration versus the FP32
   unpruned baseline (see :mod:`repro.eval.fidelity`), plus the synthetic-task
   AP measured with the matched-filter head;
2. a saturating sensitivity curve maps relative output error to AP drop.  The
   curve's scale is anchored to the paper's own ablation (an average 0.8 AP
   drop for FWP, 0.3 for PAP, 0.26 for range narrowing, 0.07 for INT12 and a
   catastrophic 9.7 AP drop for INT8), so the estimator reproduces the paper's
   *relative ordering and magnitudes* of the techniques by construction, while
   the measured fidelity decides how a *new* configuration (different k,
   different thresholds) compares to those anchor points.

The estimator therefore answers "how much worse than the calibration point is
this configuration", not "what exactly would COCO AP be" — which is the right
scope for an offline reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class APEstimate:
    """Estimated detection accuracy of one configuration."""

    baseline_ap: float
    """Published AP of the unmodified model."""

    estimated_ap: float
    """Estimated AP under the evaluated configuration."""

    estimated_drop: float
    """Estimated AP drop (baseline - estimated)."""

    relative_error: float
    """The measured output relative error that produced the estimate."""


@dataclass(frozen=True)
class CalibratedAPEstimator:
    """Map measured output fidelity to estimated COCO AP drops.

    The mapping is ``drop = ap_ceiling * (1 - exp(-relative_error / scale))``:
    linear for small perturbations (drop ≈ ceiling/scale * error) and
    saturating at ``ap_ceiling`` for destructive perturbations (INT8).

    Parameters
    ----------
    reference_error:
        Measured relative output error of the paper's default configuration
        (FWP + PAP + range narrowing + INT12) on the synthetic workload.
    reference_drop:
        AP drop the paper reports for that configuration (~1.4 AP averaged
        over the three benchmarks).
    ap_ceiling:
        Maximum possible drop (roughly the baseline AP itself; the INT8
        configuration approaches it).
    """

    reference_error: float
    reference_drop: float = 1.43
    ap_ceiling: float = 46.0

    def __post_init__(self) -> None:
        if self.reference_error <= 0:
            raise ValueError("reference_error must be positive")
        if not 0 < self.reference_drop < self.ap_ceiling:
            raise ValueError("reference_drop must be in (0, ap_ceiling)")

    @property
    def scale(self) -> float:
        """Error scale of the saturating curve, solved from the calibration point."""
        return -self.reference_error / np.log(1.0 - self.reference_drop / self.ap_ceiling)

    def estimate_drop(self, relative_error: float) -> float:
        """Estimated AP drop for a measured relative output error."""
        if relative_error < 0:
            raise ValueError("relative_error must be non-negative")
        return float(self.ap_ceiling * (1.0 - np.exp(-relative_error / self.scale)))

    def estimate(self, relative_error: float, baseline_ap: float) -> APEstimate:
        """Full estimate record for one model/configuration."""
        drop = self.estimate_drop(relative_error)
        return APEstimate(
            baseline_ap=baseline_ap,
            estimated_ap=baseline_ap - drop,
            estimated_drop=drop,
            relative_error=relative_error,
        )
