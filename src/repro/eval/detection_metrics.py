"""COCO-style detection metrics (IoU matching, AP, mAP over IoU thresholds).

Implements the standard evaluation protocol used by the paper's benchmarks
(average precision on object detection): greedy matching of detections to
ground truth in descending score order at a given IoU threshold, 101-point
interpolated precision/recall integration, and the COCO convention of
averaging AP over IoU thresholds 0.50:0.05:0.95 and over classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.detection_head import DetectionResult, box_iou_matrix

COCO_IOU_THRESHOLDS = tuple(np.arange(0.5, 1.0, 0.05).round(2).tolist())
"""The ten IoU thresholds of the COCO AP@[.50:.95] metric."""


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one scene's detections of one class."""

    scores: np.ndarray
    """Detection scores, sorted descending."""

    matched: np.ndarray
    """Boolean per detection: matched to an unmatched ground-truth box."""

    num_ground_truth: int
    """Number of ground-truth boxes of the class in the scene."""


def match_detections(
    det_boxes: np.ndarray,
    det_scores: np.ndarray,
    gt_boxes: np.ndarray,
    iou_threshold: float = 0.5,
) -> MatchResult:
    """Greedily match detections to ground truth at one IoU threshold."""
    det_boxes = np.asarray(det_boxes, dtype=np.float64).reshape(-1, 4)
    det_scores = np.asarray(det_scores, dtype=np.float64).reshape(-1)
    gt_boxes = np.asarray(gt_boxes, dtype=np.float64).reshape(-1, 4)
    order = np.argsort(-det_scores)
    det_boxes = det_boxes[order]
    det_scores = det_scores[order]

    matched = np.zeros(len(det_boxes), dtype=bool)
    gt_used = np.zeros(len(gt_boxes), dtype=bool)
    if len(det_boxes) and len(gt_boxes):
        iou = box_iou_matrix(det_boxes, gt_boxes)
        for i in range(len(det_boxes)):
            candidates = np.where(~gt_used & (iou[i] >= iou_threshold))[0]
            if candidates.size:
                best = candidates[np.argmax(iou[i, candidates])]
                gt_used[best] = True
                matched[i] = True
    return MatchResult(scores=det_scores, matched=matched, num_ground_truth=len(gt_boxes))


def average_precision(matches: list[MatchResult]) -> float:
    """101-point interpolated AP from per-scene match results of one class."""
    total_gt = sum(m.num_ground_truth for m in matches)
    if total_gt == 0:
        return float("nan")
    scores = np.concatenate([m.scores for m in matches]) if matches else np.zeros(0)
    flags = np.concatenate([m.matched for m in matches]) if matches else np.zeros(0, dtype=bool)
    if scores.size == 0:
        return 0.0
    order = np.argsort(-scores)
    flags = flags[order]
    tp = np.cumsum(flags)
    fp = np.cumsum(~flags)
    recall = tp / total_gt
    precision = tp / np.maximum(tp + fp, 1)

    # 101-point interpolation (COCO convention).
    recall_points = np.linspace(0.0, 1.0, 101)
    precision_envelope = np.maximum.accumulate(precision[::-1])[::-1]
    interpolated = np.zeros_like(recall_points)
    for i, r in enumerate(recall_points):
        idx = np.searchsorted(recall, r, side="left")
        if idx < len(precision_envelope):
            interpolated[i] = precision_envelope[idx]
    return float(interpolated.mean())


def coco_style_map(
    detections: list[DetectionResult],
    gt_boxes: list[np.ndarray],
    gt_labels: list[np.ndarray],
    num_classes: int,
    iou_thresholds: tuple[float, ...] = COCO_IOU_THRESHOLDS,
) -> dict[str, float]:
    """COCO-style mean AP over classes and IoU thresholds.

    Parameters
    ----------
    detections:
        One :class:`DetectionResult` per scene.
    gt_boxes, gt_labels:
        Ground-truth boxes / labels per scene (normalized coordinates).
    num_classes:
        Number of classes to average over.
    iou_thresholds:
        IoU thresholds to average over (COCO uses 0.50:0.05:0.95).

    Returns
    -------
    Dict with ``"ap"`` (mAP over all thresholds, scaled to 0-100 like the
    paper), ``"ap50"`` and ``"ap75"``.
    """
    if len(detections) != len(gt_boxes) or len(detections) != len(gt_labels):
        raise ValueError("detections and ground truth must have the same number of scenes")
    per_threshold: dict[float, list[float]] = {t: [] for t in iou_thresholds}
    for threshold in iou_thresholds:
        for cls in range(num_classes):
            matches = []
            for det, boxes, labels in zip(detections, gt_boxes, gt_labels):
                labels = np.asarray(labels).reshape(-1)
                cls_gt = np.asarray(boxes).reshape(-1, 4)[labels == cls]
                sel = det.labels == cls
                matches.append(
                    match_detections(det.boxes[sel], det.scores[sel], cls_gt, threshold)
                )
            ap = average_precision(matches)
            if not np.isnan(ap):
                per_threshold[threshold].append(ap)

    def mean_over(thresholds: tuple[float, ...]) -> float:
        values = [np.mean(per_threshold[t]) for t in thresholds if per_threshold[t]]
        return float(np.mean(values)) * 100.0 if values else 0.0

    return {
        "ap": mean_over(iou_thresholds),
        "ap50": mean_over((0.5,)),
        "ap75": mean_over((0.75,)) if 0.75 in per_threshold else mean_over(iou_thresholds),
    }
