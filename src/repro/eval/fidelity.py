"""Output-fidelity metrics between the baseline and a modified encoder.

The accuracy impact of the DEFA algorithm techniques (FWP, PAP, range
narrowing, quantization) is fundamentally a question of how much the encoder
output deviates from the full-precision, unpruned reference.  These metrics
quantify that deviation; the calibrated AP estimator
(:mod:`repro.eval.ap_estimator`) maps them to estimated COCO AP drops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.tensor_utils import cosine_similarity


@dataclass(frozen=True)
class FidelityReport:
    """Deviation of a modified encoder output from the reference output."""

    relative_error: float
    """``||y - y_ref|| / ||y_ref||`` over the whole memory tensor."""

    mean_cosine_similarity: float
    """Average per-token cosine similarity between modified and reference output."""

    max_absolute_error: float
    """Worst-case absolute deviation of any element."""

    signal_to_noise_db: float
    """Output signal-to-perturbation ratio in dB."""

    @property
    def mean_cosine_distance(self) -> float:
        """``1 - mean cosine similarity`` (0 = identical directions)."""
        return 1.0 - self.mean_cosine_similarity


def compare_outputs(reference: np.ndarray, modified: np.ndarray) -> FidelityReport:
    """Compute the :class:`FidelityReport` between two ``(N, D)`` outputs."""
    reference = np.asarray(reference, dtype=np.float64)
    modified = np.asarray(modified, dtype=np.float64)
    if reference.shape != modified.shape:
        raise ValueError("reference and modified outputs must have the same shape")
    if reference.size == 0:
        raise ValueError("outputs must not be empty")

    diff = modified - reference
    ref_norm = np.linalg.norm(reference)
    diff_norm = np.linalg.norm(diff)
    relative_error = float(diff_norm / max(ref_norm, 1e-12))
    cos = cosine_similarity(reference, modified, axis=-1)
    snr = 10.0 * np.log10(max(ref_norm, 1e-12) ** 2 / max(diff_norm, 1e-12) ** 2)
    return FidelityReport(
        relative_error=relative_error,
        mean_cosine_similarity=float(np.mean(cos)),
        max_absolute_error=float(np.max(np.abs(diff))),
        signal_to_noise_db=float(snr),
    )
