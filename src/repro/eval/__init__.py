"""Evaluation utilities: detection metrics, fidelity metrics, pruning stats, profiling."""

from repro.eval.detection_metrics import average_precision, coco_style_map, match_detections
from repro.eval.fidelity import FidelityReport, compare_outputs
from repro.eval.ap_estimator import APEstimate, CalibratedAPEstimator
from repro.eval.pruning_stats import PruningStatsReport, collect_pruning_stats
from repro.eval.profiler import (
    LatencyBreakdown,
    SparseSpeedupReport,
    measure_sparse_speedup,
    profile_defa_kernel_breakdown,
    profile_gpu_latency_breakdown,
)

__all__ = [
    "average_precision",
    "coco_style_map",
    "match_detections",
    "FidelityReport",
    "compare_outputs",
    "APEstimate",
    "CalibratedAPEstimator",
    "PruningStatsReport",
    "collect_pruning_stats",
    "LatencyBreakdown",
    "profile_gpu_latency_breakdown",
    "SparseSpeedupReport",
    "measure_sparse_speedup",
    "profile_defa_kernel_breakdown",
]
