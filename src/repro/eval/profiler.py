"""Profilers: the Fig. 1b GPU latency breakdown and batched-engine throughput.

The paper profiles the MSDeformAttn latency on an RTX 3090Ti for Deformable
DETR, DN-DETR and DINO and finds that MSGS + aggregation account for over 60 %
of it while contributing only ~3 % of the FLOPs.  This module reproduces both
numbers from the GPU cost model and the analytic FLOP breakdown.

It also measures the wall-clock win of the batched execution engine
(:func:`measure_encoder_batched_speedup`): one batched forward of a same-shape
image batch against the equivalent loop of single-image forwards.  The win
comes from amortizing per-call dispatch overhead across the batch, so it is
largest for streams of small images (the many-small-requests serving regime)
and tapers toward parity once per-image tensor work dominates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.gpu import GPUCostModel, GPUSpec, RTX_3090TI
from repro.nn.encoder import DeformableEncoder
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.rng import as_rng
from repro.utils.shapes import LevelShape, total_pixels
from repro.workloads.specs import WorkloadSpec


@dataclass(frozen=True)
class LatencyBreakdown:
    """MSGS-vs-others split of one model's MSDeformAttn latency."""

    model_name: str
    gpu_name: str
    msgs_aggregation_fraction: float
    """Fraction of MSDeformAttn latency spent in MSGS + aggregation."""

    others_fraction: float
    """Fraction spent in the projections, softmax and overheads."""

    msgs_flops_fraction: float
    """Fraction of the layer FLOPs contributed by MSGS + aggregation."""

    layer_latency_s: float
    """Absolute modelled latency of one MSDeformAttn layer."""

    def as_row(self) -> list[float | str]:
        """Row of the Fig. 1(b) table."""
        return [
            self.model_name,
            100.0 * self.msgs_aggregation_fraction,
            100.0 * self.others_fraction,
            100.0 * self.msgs_flops_fraction,
        ]


def profile_gpu_latency_breakdown(
    workload: WorkloadSpec, gpu: GPUSpec = RTX_3090TI
) -> LatencyBreakdown:
    """Compute the Fig. 1(b) latency breakdown for one workload."""
    model = GPUCostModel(gpu)
    latency = model.msdeform_layer_latency(workload)
    flops = workload.layer_flops_breakdown()
    msgs_flops = flops["msgs"] + flops["aggregation"]
    total_flops = sum(flops.values())
    return LatencyBreakdown(
        model_name=workload.model.display_name,
        gpu_name=gpu.name,
        msgs_aggregation_fraction=latency.msgs_fraction,
        others_fraction=1.0 - latency.msgs_fraction,
        msgs_flops_fraction=msgs_flops / total_flops,
        layer_latency_s=latency.total_s,
    )


@dataclass(frozen=True)
class BatchedThroughputReport:
    """Measured batched-vs-serial wall clock of one same-shape workload."""

    batch_size: int
    num_tokens: int
    """Flattened multi-scale tokens per image."""

    d_model: int
    serial_s: float
    """Best-of-repeats wall clock of the single-image loop over the batch."""

    batched_s: float
    """Best-of-repeats wall clock of one batched forward."""

    max_abs_diff: float
    """Max elementwise deviation of the batched output from the serial loop."""

    @property
    def speedup(self) -> float:
        """Serial-over-batched wall-clock ratio (> 1 means batching wins)."""
        return self.serial_s / self.batched_s if self.batched_s > 0 else float("inf")

    def as_row(self) -> list[float | int]:
        return [
            self.batch_size,
            self.num_tokens,
            1e3 * self.serial_s,
            1e3 * self.batched_s,
            self.speedup,
        ]


def measure_encoder_batched_speedup(
    encoder: DeformableEncoder,
    spatial_shapes: list[LevelShape],
    batch_size: int = 8,
    repeats: int = 3,
    rng: np.random.Generator | int | None = None,
) -> BatchedThroughputReport:
    """Time a batched encoder forward against the single-image loop.

    Runs ``batch_size`` synthetic same-shape images through *encoder* twice —
    once as a Python loop of single-image forwards, once as one batched
    forward — and reports the best-of-*repeats* wall clock of each, plus the
    maximum elementwise deviation between the two results (the equivalence
    the batched kernels guarantee).
    """
    if batch_size <= 0 or repeats <= 0:
        raise ValueError("batch_size and repeats must be positive")
    rng = as_rng(rng)
    n_in = total_pixels(spatial_shapes)
    d_model = encoder.d_model
    features = rng.standard_normal((batch_size, n_in, d_model)).astype(FLOAT_DTYPE)
    pos = sine_positional_encoding(spatial_shapes, d_model)
    reference_points = make_reference_points(spatial_shapes)

    def run_serial() -> np.ndarray:
        return np.stack(
            [
                encoder.forward(features[b], pos, reference_points, spatial_shapes)
                for b in range(batch_size)
            ]
        )

    def run_batched() -> np.ndarray:
        return encoder.forward(features, pos, reference_points, spatial_shapes)

    serial_out = run_serial()  # warm-up + reference output
    batched_out = run_batched()
    max_abs_diff = float(np.max(np.abs(serial_out - batched_out)))

    serial_s = min(
        _timed(run_serial) for _ in range(repeats)
    )
    batched_s = min(
        _timed(run_batched) for _ in range(repeats)
    )
    return BatchedThroughputReport(
        batch_size=batch_size,
        num_tokens=n_in,
        d_model=d_model,
        serial_s=serial_s,
        batched_s=batched_s,
        max_abs_diff=max_abs_diff,
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
