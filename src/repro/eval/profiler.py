"""Profilers: the Fig. 1b GPU latency breakdown and batched-engine throughput.

The paper profiles the MSDeformAttn latency on an RTX 3090Ti for Deformable
DETR, DN-DETR and DINO and finds that MSGS + aggregation account for over 60 %
of it while contributing only ~3 % of the FLOPs.  This module reproduces both
numbers from the GPU cost model and the analytic FLOP breakdown.

It also measures the wall-clock win of the batched execution engine
(:func:`measure_encoder_batched_speedup`): one batched forward of a same-shape
image batch against the equivalent loop of single-image forwards.  The win
comes from amortizing per-call dispatch overhead across the batch, so it is
largest for streams of small images (the many-small-requests serving regime)
and tapers toward parity once per-image tensor work dominates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.gpu import GPUCostModel, GPUSpec, RTX_3090TI
from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.core.pipeline import DEFAAttention
from repro.kernels import COMPILED_AVAILABLE, ExecutionOptions, ExecutionPlan
from repro.nn.encoder import DeformableEncoder
from repro.nn.msdeform_attn import MSDeformAttn
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.rng import as_rng
from repro.utils.shapes import LevelShape, total_pixels
from repro.utils.timing import KernelTimings, collect_kernel_timings
from repro.workloads.specs import WorkloadSpec, get_workload


@dataclass(frozen=True)
class LatencyBreakdown:
    """MSGS-vs-others split of one model's MSDeformAttn latency."""

    model_name: str
    gpu_name: str
    msgs_aggregation_fraction: float
    """Fraction of MSDeformAttn latency spent in MSGS + aggregation."""

    others_fraction: float
    """Fraction spent in the projections, softmax and overheads."""

    msgs_flops_fraction: float
    """Fraction of the layer FLOPs contributed by MSGS + aggregation."""

    layer_latency_s: float
    """Absolute modelled latency of one MSDeformAttn layer."""

    def as_row(self) -> list[float | str]:
        """Row of the Fig. 1(b) table."""
        return [
            self.model_name,
            100.0 * self.msgs_aggregation_fraction,
            100.0 * self.others_fraction,
            100.0 * self.msgs_flops_fraction,
        ]


def profile_gpu_latency_breakdown(
    workload: WorkloadSpec, gpu: GPUSpec = RTX_3090TI
) -> LatencyBreakdown:
    """Compute the Fig. 1(b) latency breakdown for one workload."""
    model = GPUCostModel(gpu)
    latency = model.msdeform_layer_latency(workload)
    flops = workload.layer_flops_breakdown()
    msgs_flops = flops["msgs"] + flops["aggregation"]
    total_flops = sum(flops.values())
    return LatencyBreakdown(
        model_name=workload.model.display_name,
        gpu_name=gpu.name,
        msgs_aggregation_fraction=latency.msgs_fraction,
        others_fraction=1.0 - latency.msgs_fraction,
        msgs_flops_fraction=msgs_flops / total_flops,
        layer_latency_s=latency.total_s,
    )


@dataclass(frozen=True)
class BatchedThroughputReport:
    """Measured batched-vs-serial wall clock of one same-shape workload."""

    batch_size: int
    num_tokens: int
    """Flattened multi-scale tokens per image."""

    d_model: int
    serial_s: float
    """Best-of-repeats wall clock of the single-image loop over the batch."""

    batched_s: float
    """Best-of-repeats wall clock of one batched forward."""

    max_abs_diff: float
    """Max elementwise deviation of the batched output from the serial loop."""

    @property
    def speedup(self) -> float:
        """Serial-over-batched wall-clock ratio (> 1 means batching wins)."""
        return self.serial_s / self.batched_s if self.batched_s > 0 else float("inf")

    def as_row(self) -> list[float | int]:
        return [
            self.batch_size,
            self.num_tokens,
            1e3 * self.serial_s,
            1e3 * self.batched_s,
            self.speedup,
        ]


def measure_encoder_batched_speedup(
    encoder: DeformableEncoder,
    spatial_shapes: list[LevelShape],
    batch_size: int = 8,
    repeats: int = 3,
    rng: np.random.Generator | int | None = None,
) -> BatchedThroughputReport:
    """Time a batched encoder forward against the single-image loop.

    Runs ``batch_size`` synthetic same-shape images through *encoder* twice —
    once as a Python loop of single-image forwards, once as one batched
    forward — and reports the best-of-*repeats* wall clock of each, plus the
    maximum elementwise deviation between the two results (the equivalence
    the batched kernels guarantee).
    """
    if batch_size <= 0 or repeats <= 0:
        raise ValueError("batch_size and repeats must be positive")
    rng = as_rng(rng)
    n_in = total_pixels(spatial_shapes)
    d_model = encoder.d_model
    features = rng.standard_normal((batch_size, n_in, d_model)).astype(FLOAT_DTYPE)
    pos = sine_positional_encoding(spatial_shapes, d_model)
    reference_points = make_reference_points(spatial_shapes)

    def run_serial() -> np.ndarray:
        return np.stack(
            [
                encoder.forward(features[b], pos, reference_points, spatial_shapes)
                for b in range(batch_size)
            ]
        )

    def run_batched() -> np.ndarray:
        return encoder.forward(features, pos, reference_points, spatial_shapes)

    serial_out = run_serial()  # warm-up + reference output
    batched_out = run_batched()
    max_abs_diff = float(np.max(np.abs(serial_out - batched_out)))

    serial_s = min(
        _timed(run_serial) for _ in range(repeats)
    )
    batched_s = min(
        _timed(run_batched) for _ in range(repeats)
    )
    return BatchedThroughputReport(
        batch_size=batch_size,
        num_tokens=n_in,
        d_model=d_model,
        serial_s=serial_s,
        batched_s=batched_s,
        max_abs_diff=max_abs_diff,
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# --------------------------------------------------------------------------
# Sparse-execution profiling


@dataclass(frozen=True)
class SparseSpeedupReport:
    """Dense-vs-sparse wall clock of one DEFA block at one operating point."""

    workload: str
    fwp_k: float
    pap_threshold: float
    num_tokens: int
    pixel_reduction: float
    """Fraction of fmap pixels pruned by the incoming FWP mask."""

    point_reduction: float
    """Fraction of sampling points pruned by PAP in the timed block."""

    flops_reduction: float
    """Analytic FLOP reduction of the prunable operators (Fig. 6b metric)."""

    dense_s: float
    """Best-of-repeats wall clock of the masked-dense block forward."""

    sparse_s: float
    """Best-of-repeats wall clock of the compacted-kernel block forward."""

    max_abs_diff: float
    """Max elementwise deviation between the two block outputs."""

    dense_kernels: dict[str, float]
    """Per-section seconds of one dense forward (projection/gather/...)."""

    sparse_kernels: dict[str, float]
    """Per-section seconds of one sparse forward."""

    @property
    def speedup(self) -> float:
        """Dense-over-sparse wall-clock ratio (> 1 means sparse wins)."""
        return self.dense_s / self.sparse_s if self.sparse_s > 0 else float("inf")

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly record for the benchmark harness."""
        return {
            "workload": self.workload,
            "fwp_k": self.fwp_k,
            "pap_threshold": self.pap_threshold,
            "num_tokens": self.num_tokens,
            "pixel_reduction": self.pixel_reduction,
            "point_reduction": self.point_reduction,
            "flops_reduction": self.flops_reduction,
            "dense_ms": 1e3 * self.dense_s,
            "sparse_ms": 1e3 * self.sparse_s,
            "speedup": self.speedup,
            "max_abs_diff": self.max_abs_diff,
            "dense_kernels_ms": {k: 1e3 * v for k, v in self.dense_kernels.items()},
            "sparse_kernels_ms": {k: 1e3 * v for k, v in self.sparse_kernels.items()},
        }


SPARSE_SWEEP_OPERATING_POINTS: tuple[tuple[float, float], ...] = (
    (0.0, 0.0),
    (0.5, 0.01),
    (0.75, 0.035),
    (1.0, 0.035),
    (1.15, 0.05),
)
"""Default ``(fwp_k, pap_threshold)`` sweep of the sparse-speedup benchmark.

Reduction grows along the sweep: the paper operating point sits in the
middle, ``fwp_k = 1.0`` yields roughly the 50 % pixel reduction quoted as the
benchmark target at the paper scale, and the extremes bracket no pruning and
aggressive pruning.  ``fwp_k == 0`` disables FWP, ``pap_threshold == 0``
disables PAP."""


def sweep_sparse_speedup(
    model_name: str = "deformable_detr",
    scale: str = "paper",
    operating_points: tuple[tuple[float, float], ...] | None = None,
    repeats: int = 3,
    rng_seed: int = 0,
    quant_bits: int | None = 12,
    query_pruning: bool = True,
) -> list[SparseSpeedupReport]:
    """Dense-vs-sparse speedup sweep over FWP/PAP operating points.

    Every operating point re-seeds the generator with *rng_seed*, so all
    points see identical synthetic weights and features and the measured
    reduction ratios are directly comparable.

    ``query_pruning`` (default on — sparse execution v2) extends the FWP mask
    to the query side in *both* timed paths: pruned pixels stop acting as
    queries, the dense path zeroes their rows, the sparse path skips their
    projections and sampling points entirely.  The reported
    ``point_reduction`` therefore includes the points of pruned queries.
    """
    workload = get_workload(model_name, scale)
    points = operating_points if operating_points is not None else SPARSE_SWEEP_OPERATING_POINTS
    reports = []
    for fwp_k, pap_threshold in points:
        config = DEFAConfig(
            enable_fwp=fwp_k > 0,
            fwp_k=fwp_k if fwp_k > 0 else 0.75,
            enable_pap=pap_threshold > 0,
            pap_threshold=pap_threshold,
            quant_bits=quant_bits,
            enable_query_pruning=query_pruning,
        )
        reports.append(
            measure_sparse_speedup(workload, config, repeats=repeats, rng=rng_seed)
        )
    return reports


def profile_defa_kernel_breakdown(
    defa: DEFAAttention,
    query: np.ndarray,
    reference_points: np.ndarray,
    value_input: np.ndarray,
    spatial_shapes: list[LevelShape],
    fmap_mask: np.ndarray | None = None,
) -> KernelTimings:
    """Per-kernel wall-clock breakdown of one DEFA block forward.

    Returns the :class:`~repro.utils.timing.KernelTimings` of a single
    ``forward_detailed`` call: ``value_proj`` / ``query_proj`` /
    ``output_proj`` (projections), ``neighbors`` (bilinear index math),
    ``gather`` and ``aggregate`` (the MSGS hot loop) and ``fwp`` (frequency
    counting + mask generation).  This is the software-side analogue of the
    Fig. 1b latency breakdown, available for both execution paths via
    ``defa.sparse_mode``.
    """
    with collect_kernel_timings() as timings:
        defa.forward_detailed(
            query, reference_points, value_input, spatial_shapes, fmap_mask=fmap_mask
        )
    return timings


def measure_sparse_speedup(
    workload: WorkloadSpec,
    config: DEFAConfig | None = None,
    repeats: int = 3,
    rng: np.random.Generator | int | None = None,
) -> SparseSpeedupReport:
    """Time one DEFA block in dense vs sparse mode at a pruning operating point.

    Builds an :class:`MSDeformAttn` block at the workload's model geometry,
    runs a first (unmasked) block to obtain a realistic FWP mask, then times
    the *second* block — the one that receives the mask — once with
    ``sparse_mode="dense"`` (pruning simulated by zeroing) and once with
    ``sparse_mode="sparse"`` (compacted gather/scatter kernels).  Both runs
    see identical inputs and masks, so ``max_abs_diff`` measures the numeric
    equivalence of the two paths directly.  All config switches — including
    ``enable_query_pruning`` (sparse execution v2) — apply to both paths, so
    the comparison always times two implementations of the same semantics.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    config = config or DEFAConfig()
    rng = as_rng(rng)
    shapes = workload.spatial_shapes
    model = workload.model
    n_in = workload.num_tokens
    attn = MSDeformAttn(
        d_model=model.d_model,
        num_heads=model.num_heads,
        num_levels=model.num_levels,
        num_points=model.num_points,
        rng=rng,
    )
    features = rng.standard_normal((n_in, model.d_model)).astype(FLOAT_DTYPE)
    pos = sine_positional_encoding(shapes, model.d_model)
    reference_points = make_reference_points(shapes)
    query = features + pos

    defa = DEFAAttention(attn, config, ExecutionOptions(sparse_mode="dense"))
    first = defa.forward_detailed(query, reference_points, features, shapes)
    fmap_mask = first.fmap_mask_next.copy()
    del first  # release the first block's trace before timing

    def run_dense():
        defa.sparse_mode = "dense"
        return defa.forward_detailed(
            query, reference_points, features, shapes, fmap_mask=fmap_mask
        )

    def run_sparse():
        defa.sparse_mode = "sparse"
        return defa.forward_detailed(
            query, reference_points, features, shapes, fmap_mask=fmap_mask
        )

    dense_out = run_dense()  # warm-up + reference
    sparse_out = run_sparse()
    max_abs_diff = float(np.max(np.abs(dense_out.output - sparse_out.output)))
    stats = dense_out.stats
    del dense_out, sparse_out  # release the big traces before timing

    # Interleave the repeats: wall-clock on a shared host drifts in "eras"
    # (allocator/page-cache state), and alternating the two paths exposes
    # both to the same conditions so the best-of ratio stays meaningful.
    dense_times, sparse_times = [], []
    for _ in range(repeats):
        dense_times.append(_timed(run_dense))
        sparse_times.append(_timed(run_sparse))
    dense_s = min(dense_times)
    sparse_s = min(sparse_times)

    defa.sparse_mode = "dense"
    dense_kernels = profile_defa_kernel_breakdown(
        defa, query, reference_points, features, shapes, fmap_mask=fmap_mask
    )
    defa.sparse_mode = "sparse"
    sparse_kernels = profile_defa_kernel_breakdown(
        defa, query, reference_points, features, shapes, fmap_mask=fmap_mask
    )

    return SparseSpeedupReport(
        workload=workload.name,
        fwp_k=config.fwp_k if config.enable_fwp else 0.0,
        pap_threshold=config.pap_threshold if config.enable_pap else 0.0,
        num_tokens=n_in,
        pixel_reduction=stats.pixel_reduction,
        point_reduction=stats.point_reduction,
        flops_reduction=stats.flops_reduction,
        dense_s=dense_s,
        sparse_s=sparse_s,
        max_abs_diff=max_abs_diff,
        dense_kernels=dict(dense_kernels.seconds),
        sparse_kernels=dict(sparse_kernels.seconds),
    )


# --------------------------------------------------------------------------
# Block-sparse encoder profiling (PR 4)


@dataclass(frozen=True)
class EncoderSparseSpeedupReport:
    """End-to-end encoder wall clock of the three execution profiles.

    All three runs execute the *same* block-sparse-encoder semantics (query
    pruning on, pruned rows frozen at the block input); they differ only in
    which stages run compacted:

    * ``dense_s`` — everything masked-dense (pruning changes numerics only);
    * ``sparse_dense_ffn_s`` — sparse attention blocks, masked-dense
      inter-block FFN/LayerNorm stage: the PR 3 cost profile;
    * ``sparse_s`` — the full block-sparse encoder (row-compacted FFN stage)
      on the ``"reference"`` kernel backend: the PR 4 execution exactly;
    * ``sparse_fused_s`` — the same block-sparse encoder on the ``"fused"``
      backend (single-pass kernels + execution-plan buffer reuse, PR 5).
      Bit-identical outputs, so :attr:`fused_max_abs_diff` must be 0.
    """

    workload: str
    fwp_k: float
    pap_threshold: float
    num_layers: int
    num_tokens: int
    pixel_reduction: float
    """Mean FWP pixel reduction over the masked blocks (2..L)."""

    dense_s: float
    sparse_dense_ffn_s: float
    sparse_s: float
    sparse_fused_s: float
    """Best-of-repeats wall clock of the fused-backend block-sparse run."""

    fused_max_abs_diff: float
    """Max elementwise deviation of the fused-backend memory from the
    reference-backend block-sparse memory.  The fused backend is
    bit-identical by construction (same float ops, reused buffers), so any
    non-zero value here is an execution bug, not rounding."""

    max_abs_diff: float
    """Max elementwise deviation of the sparse memory from the dense memory.

    End-to-end across many blocks this is *not* bounded by kernel rounding
    alone: FWP/PAP are threshold decisions, so a ~1e-7 kernel difference in
    one block can flip a mask bit downstream, after which the two runs
    legitimately execute different prune trajectories and whole rows differ
    by O(feature magnitude).  Check :attr:`mask_trajectory_matched` before
    reading this as an execution-path drift; the machine-independent
    equivalence gate is :func:`measure_encoder_blockwise_equivalence`.
    """

    dense_pixels_kept: tuple[int, ...]
    """Per-block incoming-mask keep counts of the dense run (first block:
    ``num_tokens`` by the no-mask convention)."""

    sparse_pixels_kept: tuple[int, ...]
    """Per-block incoming-mask keep counts of the block-sparse run."""

    mask_trajectory_matched: bool
    """Whether both runs generated bit-identical FWP masks in every block
    (exact mask comparison, not just keep counts — a count-preserving flip
    would still diverge the trajectories)."""

    dense_kernels: dict[str, float]
    """Per-section seconds of one masked-dense encoder forward (now including
    the ``ffn`` / ``norm`` sections of the inter-block stage)."""

    sparse_kernels: dict[str, float]
    """Per-section seconds of one block-sparse encoder forward."""

    sparse_compiled_s: float | None = None
    """Best-of-repeats wall clock of the compiled-backend block-sparse run
    (``None`` when the compiled kernel library is not built on this host)."""

    compiled_max_abs_diff: float | None = None
    """Max elementwise deviation of the compiled-backend memory from the
    fused-backend memory; gated at the compiled backend's tolerance tier
    (:data:`repro.kernels.compiled_backend.COMPILED_EQUIVALENCE_TOL`, 0.0)."""

    @property
    def speedup(self) -> float:
        """Dense-over-block-sparse encoder wall-clock ratio."""
        return self.dense_s / self.sparse_s if self.sparse_s > 0 else float("inf")

    @property
    def ffn_speedup(self) -> float:
        """Additional end-to-end win of the compacted FFN stage over the PR 3
        profile (sparse attention + dense inter-block work)."""
        return self.sparse_dense_ffn_s / self.sparse_s if self.sparse_s > 0 else float("inf")

    @property
    def fused_speedup(self) -> float:
        """Additional end-to-end win of the fused backend + execution plans
        over the PR 4 block-sparse path (the reference backend)."""
        return (
            self.sparse_s / self.sparse_fused_s if self.sparse_fused_s > 0 else float("inf")
        )

    @property
    def compiled_speedup(self) -> float | None:
        """Additional end-to-end win of the compiled C kernels over the fused
        numpy backend (``None`` when the compiled backend was not measured)."""
        if self.sparse_compiled_s is None:
            return None
        return (
            self.sparse_fused_s / self.sparse_compiled_s
            if self.sparse_compiled_s > 0
            else float("inf")
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "fwp_k": self.fwp_k,
            "pap_threshold": self.pap_threshold,
            "num_layers": self.num_layers,
            "num_tokens": self.num_tokens,
            "pixel_reduction": self.pixel_reduction,
            "dense_ms": 1e3 * self.dense_s,
            "sparse_dense_ffn_ms": 1e3 * self.sparse_dense_ffn_s,
            "sparse_ms": 1e3 * self.sparse_s,
            "sparse_fused_ms": 1e3 * self.sparse_fused_s,
            "speedup": self.speedup,
            "ffn_speedup": self.ffn_speedup,
            "fused_speedup": self.fused_speedup,
            "fused_max_abs_diff": self.fused_max_abs_diff,
            "max_abs_diff": self.max_abs_diff,
            "dense_pixels_kept": list(self.dense_pixels_kept),
            "sparse_pixels_kept": list(self.sparse_pixels_kept),
            "mask_trajectory_matched": self.mask_trajectory_matched,
            "dense_kernels_ms": {k: 1e3 * v for k, v in self.dense_kernels.items()},
            "sparse_kernels_ms": {k: 1e3 * v for k, v in self.sparse_kernels.items()},
            **(
                {
                    "sparse_compiled_ms": 1e3 * self.sparse_compiled_s,
                    "compiled_speedup": self.compiled_speedup,
                    "compiled_max_abs_diff": self.compiled_max_abs_diff,
                }
                if self.sparse_compiled_s is not None
                else {}
            ),
        }


def measure_encoder_sparse_speedup(
    workload: WorkloadSpec,
    config: DEFAConfig | None = None,
    num_layers: int = 3,
    repeats: int = 3,
    rng: np.random.Generator | int | None = None,
) -> EncoderSparseSpeedupReport:
    """Time a full DEFA encoder in the three block-sparse execution profiles.

    Builds a :class:`DeformableEncoder` at the workload's model geometry
    (*num_layers* blocks; the first block never receives a mask, so at least
    two layers are required for any pruning to execute) and one
    :class:`DEFAEncoderRunner` with query pruning semantics, then times

    1. ``sparse_mode="dense"`` — the all-masked-dense reference,
    2. ``sparse_mode="sparse"`` with ``enable_sparse_ffn=False`` — the PR 3
       cost profile (compacted attention, dense inter-block stage),
    3. ``sparse_mode="sparse"`` — the full block-sparse encoder on the
       ``"reference"`` kernel backend (the PR 4 path), and
    4. the same block-sparse encoder on the ``"fused"`` backend (PR 5:
       single-pass kernels + execution-plan buffer reuse),

    interleaved best-of-*repeats*.  All four see identical inputs and
    produce the same memory (``max_abs_diff`` reports dense vs. full-sparse;
    ``fused_max_abs_diff`` reports fused vs. reference, which must be 0), so
    :attr:`EncoderSparseSpeedupReport.ffn_speedup` isolates the win of
    carrying FWP pruning through the FFN/LayerNorm stage and
    :attr:`EncoderSparseSpeedupReport.fused_speedup` the win of the fused
    backend over the PR 4 path.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if num_layers < 2:
        raise ValueError("num_layers must be >= 2 (the first block is never masked)")
    config = config or DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
    rng = as_rng(rng)
    shapes = workload.spatial_shapes
    model = workload.model
    n_in = workload.num_tokens
    encoder = DeformableEncoder(
        num_layers=num_layers,
        d_model=model.d_model,
        num_heads=model.num_heads,
        num_levels=model.num_levels,
        num_points=model.num_points,
        ffn_dim=model.ffn_dim,
        activation=model.activation,
        rng=rng,
    )
    features = rng.standard_normal((n_in, model.d_model)).astype(FLOAT_DTYPE)
    pos = sine_positional_encoding(shapes, model.d_model)
    reference_points = make_reference_points(shapes)

    runner = DEFAEncoderRunner(encoder, config, ExecutionOptions(sparse_mode="dense"))

    def run(mode: str, sparse_ffn: bool, backend: str = "reference"):
        runner.sparse_mode = mode
        runner.enable_sparse_ffn = sparse_ffn
        runner.kernel_backend = backend
        return runner.forward(features, pos, reference_points, shapes)

    dense_res = run("dense", False)  # warm-up + reference
    sparse_res = run("sparse", True)
    fused_res = run("sparse", True, backend="fused")  # also warms the plan arena
    max_abs_diff = float(np.max(np.abs(dense_res.memory - sparse_res.memory)))
    fused_max_abs_diff = float(np.max(np.abs(sparse_res.memory - fused_res.memory)))
    compiled_max_abs_diff = None
    if COMPILED_AVAILABLE:
        compiled_res = run("sparse", True, backend="compiled")
        compiled_max_abs_diff = float(
            np.max(np.abs(fused_res.memory - compiled_res.memory))
        )
        del compiled_res
    pixel_reduction = sparse_res.mean_pixel_reduction
    dense_pixels_kept = tuple(s.pixels_kept for s in dense_res.layer_stats)
    sparse_pixels_kept = tuple(s.pixels_kept for s in sparse_res.layer_stats)
    # Exact per-block mask comparison (keep counts alone would miss a
    # count-preserving flip, which still diverges the trajectories).
    mask_trajectory_matched = all(
        np.array_equal(a, b)
        for a, b in zip(dense_res.fmap_masks, sparse_res.fmap_masks)
    )
    del dense_res, sparse_res, fused_res

    dense_times: list[float] = []
    pr3_times: list[float] = []
    sparse_times: list[float] = []
    fused_times: list[float] = []
    compiled_times: list[float] = []
    for _ in range(repeats):
        dense_times.append(_timed(lambda: run("dense", False)))
        pr3_times.append(_timed(lambda: run("sparse", False)))
        sparse_times.append(_timed(lambda: run("sparse", True)))
        fused_times.append(_timed(lambda: run("sparse", True, backend="fused")))
        if COMPILED_AVAILABLE:
            compiled_times.append(
                _timed(lambda: run("sparse", True, backend="compiled"))
            )

    with collect_kernel_timings() as dense_kernels:
        run("dense", False)
    with collect_kernel_timings() as sparse_kernels:
        run("sparse", True)

    return EncoderSparseSpeedupReport(
        workload=workload.name,
        fwp_k=config.fwp_k if config.enable_fwp else 0.0,
        pap_threshold=config.pap_threshold if config.enable_pap else 0.0,
        num_layers=num_layers,
        num_tokens=n_in,
        pixel_reduction=pixel_reduction,
        dense_s=min(dense_times),
        sparse_dense_ffn_s=min(pr3_times),
        sparse_s=min(sparse_times),
        sparse_fused_s=min(fused_times),
        sparse_compiled_s=min(compiled_times) if compiled_times else None,
        compiled_max_abs_diff=compiled_max_abs_diff,
        fused_max_abs_diff=fused_max_abs_diff,
        max_abs_diff=max_abs_diff,
        dense_pixels_kept=dense_pixels_kept,
        sparse_pixels_kept=sparse_pixels_kept,
        mask_trajectory_matched=mask_trajectory_matched,
        dense_kernels=dict(dense_kernels.seconds),
        sparse_kernels=dict(sparse_kernels.seconds),
    )


def measure_encoder_blockwise_equivalence(
    workload: WorkloadSpec,
    config: DEFAConfig | None = None,
    num_layers: int = 3,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Max dense/sparse output drift over a *lockstep* multi-block run.

    The end-to-end encoder comparison is trajectory-sensitive: FWP/PAP are
    threshold decisions, so kernel-rounding differences can flip a mask bit
    downstream and the two runs then prune different pixels (a property of
    the algorithm, not of the execution paths).  This probe removes that
    sensitivity: at every block, *both* paths receive the dense trajectory's
    block input and incoming FWP mask, their attention + inter-block-stage
    outputs are compared, and the dense output is carried forward.  Identical
    inputs mean identical threshold decisions, so the returned maximum is a
    machine-independent measure of pure execution-path drift — 1e-5 for fp32
    configs, a few quantization steps for INT12 — while still exercising
    masks that evolve block to block.
    """
    if num_layers < 2:
        raise ValueError("num_layers must be >= 2 (the first block is never masked)")
    config = config or DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
    rng = as_rng(rng)
    shapes = workload.spatial_shapes
    model = workload.model
    n_in = workload.num_tokens
    encoder = DeformableEncoder(
        num_layers=num_layers,
        d_model=model.d_model,
        num_heads=model.num_heads,
        num_levels=model.num_levels,
        num_points=model.num_points,
        ffn_dim=model.ffn_dim,
        activation=model.activation,
        rng=rng,
    )
    features = rng.standard_normal((n_in, model.d_model)).astype(FLOAT_DTYPE)
    pos = sine_positional_encoding(shapes, model.d_model)
    reference_points = make_reference_points(shapes)
    dense = DEFAEncoderRunner(encoder, config, ExecutionOptions(sparse_mode="dense"))
    sparse = DEFAEncoderRunner(encoder, config, ExecutionOptions(sparse_mode="sparse"))

    def step(runner: DEFAEncoderRunner, index: int, x: np.ndarray, fmap_mask):
        layer = runner.encoder.layers[index]
        attn_out = runner.defa_layers[index].forward_detailed(
            x + pos, reference_points, x, shapes, fmap_mask=fmap_mask
        )
        keep_mask, compact = runner.ffn_stage_plan(fmap_mask, x.shape[0])
        out = layer.forward_ffn_stage(
            x, attn_out.output, keep_mask=keep_mask, compact=compact
        )
        return out, attn_out.fmap_mask_next

    x = features
    fmap_mask = None
    max_drift = 0.0
    for index in range(num_layers):
        out_dense, mask_next = step(dense, index, x, fmap_mask)
        out_sparse, sparse_mask_next = step(sparse, index, x, fmap_mask)
        max_drift = max(max_drift, float(np.max(np.abs(out_dense - out_sparse))))
        # Same inputs => the generated masks must agree exactly (integer
        # frequency counting); if they ever did not, that would be an
        # execution-path bug, which the probe should surface loudly.
        if not np.array_equal(mask_next, sparse_mask_next):
            return float("inf")
        x, fmap_mask = out_dense, mask_next
    return max_drift


def measure_streaming_blockwise_equivalence(
    workload: WorkloadSpec,
    config: DEFAConfig | None = None,
    num_layers: int = 3,
    num_frames: int = 4,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Max dense/sparse drift replaying a streaming session's warm masks.

    Warm frames are trajectory-sensitive squared: their incoming masks mix a
    cached keyframe FWP trajectory with a temporally-dirty set, so warm-vs-
    cold end-to-end diffs are algorithm diagnostics (PR 4 rules), not
    execution gates.  This probe applies the same lockstep discipline as
    :func:`measure_encoder_blockwise_equivalence` to the *recorded* streaming
    masks: a session runs a synthetic video, and for every non-reused frame
    the per-block ``incoming_masks`` it executed with are replayed through a
    dense and a sparse runner in lockstep (both paths get the dense block
    input and the recorded mask; dense is carried forward).  Identical inputs
    and pinned masks leave only execution-path drift, gated at the usual
    tolerances (fp32 1e-5, INT12 a few quantization steps).  Mask
    disagreement on the *generated* next-block masks returns ``inf``.
    """
    from repro.engine.streaming import StreamingConfig, StreamingEncoderSession
    from repro.workloads.video import SyntheticVideoStream, VideoStreamSpec

    if num_layers < 2:
        raise ValueError("num_layers must be >= 2 (the first block is never masked)")
    config = config or DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
    rng = as_rng(rng)
    shapes = workload.spatial_shapes
    model = workload.model
    encoder = DeformableEncoder(
        num_layers=num_layers,
        d_model=model.d_model,
        num_heads=model.num_heads,
        num_levels=model.num_levels,
        num_points=model.num_points,
        ffn_dim=model.ffn_dim,
        activation=model.activation,
        rng=rng,
    )
    session = StreamingEncoderSession(
        encoder,
        config,
        shapes,
        StreamingConfig(keyframe_interval=max(num_frames, 2)),
    )
    stream = SyntheticVideoStream(
        shapes,
        model.d_model,
        VideoStreamSpec(num_frames=num_frames, seed=int(rng.integers(1 << 31))),
    )
    pos = sine_positional_encoding(shapes, model.d_model)
    reference_points = make_reference_points(shapes)
    # Sessions force query pruning on; mirror that for the replay runners so
    # all three agree on the frozen-row convention.
    config = session.config
    dense = DEFAEncoderRunner(encoder, config, ExecutionOptions(sparse_mode="dense"))
    sparse = DEFAEncoderRunner(encoder, config, ExecutionOptions(sparse_mode="sparse"))

    def step(runner: DEFAEncoderRunner, index: int, x: np.ndarray, fmap_mask):
        layer = runner.encoder.layers[index]
        attn_out = runner.defa_layers[index].forward_detailed(
            x + pos, reference_points, x, shapes, fmap_mask=fmap_mask
        )
        keep_mask, compact = runner.ffn_stage_plan(fmap_mask, x.shape[0])
        out = layer.forward_ffn_stage(
            x, attn_out.output, keep_mask=keep_mask, compact=compact
        )
        return out, attn_out.fmap_mask_next

    max_drift = 0.0
    for frame_index in range(num_frames):
        features = stream.frame(frame_index)
        result = session.process(features, frame_index)
        if result.kind == "reused":
            continue  # no forward ran; nothing to replay
        x = features
        for index in range(num_layers):
            fmap_mask = result.incoming_masks[index]
            out_dense, mask_next = step(dense, index, x, fmap_mask)
            out_sparse, sparse_mask_next = step(sparse, index, x, fmap_mask)
            max_drift = max(
                max_drift, float(np.max(np.abs(out_dense - out_sparse)))
            )
            if not np.array_equal(mask_next, sparse_mask_next):
                return float("inf")
            x = out_dense
    return max_drift


# --------------------------------------------------------------------------
# Kernel-fusion profiling (PR 5)


@dataclass(frozen=True)
class KernelFusionReport:
    """Fused-vs-reference backend comparison of one sparse DEFA block.

    Both runs execute the identical sparse path (same inputs, same masks,
    same ``sparse_mode="sparse"``) and differ only in the kernel backend, so
    ``max_abs_diff`` measures the backends' numerical agreement — which is
    exactly 0 by construction (the fused backend performs the same float
    operations in the same order) — and the section ratios isolate where the
    fusion wins.
    """

    workload: str
    num_tokens: int
    reference_s: float
    """Best-of-repeats wall clock of the reference-backend block forward."""

    fused_s: float
    """Best-of-repeats wall clock of the fused-backend block forward
    (steady-state: the execution-plan arena is warmed before timing)."""

    max_abs_diff: float
    """Max elementwise deviation between the two block outputs (0 expected)."""

    reference_kernels: dict[str, float]
    """Per-section seconds of one reference-backend forward."""

    fused_kernels: dict[str, float]
    """Per-section seconds of one fused-backend forward."""

    compiled_s: float | None = None
    """Best-of-repeats wall clock of the compiled-backend block forward
    (steady-state, own warmed plan; ``None`` when the compiled kernel library
    is not built on this host)."""

    compiled_max_abs_diff: float | None = None
    """Max elementwise deviation of the compiled-backend output from the
    fused-backend output; gated at the compiled backend's tolerance tier
    (:data:`repro.kernels.compiled_backend.COMPILED_EQUIVALENCE_TOL`, 0.0)."""

    compiled_kernels: dict[str, float] | None = None
    """Per-section seconds of one compiled-backend forward."""

    @property
    def speedup(self) -> float:
        """Reference-over-fused wall-clock ratio (> 1 means fusion wins)."""
        return self.reference_s / self.fused_s if self.fused_s > 0 else float("inf")

    @property
    def compiled_speedup(self) -> float | None:
        """Fused-over-compiled wall-clock ratio (> 1 means the C kernels
        win); ``None`` when the compiled backend was not measured."""
        if self.compiled_s is None:
            return None
        return self.fused_s / self.compiled_s if self.compiled_s > 0 else float("inf")

    def section_speedups(self) -> dict[str, float]:
        """Reference/fused ratio per kernel section (where both measured)."""
        return {
            name: self.reference_kernels[name] / self.fused_kernels[name]
            for name in sorted(self.reference_kernels)
            if self.fused_kernels.get(name, 0.0) > 0.0
        }

    def as_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "num_tokens": self.num_tokens,
            "reference_ms": 1e3 * self.reference_s,
            "fused_ms": 1e3 * self.fused_s,
            "speedup": self.speedup,
            "max_abs_diff": self.max_abs_diff,
            "section_speedups": self.section_speedups(),
            "reference_kernels_ms": {k: 1e3 * v for k, v in self.reference_kernels.items()},
            "fused_kernels_ms": {k: 1e3 * v for k, v in self.fused_kernels.items()},
            **(
                {
                    "compiled_ms": 1e3 * self.compiled_s,
                    "compiled_speedup": self.compiled_speedup,
                    "compiled_max_abs_diff": self.compiled_max_abs_diff,
                    "compiled_kernels_ms": {
                        k: 1e3 * v for k, v in (self.compiled_kernels or {}).items()
                    },
                }
                if self.compiled_s is not None
                else {}
            ),
        }


def measure_kernel_fusion(
    workload: WorkloadSpec,
    config: DEFAConfig | None = None,
    repeats: int = 3,
    rng: np.random.Generator | int | None = None,
) -> KernelFusionReport:
    """Time one sparse DEFA block on the reference vs the fused backend.

    The block setup mirrors :func:`measure_sparse_speedup` (a first unmasked
    block produces a realistic FWP mask; the timed block receives it), but
    both timed runs use ``sparse_mode="sparse"`` and only the kernel backend
    differs.  An :class:`~repro.kernels.ExecutionPlan` is threaded through
    the fused run via a :class:`DEFAEncoderRunner`-style plan so the fused
    numbers reflect steady-state (warm-arena) execution.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    config = config or DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
    rng = as_rng(rng)
    shapes = workload.spatial_shapes
    model = workload.model
    n_in = workload.num_tokens
    attn = MSDeformAttn(
        d_model=model.d_model,
        num_heads=model.num_heads,
        num_levels=model.num_levels,
        num_points=model.num_points,
        rng=rng,
    )
    features = rng.standard_normal((n_in, model.d_model)).astype(FLOAT_DTYPE)
    pos = sine_positional_encoding(shapes, model.d_model)
    reference_points = make_reference_points(shapes)
    query = features + pos

    defa = DEFAAttention(attn, config, ExecutionOptions(sparse_mode="sparse"))
    first = defa.forward_detailed(
        query, reference_points, features, shapes, options=ExecutionOptions(kernel_backend="reference")
    )
    fmap_mask = first.fmap_mask_next.copy()
    del first

    plan = ExecutionPlan()
    compiled_plan = ExecutionPlan()  # separate arena: steady state per backend

    def run_reference():
        return defa.forward_detailed(
            query, reference_points, features, shapes,
            fmap_mask=fmap_mask, options=ExecutionOptions(kernel_backend="reference"),
        )

    def run_fused():
        return defa.forward_detailed(
            query, reference_points, features, shapes,
            fmap_mask=fmap_mask, options=ExecutionOptions(kernel_backend="fused"), plan=plan,
        )

    def run_compiled():
        return defa.forward_detailed(
            query, reference_points, features, shapes,
            fmap_mask=fmap_mask, options=ExecutionOptions(kernel_backend="compiled"), plan=compiled_plan,
        )

    ref_out = run_reference()  # warm-up + reference output
    fused_out = run_fused()  # warms the plan arena
    max_abs_diff = float(np.max(np.abs(ref_out.output - fused_out.output)))
    compiled_max_abs_diff = None
    if COMPILED_AVAILABLE:
        compiled_out = run_compiled()  # warms the compiled arena
        compiled_max_abs_diff = float(
            np.max(np.abs(fused_out.output - compiled_out.output))
        )
        del compiled_out
    del ref_out, fused_out

    ref_times, fused_times, compiled_times = [], [], []
    for _ in range(repeats):  # interleaved, as in measure_sparse_speedup
        ref_times.append(_timed(run_reference))
        fused_times.append(_timed(run_fused))
        if COMPILED_AVAILABLE:
            compiled_times.append(_timed(run_compiled))

    with collect_kernel_timings() as reference_kernels:
        run_reference()
    with collect_kernel_timings() as fused_kernels:
        run_fused()
    compiled_kernels = None
    if COMPILED_AVAILABLE:
        with collect_kernel_timings() as compiled_timings:
            run_compiled()
        compiled_kernels = dict(compiled_timings.seconds)

    return KernelFusionReport(
        workload=workload.name,
        num_tokens=n_in,
        reference_s=min(ref_times),
        fused_s=min(fused_times),
        compiled_s=min(compiled_times) if compiled_times else None,
        compiled_max_abs_diff=compiled_max_abs_diff,
        compiled_kernels=compiled_kernels,
        max_abs_diff=max_abs_diff,
        reference_kernels=dict(reference_kernels.seconds),
        fused_kernels=dict(fused_kernels.seconds),
    )


# --------------------------------------------------------------------------
# Serving-engine profiling


@dataclass(frozen=True)
class ServingLatencyReport:
    """Latency/throughput profile of one serving-engine traffic replay.

    The correctness half is machine-independent: ``max_abs_diff`` compares
    every served output against the serial per-image reference loop and must
    be exactly zero (scheduling decisions cannot change results — the batched
    kernels are bit-equal to the per-image path for any batch composition).
    The latency half is wall clock on a single core, so it is tracked as a
    trajectory (benchmarks) rather than asserted: on this container workers
    add IPC + serialization overhead over the in-process loop, and
    multi-worker speedup is informational only.
    """

    num_requests: int
    num_workers: int
    num_batches: int
    mean_batch_size: float
    p50_s: float
    p99_s: float
    """Submit-to-completion latency percentiles over all requests."""

    max_latency_s: float
    elapsed_s: float
    """Wall clock of the whole replay (first submit to last completion)."""

    serial_s: float
    """Best-of-repeats wall clock of the serial per-image reference loop."""

    max_abs_diff: float
    """Max |served - serial reference| over every request (gated at 0.0)."""

    worker_deaths: int
    worker_restarts: int
    primary_batches: int
    degraded_batches: int
    mode: str
    """Engine health mode at the end of the replay."""

    num_shed: int = 0
    """Requests rejected at submit by admission control."""

    num_expired: int = 0
    """Requests that hit their queueing deadline before dispatch."""

    num_retried: int = 0
    """Requeue events of requests in flight during worker faults."""

    num_quarantined: int = 0
    """Requests failed with ``PoisonRequestError`` (retry budget spent)."""

    watchdog_kills: int = 0
    """Workers SIGKILLed by the hung-batch watchdog / dispatch-send bound."""

    num_failed: int = 0
    """Events that did not serve (shed + expired + quarantined); the
    ``max_abs_diff`` gate covers every event that *did* serve."""

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of replay wall clock."""
        return self.num_requests / self.elapsed_s if self.elapsed_s > 0 else float("inf")

    @property
    def overhead(self) -> float:
        """Replay-over-serial wall-clock ratio (scheduling + IPC cost; 1.0
        means the engine adds nothing over the bare serial loop)."""
        return self.elapsed_s / self.serial_s if self.serial_s > 0 else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "num_requests": self.num_requests,
            "num_workers": self.num_workers,
            "num_batches": self.num_batches,
            "mean_batch_size": self.mean_batch_size,
            "p50_ms": 1e3 * self.p50_s,
            "p99_ms": 1e3 * self.p99_s,
            "max_latency_ms": 1e3 * self.max_latency_s,
            "elapsed_ms": 1e3 * self.elapsed_s,
            "serial_ms": 1e3 * self.serial_s,
            "throughput_rps": self.throughput_rps,
            "overhead": self.overhead,
            "max_abs_diff": self.max_abs_diff,
            "worker_deaths": self.worker_deaths,
            "worker_restarts": self.worker_restarts,
            "primary_batches": self.primary_batches,
            "degraded_batches": self.degraded_batches,
            "mode": self.mode,
            "num_shed": self.num_shed,
            "num_expired": self.num_expired,
            "num_retried": self.num_retried,
            "num_quarantined": self.num_quarantined,
            "watchdog_kills": self.watchdog_kills,
            "num_failed": self.num_failed,
        }


class _FaultedBankFactory:
    """Picklable wrapper attaching a fault plan to a bank factory's product
    (so a plan can be injected without rebuilding the caller's spec)."""

    def __init__(self, base_factory, fault_plan) -> None:
        self.base_factory = base_factory
        self.fault_plan = fault_plan

    def __call__(self):
        from repro.engine.serving import ModelBank

        bank = ModelBank.coerce(self.base_factory())
        bank.fault_plan = self.fault_plan
        return bank


def measure_serving_latency(
    model_bank_factory,
    events,
    config=None,
    speed: float = 0.0,
    kill_worker_at: int | None = None,
    repeats: int = 2,
    fault_plan=None,
    timeout: float = 120.0,
) -> ServingLatencyReport:
    """Replay a traffic stream through a :class:`ServingEngine` and profile it.

    Builds the model bank once locally for the serial per-image reference
    (timed best-of-*repeats*), then starts an engine under *config*, replays
    *events* at *speed* (``0`` = open loop, as fast as possible) and compares
    every served output bit-for-bit against the reference.
    ``kill_worker_at=k`` SIGKILLs worker 0 right after the *k*-th submit, so
    the profile covers the death -> degraded -> restart path.

    ``model_bank_factory`` may also be a
    :class:`~repro.engine.serving.ModelBankSpec` directly.  ``fault_plan``
    threads a :class:`~repro.engine.faults.FaultPlan` into the engine's
    workers (the serial reference never executes faults — they live in
    ``_worker_main`` only), and switches the replay to fault-tolerant
    gathering: shed/expired/quarantined events are counted (``num_shed`` /
    ``num_expired`` / ``num_quarantined`` / ``num_failed``) instead of
    raising, and the bit-equality gate covers every event that served.
    """
    from repro.engine.serving import (
        ModelBank,
        ModelBankSpec,
        ServingConfig,
        ServingEngine,
    )
    from repro.engine.traffic import replay_traffic, serial_reference_outputs

    if repeats <= 0:
        raise ValueError("repeats must be positive")
    config = config or ServingConfig()
    if isinstance(model_bank_factory, ModelBankSpec):
        if fault_plan is not None:
            from dataclasses import replace

            model_bank_factory = replace(model_bank_factory, fault_plan=fault_plan)
        model_bank_factory = model_bank_factory.build
    elif fault_plan is not None:
        model_bank_factory = _FaultedBankFactory(model_bank_factory, fault_plan)
    bank = ModelBank.coerce(model_bank_factory())
    reference = serial_reference_outputs(bank, events)  # warm-up + reference
    serial_s = min(
        _timed(lambda: serial_reference_outputs(bank, events)) for _ in range(repeats)
    )

    engine = ServingEngine(model_bank_factory, config)
    engine.start()
    try:
        on_submit = None
        if kill_worker_at is not None:
            fired: list[int] = []

            def on_submit(i: int) -> None:
                if i == kill_worker_at and not fired:
                    fired.append(i)
                    engine.kill_worker(0)

        replay = replay_traffic(
            engine,
            events,
            speed=speed,
            on_submit=on_submit,
            timeout=timeout,
            tolerate_faults=fault_plan is not None,
        )
        stats = engine.stats
        mode = engine.mode
    finally:
        engine.shutdown()

    max_abs_diff = 0.0
    for served, expected in zip(replay.outputs, reference):
        if served is None:
            continue
        max_abs_diff = max(max_abs_diff, float(np.max(np.abs(served - expected))))
    return ServingLatencyReport(
        num_requests=len(events),
        num_workers=config.num_workers,
        num_batches=stats.num_batches,
        mean_batch_size=stats.mean_batch_size,
        p50_s=stats.latency_quantile(50),
        p99_s=stats.latency_quantile(99),
        max_latency_s=stats.latency_quantile(100),
        elapsed_s=replay.elapsed_s,
        serial_s=serial_s,
        max_abs_diff=max_abs_diff,
        worker_deaths=stats.worker_deaths,
        worker_restarts=stats.worker_restarts,
        primary_batches=stats.primary_batches,
        degraded_batches=stats.degraded_batches,
        mode=mode,
        num_shed=stats.num_shed,
        num_expired=stats.num_expired,
        num_retried=stats.num_retried,
        num_quarantined=stats.num_quarantined,
        watchdog_kills=stats.watchdog_kills,
        num_failed=replay.num_failed,
    )
