"""GPU latency-breakdown profiler (the Fig. 1b analysis).

The paper profiles the MSDeformAttn latency on an RTX 3090Ti for Deformable
DETR, DN-DETR and DINO and finds that MSGS + aggregation account for over 60 %
of it while contributing only ~3 % of the FLOPs.  This module reproduces both
numbers from the GPU cost model and the analytic FLOP breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GPUCostModel, GPUSpec, RTX_3090TI
from repro.workloads.specs import WorkloadSpec


@dataclass(frozen=True)
class LatencyBreakdown:
    """MSGS-vs-others split of one model's MSDeformAttn latency."""

    model_name: str
    gpu_name: str
    msgs_aggregation_fraction: float
    """Fraction of MSDeformAttn latency spent in MSGS + aggregation."""

    others_fraction: float
    """Fraction spent in the projections, softmax and overheads."""

    msgs_flops_fraction: float
    """Fraction of the layer FLOPs contributed by MSGS + aggregation."""

    layer_latency_s: float
    """Absolute modelled latency of one MSDeformAttn layer."""

    def as_row(self) -> list[float | str]:
        """Row of the Fig. 1(b) table."""
        return [
            self.model_name,
            100.0 * self.msgs_aggregation_fraction,
            100.0 * self.others_fraction,
            100.0 * self.msgs_flops_fraction,
        ]


def profile_gpu_latency_breakdown(
    workload: WorkloadSpec, gpu: GPUSpec = RTX_3090TI
) -> LatencyBreakdown:
    """Compute the Fig. 1(b) latency breakdown for one workload."""
    model = GPUCostModel(gpu)
    latency = model.msdeform_layer_latency(workload)
    flops = workload.layer_flops_breakdown()
    msgs_flops = flops["msgs"] + flops["aggregation"]
    total_flops = sum(flops.values())
    return LatencyBreakdown(
        model_name=workload.model.display_name,
        gpu_name=gpu.name,
        msgs_aggregation_fraction=latency.msgs_fraction,
        others_fraction=1.0 - latency.msgs_fraction,
        msgs_flops_fraction=msgs_flops / total_flops,
        layer_latency_s=latency.total_s,
    )
