"""Shared utilities: RNG handling, shape helpers, tables and serialization."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.shapes import (
    LevelShape,
    flatten_index,
    level_start_indices,
    make_level_shapes,
    total_pixels,
    unflatten_index,
)
from repro.utils.tables import format_table
from repro.utils.serialization import load_json, save_json

__all__ = [
    "as_rng",
    "spawn_rngs",
    "LevelShape",
    "flatten_index",
    "level_start_indices",
    "make_level_shapes",
    "total_pixels",
    "unflatten_index",
    "format_table",
    "load_json",
    "save_json",
]
