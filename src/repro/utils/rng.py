"""Random-number-generator helpers.

Everything in the reproduction is deterministic given a seed.  Modules accept
either an integer seed, ``None`` (a fixed default seed, so results stay
reproducible) or an already constructed :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20240403


def as_rng(seed_or_rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed_or_rng*.

    Parameters
    ----------
    seed_or_rng:
        ``None`` for the package default seed, an ``int`` seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    return np.random.default_rng(int(seed_or_rng))


def spawn_rngs(seed_or_rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split one generator into *n* independent child generators.

    Used when a workload needs independent streams (e.g. one per encoder
    layer) that do not interfere with each other regardless of how many draws
    each consumer makes.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = as_rng(seed_or_rng)
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
