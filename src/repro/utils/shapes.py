"""Helpers for multi-scale (pyramid) feature-map shapes.

MSDeformAttn flattens a pyramid of ``N_l`` feature maps of shapes
``(H_l, W_l)`` into a single token axis of length ``N_in = sum(H_l * W_l)``.
These helpers convert between level/row/col coordinates and flattened indices,
and build the standard stride-8/16/32/64 pyramids used by Deformable DETR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LevelShape:
    """Spatial shape of one pyramid level."""

    height: int
    width: int

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise ValueError(f"level shape must be positive, got {self.height}x{self.width}")

    @property
    def num_pixels(self) -> int:
        """Number of pixels (flattened tokens) in this level."""
        return self.height * self.width

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(height, width)``."""
        return (self.height, self.width)


def make_level_shapes(image_height: int, image_width: int, strides: tuple[int, ...]) -> list[LevelShape]:
    """Build pyramid level shapes from an image size and backbone strides.

    The shapes follow the usual ``ceil(image / stride)`` convention of FPN
    backbones, e.g. an 800x1066 image with strides (8, 16, 32, 64) yields
    levels of 100x134, 50x67, 25x34 and 13x17.
    """
    if image_height <= 0 or image_width <= 0:
        raise ValueError("image size must be positive")
    shapes = []
    for stride in strides:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        height = max(1, int(np.ceil(image_height / stride)))
        width = max(1, int(np.ceil(image_width / stride)))
        shapes.append(LevelShape(height, width))
    return shapes


def total_pixels(shapes: list[LevelShape]) -> int:
    """Total number of tokens over all pyramid levels (``N_in``)."""
    return int(sum(s.num_pixels for s in shapes))


def level_start_indices(shapes: list[LevelShape]) -> np.ndarray:
    """Start index of each level in the flattened token axis.

    Returns an ``int64`` array of length ``len(shapes)``; level ``l`` occupies
    flattened indices ``[start[l], start[l] + H_l * W_l)``.
    """
    sizes = np.array([s.num_pixels for s in shapes], dtype=np.int64)
    starts = np.zeros(len(shapes), dtype=np.int64)
    if len(shapes) > 1:
        starts[1:] = np.cumsum(sizes[:-1])
    return starts


def flatten_index(level: int, row: np.ndarray, col: np.ndarray, shapes: list[LevelShape]) -> np.ndarray:
    """Convert ``(level, row, col)`` coordinates to flattened token indices."""
    if not 0 <= level < len(shapes):
        raise ValueError(f"level {level} out of range for {len(shapes)} levels")
    shape = shapes[level]
    row = np.asarray(row)
    col = np.asarray(col)
    if np.any((row < 0) | (row >= shape.height)) or np.any((col < 0) | (col >= shape.width)):
        raise ValueError("row/col out of bounds for level shape")
    start = level_start_indices(shapes)[level]
    return start + row.astype(np.int64) * shape.width + col.astype(np.int64)


def unflatten_index(index: np.ndarray, shapes: list[LevelShape]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert flattened token indices back to ``(level, row, col)`` arrays."""
    index = np.asarray(index, dtype=np.int64)
    n_total = total_pixels(shapes)
    if np.any((index < 0) | (index >= n_total)):
        raise ValueError("flattened index out of range")
    starts = level_start_indices(shapes)
    sizes = np.array([s.num_pixels for s in shapes], dtype=np.int64)
    ends = starts + sizes
    level = np.searchsorted(ends, index, side="right")
    local = index - starts[level]
    widths = np.array([s.width for s in shapes], dtype=np.int64)
    row = local // widths[level]
    col = local % widths[level]
    return level, row, col
