"""Plain-text table formatting for experiment harness output.

The experiment runners print the same rows/series the paper reports; this
module renders them as aligned ASCII tables so the benchmark logs are easy to
compare against the paper figures.
"""

from __future__ import annotations

from typing import Any, Sequence


def _render_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table.

    Floats are formatted with *float_fmt*; everything else with ``str``.
    """
    header_cells = [str(h) for h in headers]
    body = [[_render_cell(v, float_fmt) for v in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError("row length does not match header length")
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)
