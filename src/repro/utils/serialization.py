"""Lightweight JSON serialization helpers for experiment results."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np


def _to_jsonable(obj: Any) -> Any:
    """Convert numpy scalars/arrays and dataclasses into JSON-serializable types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _to_jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    return obj


def save_json(path: str | Path, data: Any) -> Path:
    """Serialize *data* (dicts, dataclasses, numpy values) to *path* as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(_to_jsonable(data), fh, indent=2, sort_keys=True)
    return path


def load_json(path: str | Path) -> Any:
    """Load JSON previously written with :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
