"""Lightweight named-section wall-clock accounting for the hot kernels.

The DEFA pipeline and the grid-sampling kernels mark their phases with
:func:`kernel_section` ("value_proj", "neighbors", "gather", "aggregate", ...).
When nobody is collecting, a section is a single truthiness check — cheap
enough to leave enabled in production code.  Wrapping a region in
:func:`collect_kernel_timings` activates collection and yields a
:class:`KernelTimings` accumulator:

>>> with collect_kernel_timings() as timings:
...     runner.forward(...)
>>> timings.total("gather")

Collectors nest: every active collector records every section, so a profiler
can measure one block while an outer harness measures the whole run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(eq=False)
class KernelTimings:
    """Accumulated wall-clock seconds and call counts per kernel section.

    ``eq=False``: collectors are tracked on a stack and removed by identity;
    value equality would let one nested collector pop another with equal
    contents.
    """

    seconds: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    def record(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds spent in *name* (0.0 if the section never ran)."""
        return self.seconds.get(name, 0.0)

    def total_seconds(self) -> float:
        """Sum over all recorded sections.

        Sections may nest (e.g. "gather" runs inside "msgs"), so this is an
        upper bound on distinct wall-clock time, not a partition of it.
        """
        return float(sum(self.seconds.values()))

    def fractions(self) -> dict[str, float]:
        """Per-section share of :meth:`total_seconds` (empty dict if nothing ran)."""
        total = self.total_seconds()
        if total <= 0.0:
            return {}
        return {name: secs / total for name, secs in self.seconds.items()}

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """JSON-friendly ``{section: {seconds, calls}}`` view."""
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls.get(name, 0)}
            for name in self.seconds
        }


_COLLECTORS: list[KernelTimings] = []
"""Stack of active collectors; sections no-op when it is empty."""


@contextmanager
def collect_kernel_timings() -> Iterator[KernelTimings]:
    """Activate kernel-section collection for the enclosed region."""
    timings = KernelTimings()
    _COLLECTORS.append(timings)
    try:
        yield timings
    finally:
        _COLLECTORS.remove(timings)


@contextmanager
def kernel_section(name: str) -> Iterator[None]:
    """Attribute the enclosed wall-clock time to section *name*.

    A no-op (one list truthiness check) when no collector is active.
    """
    if not _COLLECTORS:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        for collector in _COLLECTORS:
            collector.record(name, elapsed)
