"""Quantized module wrappers.

:class:`QuantizedLinear` fake-quantizes both the weights and the input
activations of a :class:`repro.nn.modules.Linear` layer, which is how the
INT12 (and the rejected INT8) configuration of the paper is simulated.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Linear, Module
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.quant.quantizer import QuantSpec, fake_quantize


class QuantizedLinear(Module):
    """A linear layer whose weights and activations are fake-quantized.

    Parameters
    ----------
    linear:
        The full-precision layer being wrapped (not copied; its parameters are
        reused).
    weight_spec, activation_spec:
        Quantizer specs for weights and input activations.
    activation_max_abs:
        Optional calibrated activation range; if ``None``, dynamic (per-call)
        max-abs quantization is used.
    """

    def __init__(
        self,
        linear: Linear,
        weight_spec: QuantSpec,
        activation_spec: QuantSpec | None = None,
        activation_max_abs: float | None = None,
    ) -> None:
        self.inner = linear
        self.weight_spec = weight_spec
        self.activation_spec = activation_spec or weight_spec
        self.activation_max_abs = activation_max_abs
        self.quantized_weight = fake_quantize(linear.weight, weight_spec).astype(FLOAT_DTYPE)

    @property
    def in_features(self) -> int:
        return self.inner.in_features

    @property
    def out_features(self) -> int:
        return self.inner.out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        x_q = fake_quantize(x, self.activation_spec, max_abs=self.activation_max_abs).astype(
            FLOAT_DTYPE
        )
        out = x_q @ self.quantized_weight
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    def activation_scale_max_abs(self, x: np.ndarray) -> float | np.ndarray:
        """The max-abs that :meth:`forward` would quantize *x* with.

        Either the calibrated ``activation_max_abs`` or the dynamic maximum
        over the whole array (per channel when the activation spec asks for
        it).  The sparse execution path uses this to quantize a compacted
        *subset* of ``x`` with exactly the scale the dense path derives from
        the full array, keeping the two paths numerically identical.
        """
        if self.activation_max_abs is not None:
            return self.activation_max_abs
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if self.activation_spec.per_channel and x.ndim >= 2:
            return np.max(np.abs(x.reshape(-1, x.shape[-1])), axis=0)
        return float(np.max(np.abs(x))) if x.size else 0.0

    def forward_rows(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Project only ``x[rows]``, quantized with the *full-array* scale.

        The compacted value projection of the sparse execution path: the
        dynamic activation scale is derived from all of ``x`` (one cheap
        max-abs pass), so the returned ``(N_kept, D_out)`` rows are exactly
        the corresponding rows of ``forward(x)`` — but the matmul only runs
        on the surviving rows.
        """
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if x.ndim != 2:
            raise ValueError("forward_rows expects a (N, D) input")
        max_abs = self.activation_scale_max_abs(x)
        x_q = fake_quantize(x[rows], self.activation_spec, max_abs=max_abs).astype(FLOAT_DTYPE)
        out = x_q @ self.quantized_weight
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    def forward_batched(self, x: np.ndarray) -> np.ndarray:
        """Forward a batch ``(B, ..., D)`` with *per-image* activation scales.

        Dynamic activation quantization computes the max-abs over the array
        being quantized; feeding a whole batch through :meth:`forward` would
        therefore couple the images through one shared scale and break
        equivalence with per-image execution.  This method computes one
        dynamic scale per batch element (identical to quantizing each image
        separately) while still performing a single batched matmul.
        """
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if x.ndim < 2:
            raise ValueError("batched input must have at least 2 dimensions")
        max_abs = self.activation_max_abs
        if max_abs is None:
            if self.activation_spec.per_channel and x.ndim >= 3:
                reduce_axes = tuple(range(1, x.ndim - 1))  # per image, per channel
            else:
                reduce_axes = tuple(range(1, x.ndim))  # per image
            max_abs = np.max(np.abs(x), axis=reduce_axes, keepdims=True)
        x_q = fake_quantize(x, self.activation_spec, max_abs=max_abs).astype(FLOAT_DTYPE)
        out = x_q @ self.quantized_weight
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    def forward_rows_batched(self, x: np.ndarray, flat_rows: np.ndarray) -> np.ndarray:
        """Project selected rows of a ``(B, N, D)`` batch with per-image scales.

        ``flat_rows`` indexes the flattened ``(B * N)`` row axis (rows of any
        image may be selected).  Each selected row is quantized with the
        dynamic scale of *its own image* — exactly the scales
        :meth:`forward_batched` derives — so the result matches the
        corresponding rows of ``forward_batched(x)`` while the matmul runs on
        the survivors only.
        """
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if x.ndim != 3:
            raise ValueError("forward_rows_batched expects a (B, N, D) input")
        batch, n_rows, _ = x.shape
        rows2d = x.reshape(batch * n_rows, x.shape[-1])[flat_rows]
        max_abs = self.activation_max_abs
        if max_abs is None:
            image = np.asarray(flat_rows, dtype=np.int64) // n_rows
            if self.activation_spec.per_channel:
                per_image = np.max(np.abs(x), axis=1)  # (B, D)
                max_abs = per_image[image]
            else:
                per_image = np.max(np.abs(x), axis=(1, 2))  # (B,)
                max_abs = per_image[image][:, None]
        x_q = fake_quantize(rows2d, self.activation_spec, max_abs=max_abs).astype(FLOAT_DTYPE)
        out = x_q @ self.quantized_weight
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    def flops(self, num_rows: int) -> int:
        """Same MAC count as the wrapped layer (quantization changes energy, not FLOPs)."""
        return self.inner.flops(num_rows)


def quantize_linear(linear: Linear, num_bits: int, per_channel_weights: bool = True) -> QuantizedLinear:
    """Convenience constructor for :class:`QuantizedLinear` with common defaults."""
    weight_spec = QuantSpec(num_bits=num_bits, per_channel=per_channel_weights)
    activation_spec = QuantSpec(num_bits=num_bits, per_channel=False)
    return QuantizedLinear(linear, weight_spec, activation_spec)
