"""Symmetric uniform quantization primitives.

The paper quantizes the MSDeformAttn modules of the encoder layers to INT12
during inference and reports that INT8 is unusable (an average 9.7 AP drop).
This module provides the fake-quantization (quantize + dequantize) operators
used to reproduce that comparison in pure NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.tensor_utils import FLOAT_DTYPE


@dataclass(frozen=True)
class QuantSpec:
    """Description of a symmetric uniform quantizer.

    Parameters
    ----------
    num_bits:
        Bit width (e.g. 8 or 12).
    per_channel:
        If ``True``, scales are computed independently per output channel
        (last axis of the array being quantized).
    """

    num_bits: int = 12
    per_channel: bool = False

    def __post_init__(self) -> None:
        if not 2 <= self.num_bits <= 32:
            raise ValueError(f"num_bits must be in [2, 32], got {self.num_bits}")

    @property
    def qmax(self) -> int:
        """Largest representable positive integer level."""
        return 2 ** (self.num_bits - 1) - 1

    @property
    def qmin(self) -> int:
        """Most negative representable integer level."""
        return -(2 ** (self.num_bits - 1))


def compute_scale(x: np.ndarray, spec: QuantSpec, max_abs: float | np.ndarray | None = None) -> np.ndarray:
    """Quantization scale(s) for array *x* under *spec*.

    If *max_abs* is given it overrides the dynamic maximum (used with
    calibrators); otherwise the max absolute value of *x* is used.
    """
    x = np.asarray(x)
    if max_abs is None:
        if spec.per_channel and x.ndim >= 2:
            max_abs = np.max(np.abs(x.reshape(-1, x.shape[-1])), axis=0)
        else:
            max_abs = np.max(np.abs(x)) if x.size else 0.0
    max_abs = np.maximum(np.asarray(max_abs, dtype=np.float64), 1e-12)
    return (max_abs / spec.qmax).astype(np.float64)


def quantize(x: np.ndarray, scale: np.ndarray, spec: QuantSpec) -> np.ndarray:
    """Quantize *x* to integer levels (stored as ``int32``)."""
    x = np.asarray(x, dtype=np.float64)
    q = np.round(x / scale)
    return np.clip(q, spec.qmin, spec.qmax).astype(np.int32)


def dequantize(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Map integer levels back to real values."""
    return (np.asarray(q, dtype=np.float64) * scale).astype(FLOAT_DTYPE)


def fake_quantize(
    x: np.ndarray,
    spec: QuantSpec,
    max_abs: float | np.ndarray | None = None,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Quantize-then-dequantize *x*, simulating fixed-point inference error.

    With ``out`` (a float32 array of ``x.shape``) the whole
    divide → round → clip → rescale chain runs in-place through a float64
    ``scratch`` buffer (allocated fresh when not provided) and the result is
    written into ``out`` — fewer passes and zero temporaries, with results
    **bit-identical** to the allocating path: the rounded/clipped levels are
    integral float64 values inside the int32 range, so skipping the explicit
    ``int32`` round-trip of :func:`quantize`/:func:`dequantize` changes no
    bits, and the final float64→float32 store performs the same C cast as
    ``astype``.
    """
    scale = compute_scale(x, spec, max_abs=max_abs)
    if out is None:
        return dequantize(quantize(x, scale, spec), scale)
    if scratch is None:
        scratch = np.empty(x.shape, dtype=np.float64)
    np.divide(x, scale, out=scratch)
    np.round(scratch, out=scratch)
    np.clip(scratch, spec.qmin, spec.qmax, out=scratch)
    np.multiply(scratch, scale, out=out, casting="unsafe")
    return out


def quantization_error(x: np.ndarray, spec: QuantSpec) -> float:
    """Root-mean-square error introduced by fake-quantizing *x*."""
    x = np.asarray(x, dtype=np.float64)
    err = x - fake_quantize(x, spec).astype(np.float64)
    return float(np.sqrt(np.mean(err**2))) if x.size else 0.0
