"""Activation-range calibration for static quantization.

Two calibrators are provided: plain min-max (max absolute value seen) and a
percentile calibrator that clips outliers, which is the usual way to keep
INT8/INT12 scales tight on activations with long tails.
"""

from __future__ import annotations

import numpy as np


class MinMaxCalibrator:
    """Track the maximum absolute value observed across batches."""

    def __init__(self) -> None:
        self._max_abs = 0.0
        self._num_batches = 0

    def update(self, x: np.ndarray) -> None:
        """Observe one activation batch."""
        x = np.asarray(x)
        if x.size:
            self._max_abs = max(self._max_abs, float(np.max(np.abs(x))))
        self._num_batches += 1

    @property
    def num_batches(self) -> int:
        """Number of batches observed so far."""
        return self._num_batches

    def max_abs(self) -> float:
        """Calibrated maximum absolute value."""
        if self._num_batches == 0:
            raise RuntimeError("calibrator has not observed any data")
        return self._max_abs


class PercentileCalibrator:
    """Track a high percentile of absolute values to clip activation outliers."""

    def __init__(self, percentile: float = 99.9, max_samples: int = 1_000_000) -> None:
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        self.percentile = percentile
        self.max_samples = max_samples
        self._samples: list[np.ndarray] = []
        self._num_batches = 0

    def update(self, x: np.ndarray) -> None:
        """Observe one activation batch (subsampled if very large)."""
        x = np.abs(np.asarray(x, dtype=np.float64)).ravel()
        if x.size > self.max_samples:
            stride = int(np.ceil(x.size / self.max_samples))
            x = x[::stride]
        if x.size:
            self._samples.append(x)
        self._num_batches += 1

    @property
    def num_batches(self) -> int:
        """Number of batches observed so far."""
        return self._num_batches

    def max_abs(self) -> float:
        """Calibrated clipping value (the tracked percentile)."""
        if not self._samples:
            raise RuntimeError("calibrator has not observed any data")
        return float(np.percentile(np.concatenate(self._samples), self.percentile))
