"""Fake quantization used by the DEFA algorithm evaluation (INT12 / INT8)."""

from repro.quant.quantizer import QuantSpec, dequantize, fake_quantize, quantize
from repro.quant.calibration import MinMaxCalibrator, PercentileCalibrator
from repro.quant.qmodules import QuantizedLinear, quantize_linear

__all__ = [
    "QuantSpec",
    "quantize",
    "dequantize",
    "fake_quantize",
    "MinMaxCalibrator",
    "PercentileCalibrator",
    "QuantizedLinear",
    "quantize_linear",
]
