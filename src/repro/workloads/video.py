"""Synthetic video streams: deterministic moving scenes over the pyramid.

The paper prunes per image; a *video* workload is what makes pruning
incremental (PR 8).  :class:`SyntheticVideoStream` renders a moving-object
scene directly in flattened multi-scale feature space — the same ``(N_in,
D)`` layout every encoder entry point consumes — so streaming sessions and
equivalence probes run on it without an image-to-feature frontend.

Determinism is the load-bearing property: every random draw (background
texture, per-object feature signatures, start positions, velocities) happens
once at construction from ``spec.seed``, and :meth:`frame` is a pure
function of the frame index.  Two streams built from the same spec produce
bit-identical frames, a frame can be re-rendered out of order (the serving
engine's serial reference loop relies on this), and slow motion quantizes to
*bit-identical consecutive frames* whenever no object crosses a cell
boundary on any level — exactly the temporally-static case the
:class:`~repro.engine.streaming.StreamingEncoderSession` fast path exploits.

Objects move on straight lines and reflect off the scene walls (position
folding, still a pure function of ``i``), so arbitrarily long streams stay
inside the unit scene.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.shapes import LevelShape, total_pixels
from repro.workloads.specs import WorkloadSpec


@dataclass(frozen=True)
class VideoStreamSpec:
    """Configuration of one synthetic video stream.

    Parameters
    ----------
    num_frames:
        Stream length (only bounds iteration helpers; :meth:`SyntheticVideoStream.
        frame` accepts any non-negative index).
    num_objects:
        Moving objects composited over the static background.
    object_size:
        Object radius as a fraction of the scene's short side.
    motion:
        Per-frame displacement in normalized scene units.  At the paper
        scale's finest level (~100x133 cells) the default moves an object
        about one-third of a cell per frame — a low-motion stream where most
        frames touch only the cells near object boundaries.
    feature_scale:
        Amplitude of the object features relative to the unit-variance
        background.
    seed:
        Seed of every random draw (all taken at construction).
    """

    num_frames: int = 8
    num_objects: int = 3
    object_size: float = 0.12
    motion: float = 0.0025
    feature_scale: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")
        if self.num_objects < 0:
            raise ValueError("num_objects must be non-negative")
        if not 0 < self.object_size < 0.5:
            raise ValueError("object_size must be in (0, 0.5)")
        if self.motion < 0:
            raise ValueError("motion must be non-negative")


def _reflect(position: np.ndarray) -> np.ndarray:
    """Fold unbounded straight-line motion back into ``[0, 1]`` (reflective
    walls); pure and vectorized, so ``frame(i)`` needs no stepping."""
    period = np.mod(position, 2.0)
    return np.where(period > 1.0, 2.0 - period, period)


class SyntheticVideoStream:
    """Deterministic moving-object scene in flattened feature space.

    Parameters
    ----------
    spatial_shapes:
        Pyramid level shapes of every frame (fixed for the stream — that is
        what lets sessions keep one warm :class:`~repro.kernels.ExecutionPlan`
        arena per stream).
    d_model:
        Feature dimension ``D``.
    spec:
        Stream configuration (all randomness derives from ``spec.seed``).
    """

    def __init__(
        self,
        spatial_shapes: list[LevelShape] | tuple[LevelShape, ...],
        d_model: int,
        spec: VideoStreamSpec | None = None,
    ) -> None:
        self.spatial_shapes = tuple(spatial_shapes)
        self.d_model = int(d_model)
        self.spec = spec or VideoStreamSpec()
        self.num_tokens = total_pixels(list(self.spatial_shapes))

        rng = np.random.default_rng(self.spec.seed)
        # Static background: unit-variance texture per level, drawn once.
        self._background = rng.standard_normal((self.num_tokens, self.d_model)).astype(
            FLOAT_DTYPE
        )
        n_obj = self.spec.num_objects
        # Per-object feature signature, start center and velocity (normalized
        # scene units; direction uniform on the circle, speed = spec.motion).
        self._object_features = (
            self.spec.feature_scale * rng.standard_normal((n_obj, self.d_model))
        ).astype(FLOAT_DTYPE)
        self._centers0 = rng.uniform(0.15, 0.85, size=(n_obj, 2))
        angles = rng.uniform(0.0, 2.0 * np.pi, size=n_obj)
        self._velocity = self.spec.motion * np.stack(
            [np.cos(angles), np.sin(angles)], axis=1
        )
        # Per-level cell-center coordinates in normalized scene units,
        # flattened in the same row-major order as the feature layout.
        self._cell_centers = []
        for shape in self.spatial_shapes:
            ys = (np.arange(shape.height) + 0.5) / shape.height
            xs = (np.arange(shape.width) + 0.5) / shape.width
            grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
            self._cell_centers.append(
                np.stack([grid_y.reshape(-1), grid_x.reshape(-1)], axis=1)
            )

    @classmethod
    def from_workload(
        cls, workload: WorkloadSpec, spec: VideoStreamSpec | None = None
    ) -> "SyntheticVideoStream":
        """Stream over a benchmark workload's pyramid and feature width."""
        return cls(workload.spatial_shapes, workload.model.d_model, spec)

    # ------------------------------------------------------------- rendering

    def _coverage(self, frame_index: int) -> np.ndarray:
        """Boolean ``(num_objects, N_in)``: which cells each object covers.

        Coverage is computed against the *cell centers*, so an object whose
        continuous position moved less than a cell does not change any
        coverage bit — the quantization that yields bit-identical frames
        under slow motion.
        """
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        centers = _reflect(self._centers0 + frame_index * self._velocity)
        radius = self.spec.object_size
        covered = np.zeros((len(centers), self.num_tokens), dtype=bool)
        offset = 0
        for cells in self._cell_centers:
            # Elliptical footprint in normalized units (isotropic radius).
            dist2 = ((cells[None, :, :] - centers[:, None, :]) ** 2).sum(axis=2)
            covered[:, offset : offset + len(cells)] = dist2 <= radius * radius
            offset += len(cells)
        return covered

    def frame(self, frame_index: int) -> np.ndarray:
        """Render frame ``i`` as flattened features ``(N_in, D)``.

        Pure in ``frame_index``: the background is static and each covered
        cell takes its object's fixed signature (later objects over earlier
        ones where footprints overlap), so re-rendering any index gives a
        bit-identical array.
        """
        features = self._background.copy()
        for covered, signature in zip(
            self._coverage(frame_index), self._object_features
        ):
            features[covered] = signature
        return features

    def frames(self):
        """Iterate the ``spec.num_frames`` frames of the stream."""
        for index in range(self.spec.num_frames):
            yield self.frame(index)

    def static_rows(self, frame_index: int) -> np.ndarray:
        """Boolean ``(N_in,)``: rows identical between frames ``i-1`` and ``i``.

        Diagnostic for benchmarks/tests — the streaming session derives its
        own dirty set from the feature arrays, not from this oracle.
        """
        if frame_index == 0:
            return np.zeros(self.num_tokens, dtype=bool)
        previous = self.frame(frame_index - 1)
        current = self.frame(frame_index)
        return ~np.any(previous != current, axis=1)
