"""Workload definitions: model/workload specs, synthetic scenes and traces."""

from repro.workloads.specs import (
    SCALE_PRESETS,
    WorkloadSpec,
    get_workload,
    list_workloads,
)
from repro.workloads.synthetic_images import SceneGenerator, SyntheticScene
from repro.workloads.dataset import SyntheticDetectionDataset
from repro.workloads.traces import LayerTrace, cached_layer_traces, generate_layer_traces
from repro.workloads.video import SyntheticVideoStream, VideoStreamSpec

__all__ = [
    "SCALE_PRESETS",
    "WorkloadSpec",
    "get_workload",
    "list_workloads",
    "SceneGenerator",
    "SyntheticScene",
    "SyntheticVideoStream",
    "VideoStreamSpec",
    "SyntheticDetectionDataset",
    "LayerTrace",
    "cached_layer_traces",
    "generate_layer_traces",
]
