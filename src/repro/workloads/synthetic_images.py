"""Synthetic COCO-like scenes for the detection workload.

COCO 2017 images and annotations are not available offline, so the synthetic
workload generates scenes with the statistics that matter to DEFA:

* a textured background,
* a variable number of objects with class-specific colour signatures and
  varying sizes/aspect ratios (so that different pyramid levels matter),
* ground-truth boxes and labels for the COCO-style AP evaluation.

Object appearance is deliberately simple (rectangles / ellipses with a class
colour plus texture) — the deformable encoder only sees backbone features, and
what the DEFA algorithm exploits is the *spatial concentration* of feature
energy around objects, which these scenes reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.rng import as_rng

DEFAULT_NUM_CLASSES = 6


@dataclass
class SyntheticScene:
    """One synthetic detection scene.

    Attributes
    ----------
    image:
        ``(H, W, 3)`` float image in ``[0, 1]``.
    boxes:
        ``(N, 4)`` ground-truth boxes in normalized ``(x1, y1, x2, y2)``.
    labels:
        ``(N,)`` integer class ids.
    """

    image: np.ndarray
    boxes: np.ndarray
    labels: np.ndarray

    @property
    def num_objects(self) -> int:
        return len(self.labels)


def _class_palette(num_classes: int) -> np.ndarray:
    """Distinct, saturated colour per class (``(num_classes, 3)`` in [0,1])."""
    hues = np.linspace(0.0, 1.0, num_classes, endpoint=False)
    palette = np.zeros((num_classes, 3), dtype=FLOAT_DTYPE)
    for i, hue in enumerate(hues):
        # Simple HSV -> RGB with full saturation and value.
        h6 = hue * 6.0
        k = int(np.floor(h6)) % 6
        f = h6 - np.floor(h6)
        p, q, t = 0.0, 1.0 - f, f
        rgb = {
            0: (1.0, t, p),
            1: (q, 1.0, p),
            2: (p, 1.0, t),
            3: (p, q, 1.0),
            4: (t, p, 1.0),
            5: (1.0, p, q),
        }[k]
        palette[i] = rgb
    return palette


class SceneGenerator:
    """Generator of random synthetic detection scenes.

    Parameters
    ----------
    image_height, image_width:
        Scene resolution in pixels.
    num_classes:
        Number of object classes (each gets a distinct colour signature).
    min_objects, max_objects:
        Number of objects per scene is drawn uniformly from this range.
    min_size, max_size:
        Object side lengths as a fraction of the image size.
    background_noise:
        Standard deviation of the background texture noise.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        image_height: int = 200,
        image_width: int = 267,
        num_classes: int = DEFAULT_NUM_CLASSES,
        min_objects: int = 3,
        max_objects: int = 8,
        min_size: float = 0.08,
        max_size: float = 0.35,
        background_noise: float = 0.05,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if not 0 < min_size <= max_size < 1:
            raise ValueError("object sizes must satisfy 0 < min <= max < 1")
        if min_objects < 0 or max_objects < min_objects:
            raise ValueError("invalid object count range")
        self.image_height = image_height
        self.image_width = image_width
        self.num_classes = num_classes
        self.min_objects = min_objects
        self.max_objects = max_objects
        self.min_size = min_size
        self.max_size = max_size
        self.background_noise = background_noise
        self.rng = as_rng(rng)
        self.palette = _class_palette(num_classes)

    def generate(self) -> SyntheticScene:
        """Generate one scene."""
        rng = self.rng
        height, width = self.image_height, self.image_width
        base = 0.35 + 0.1 * rng.random()
        image = np.full((height, width, 3), base, dtype=FLOAT_DTYPE)
        image += rng.normal(0.0, self.background_noise, size=image.shape).astype(FLOAT_DTYPE)

        num_objects = int(rng.integers(self.min_objects, self.max_objects + 1))
        boxes: list[np.ndarray] = []
        labels: list[int] = []
        for _ in range(num_objects):
            label = int(rng.integers(0, self.num_classes))
            obj_w = rng.uniform(self.min_size, self.max_size)
            obj_h = rng.uniform(self.min_size, self.max_size)
            cx = rng.uniform(obj_w / 2, 1.0 - obj_w / 2)
            cy = rng.uniform(obj_h / 2, 1.0 - obj_h / 2)
            x1, x2 = cx - obj_w / 2, cx + obj_w / 2
            y1, y2 = cy - obj_h / 2, cy + obj_h / 2
            self._draw_object(image, (x1, y1, x2, y2), label, rng)
            boxes.append(np.array([x1, y1, x2, y2], dtype=FLOAT_DTYPE))
            labels.append(label)

        image = np.clip(image, 0.0, 1.0)
        return SyntheticScene(
            image=image,
            boxes=np.asarray(boxes, dtype=FLOAT_DTYPE).reshape(-1, 4),
            labels=np.asarray(labels, dtype=np.int64),
        )

    def generate_batch(self, count: int) -> list[SyntheticScene]:
        """Generate *count* scenes."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate() for _ in range(count)]

    def _draw_object(
        self,
        image: np.ndarray,
        box: tuple[float, float, float, float],
        label: int,
        rng: np.random.Generator,
    ) -> None:
        """Draw one object (ellipse-masked colour patch with texture) in place."""
        height, width = image.shape[:2]
        x1, y1, x2, y2 = box
        c1, c2 = int(x1 * width), min(int(x2 * width) + 1, width)
        r1, r2 = int(y1 * height), min(int(y2 * height) + 1, height)
        if c2 <= c1 or r2 <= r1:
            return
        colour = self.palette[label]
        rows = np.arange(r1, r2)
        cols = np.arange(c1, c2)
        cy = (r1 + r2 - 1) / 2.0
        cx = (c1 + c2 - 1) / 2.0
        ry = max((r2 - r1) / 2.0, 1.0)
        rx = max((c2 - c1) / 2.0, 1.0)
        yy, xx = np.meshgrid(rows, cols, indexing="ij")
        mask = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 <= 1.0
        texture = 0.85 + 0.15 * rng.random(size=mask.shape).astype(FLOAT_DTYPE)
        patch = image[r1:r2, c1:c2]
        blended = colour[None, None, :] * texture[..., None]
        patch[mask] = 0.15 * patch[mask] + 0.85 * blended[mask]
        image[r1:r2, c1:c2] = patch
