"""Synthetic detection dataset: scenes plus their backbone feature pyramids.

Bundles the scene generator and the synthetic FPN backbone into a dataset
object with a calibration split (used to build the detection-head prototypes)
and an evaluation split (used to measure AP under the different DEFA
configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.backbone import FeaturePyramid, SyntheticFPNBackbone
from repro.nn.models import ModelConfig
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.shapes import LevelShape
from repro.workloads.synthetic_images import SceneGenerator, SyntheticScene


@dataclass
class DatasetSample:
    """One scene together with its extracted feature pyramid."""

    scene: SyntheticScene
    pyramid: FeaturePyramid

    @property
    def features(self) -> np.ndarray:
        """Flattened ``(N_in, D)`` features (the MSDeformAttn value input)."""
        return self.pyramid.flat

    @property
    def spatial_shapes(self) -> list[LevelShape]:
        return self.pyramid.spatial_shapes


class SyntheticDetectionDataset:
    """Calibration + evaluation scenes for the synthetic detection task.

    Parameters
    ----------
    model:
        Benchmark model configuration (provides ``d_model`` and strides).
    image_height, image_width:
        Scene resolution (usually taken from a :class:`WorkloadSpec`).
    num_calibration, num_eval:
        Number of scenes in each split.
    num_classes:
        Number of synthetic object classes.
    rng:
        Seed or generator; scene content and backbone weights are derived
        deterministically from it.
    """

    def __init__(
        self,
        model: ModelConfig,
        image_height: int,
        image_width: int,
        num_calibration: int = 4,
        num_eval: int = 8,
        num_classes: int = 6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if num_calibration <= 0 or num_eval <= 0:
            raise ValueError("both splits must contain at least one scene")
        backbone_rng, calib_rng, eval_rng = spawn_rngs(as_rng(rng), 3)
        self.model = model
        self.num_classes = num_classes
        self.backbone = SyntheticFPNBackbone(
            d_model=model.d_model, strides=model.strides, rng=backbone_rng
        )
        calib_generator = SceneGenerator(
            image_height=image_height,
            image_width=image_width,
            num_classes=num_classes,
            rng=calib_rng,
        )
        eval_generator = SceneGenerator(
            image_height=image_height,
            image_width=image_width,
            num_classes=num_classes,
            rng=eval_rng,
        )
        self.calibration: list[DatasetSample] = [
            self._make_sample(scene) for scene in calib_generator.generate_batch(num_calibration)
        ]
        self.evaluation: list[DatasetSample] = [
            self._make_sample(scene) for scene in eval_generator.generate_batch(num_eval)
        ]

    def _make_sample(self, scene: SyntheticScene) -> DatasetSample:
        return DatasetSample(scene=scene, pyramid=self.backbone(scene.image))

    @property
    def spatial_shapes(self) -> list[LevelShape]:
        """Pyramid shapes shared by every sample in the dataset."""
        return self.calibration[0].spatial_shapes
