"""Sampling-trace generation for the hardware simulator and pruning analysis.

The accelerator-level experiments (bank conflicts, fmap reuse, energy) do not
need image pixels — they need the *sampling behaviour* of the MSDeformAttn
layers: where every point samples, with which bilinear neighbours, and with
which attention probability.  This module runs the NumPy encoder on structured
synthetic features and records a :class:`LayerTrace` per encoder layer.

For large workloads a purely synthetic feature generator
(:func:`synthetic_features`) is provided: background noise plus a handful of
Gaussian "object" hotspots per level, replicating the spatial concentration of
feature energy the backbone produces on real images.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.encoder import DeformableEncoder
from repro.nn.grid_sample import SamplingTrace
from repro.nn.models import build_encoder
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.nn.weight_fitting import FittingConfig, ObjectLayout, fit_encoder_heads
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.shapes import LevelShape
from repro.workloads.specs import WorkloadSpec


@dataclass
class LayerTrace:
    """Sampling behaviour of one MSDeformAttn layer on one input.

    Attributes
    ----------
    layer_index:
        Index of the encoder layer the trace belongs to.
    spatial_shapes:
        Pyramid level shapes.
    attention_weights:
        Softmax attention probabilities, ``(N_q, N_h, N_l, N_p)``.
    sampling_locations:
        Normalized sampling locations, ``(N_q, N_h, N_l, N_p, 2)``.
    reference_points:
        Normalized reference points, ``(N_q, N_l, 2)``.
    trace:
        Integer-level neighbour trace (indices, weights, validity).
    """

    layer_index: int
    spatial_shapes: list[LevelShape]
    attention_weights: np.ndarray
    sampling_locations: np.ndarray
    reference_points: np.ndarray
    trace: SamplingTrace

    @property
    def num_queries(self) -> int:
        return self.attention_weights.shape[0]

    @property
    def num_heads(self) -> int:
        return self.attention_weights.shape[1]

    @property
    def num_levels(self) -> int:
        return self.attention_weights.shape[2]

    @property
    def num_points(self) -> int:
        return self.attention_weights.shape[3]


TraceKey = tuple[WorkloadSpec, int, int | None, bool]
"""Cache key of one deterministic trace generation — see :func:`trace_cache_key`."""


def trace_cache_key(
    spec: WorkloadSpec,
    seed: int = 0,
    num_layers: int | None = None,
    fit_heads: bool = True,
) -> TraceKey:
    """Canonical cache key for a :func:`generate_layer_traces` invocation.

    Trace generation is deterministic given ``(spec, seed)`` (plus the layer
    count and head-fitting switch), so two invocations with equal keys return
    identical traces.  The key format is::

        (spec, seed, num_layers, fit_heads)

    ``WorkloadSpec`` is a frozen dataclass, so the spec itself is the
    identity — keying on it (rather than on ``spec.name``) guarantees that
    two specs differing in resolution or model geometry never share an
    entry.  The engine's :class:`~repro.engine.trace_cache.TraceCache` uses
    this key so identical ``(spec, seed)`` traces are never regenerated.
    """
    return (spec, int(seed), num_layers, bool(fit_heads))


def cached_layer_traces(
    spec: WorkloadSpec,
    seed: int = 0,
    num_layers: int | None = None,
    fit_heads: bool = True,
) -> list["LayerTrace"]:
    """Default-cached trace generation: the preferred entry point.

    Delegates to the engine's process-wide
    :data:`~repro.engine.trace_cache.DEFAULT_TRACE_CACHE`, so an identical
    ``(spec, seed)`` trace is never regenerated within a process.  Use
    :func:`generate_layer_traces` directly only when bypassing the cache is
    intended (e.g. custom features or a pre-built encoder).
    """
    # Imported lazily: repro.engine depends on this module.
    from repro.engine.trace_cache import DEFAULT_TRACE_CACHE

    return DEFAULT_TRACE_CACHE.get_or_generate(
        spec, seed=seed, num_layers=num_layers, fit_heads=fit_heads
    )


def synthetic_workload_input(
    spec: WorkloadSpec,
    num_hotspots: int = 8,
    noise_std: float = 0.3,
    hotspot_gain: float = 3.0,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, ObjectLayout]:
    """Structured synthetic features plus the object layout that produced them.

    Each pyramid level receives low-amplitude Gaussian noise plus
    ``num_hotspots`` Gaussian bumps ("objects") whose channel signature is a
    random direction in feature space.  The same hotspot positions are used at
    every level (objects appear at all scales), matching the behaviour of an
    FPN backbone on a real image.  The returned :class:`ObjectLayout` is used
    by the closed-form head fitting to emulate trained sampling behaviour.
    """
    rng = as_rng(rng)
    d_model = spec.model.d_model
    shapes = spec.spatial_shapes
    centers = rng.random(size=(num_hotspots, 2))  # normalized (x, y)
    radii = rng.uniform(0.03, 0.12, size=num_hotspots)
    signatures = rng.standard_normal(size=(num_hotspots, d_model)).astype(FLOAT_DTYPE)
    signatures /= np.linalg.norm(signatures, axis=1, keepdims=True)

    chunks = []
    for shape in shapes:
        ys = (np.arange(shape.height, dtype=FLOAT_DTYPE) + 0.5) / shape.height
        xs = (np.arange(shape.width, dtype=FLOAT_DTYPE) + 0.5) / shape.width
        grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
        level = rng.normal(0.0, noise_std, size=(shape.height, shape.width, d_model)).astype(
            FLOAT_DTYPE
        )
        for k in range(num_hotspots):
            dist2 = (grid_x - centers[k, 0]) ** 2 + (grid_y - centers[k, 1]) ** 2
            bump = np.exp(-dist2 / (2.0 * radii[k] ** 2)).astype(FLOAT_DTYPE)
            level += hotspot_gain * bump[..., None] * signatures[k][None, None, :]
        chunks.append(level.reshape(-1, d_model))
    features = np.concatenate(chunks, axis=0).astype(FLOAT_DTYPE)
    layout = ObjectLayout(centers=centers.astype(FLOAT_DTYPE), radii=radii.astype(FLOAT_DTYPE))
    return features, layout


def synthetic_features(
    spec: WorkloadSpec,
    num_hotspots: int = 8,
    noise_std: float = 0.3,
    hotspot_gain: float = 3.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Structured synthetic features for a workload, shape ``(N_in, D)``.

    Convenience wrapper around :func:`synthetic_workload_input` for callers
    that do not need the object layout.
    """
    features, _ = synthetic_workload_input(
        spec,
        num_hotspots=num_hotspots,
        noise_std=noise_std,
        hotspot_gain=hotspot_gain,
        rng=rng,
    )
    return features


def generate_layer_traces(
    spec: WorkloadSpec,
    num_layers: int | None = None,
    features: np.ndarray | None = None,
    layout: ObjectLayout | None = None,
    fit_heads: bool = True,
    fitting_config: FittingConfig | None = None,
    attention_sharpness: float = 2.5,
    offset_scale: float = 2.0,
    encoder: DeformableEncoder | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[LayerTrace]:
    """Run the workload's encoder and collect a :class:`LayerTrace` per layer.

    Parameters
    ----------
    spec:
        Workload specification.
    num_layers:
        Number of encoder layers to trace (defaults to the model's encoder
        depth; smaller values are convenient for tests).
    features:
        Optional ``(N_in, D)`` input features; defaults to
        :func:`synthetic_workload_input`.
    layout:
        Object layout matching *features*; required for head fitting when
        custom features are supplied.
    fit_heads:
        Fit the offset/attention heads to object-seeking targets (emulating
        trained sampling behaviour) before tracing.  Strongly recommended —
        the pruning and hardware statistics of the paper assume trained-model
        behaviour.
    fitting_config:
        Optional :class:`FittingConfig` overriding the fitting defaults.
    attention_sharpness, offset_scale:
        Synthetic-weight parameters forwarded to the encoder construction
        (only relevant when ``fit_heads`` is ``False``).
    encoder:
        Optional pre-built encoder (must match the workload shape); if given,
        ``num_layers`` defaults to its depth.
    rng:
        Seed or generator.
    """
    rng = as_rng(rng)
    feature_rng, encoder_rng, fit_rng = spawn_rngs(rng, 3)
    shapes = spec.spatial_shapes
    if features is None:
        features, layout = synthetic_workload_input(spec, rng=feature_rng)
    if features.shape != (spec.num_tokens, spec.model.d_model):
        raise ValueError(
            f"features must have shape ({spec.num_tokens}, {spec.model.d_model}), "
            f"got {features.shape}"
        )
    if encoder is None:
        encoder = build_encoder(
            spec.model,
            attention_sharpness=attention_sharpness,
            offset_scale=offset_scale,
            rng=encoder_rng,
        )
    if num_layers is None:
        num_layers = len(encoder.layers)
    if not 1 <= num_layers <= len(encoder.layers):
        raise ValueError(f"num_layers must be in [1, {len(encoder.layers)}]")

    pos = sine_positional_encoding(shapes, spec.model.d_model)
    reference_points = make_reference_points(shapes)
    if fit_heads:
        if layout is None:
            raise ValueError("fit_heads=True requires an object layout for the features")
        fit_encoder_heads(
            encoder,
            features,
            pos,
            reference_points,
            shapes,
            layout,
            config=fitting_config,
            rng=fit_rng,
        )

    traces: list[LayerTrace] = []
    x = np.asarray(features, dtype=FLOAT_DTYPE)
    for layer_index in range(num_layers):
        layer = encoder.layers[layer_index]
        layer_out = layer.forward_detailed(x, pos, reference_points, shapes, with_trace=True)
        attn = layer_out.attention
        traces.append(
            LayerTrace(
                layer_index=layer_index,
                spatial_shapes=shapes,
                attention_weights=attn.attention_weights,
                sampling_locations=attn.sampling_locations,
                reference_points=reference_points,
                trace=attn.trace,
            )
        )
        x = layer_out.output
    return traces
