"""Workload specifications: model configuration × input resolution.

A :class:`WorkloadSpec` combines one of the paper's benchmark models with an
input-image scale and derives everything the analyzers and the hardware
simulator need: pyramid shapes, token counts, sampling-point counts, FLOP and
byte totals for every operator of an MSDeformAttn layer.

Three scale presets are provided:

* ``"paper"`` — the COCO evaluation resolution (800x1066, the paper setting),
* ``"medium"`` — a quarter-area resolution used by the default benchmarks so
  that the NumPy functional simulation stays fast,
* ``"tiny"`` — a very small resolution used by the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.models import MODEL_NAMES, ModelConfig, get_model_config
from repro.utils.shapes import LevelShape, make_level_shapes, total_pixels

SCALE_PRESETS: dict[str, tuple[int, int]] = {
    "paper": (800, 1066),
    "medium": (400, 533),
    "small": (200, 267),
    "tiny": (64, 96),
}
"""Image sizes (height, width) of the named workload scales."""

BYTES_PER_ELEMENT_FP32 = 4
BYTES_PER_ELEMENT_INT12 = 1.5
BYTES_PER_ELEMENT_FP16 = 2


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully derived workload: model architecture + input resolution."""

    model: ModelConfig
    scale: str
    image_height: int
    image_width: int

    @property
    def name(self) -> str:
        """Unique workload name, e.g. ``"deformable_detr@medium"``."""
        return f"{self.model.name}@{self.scale}"

    @property
    def spatial_shapes(self) -> list[LevelShape]:
        """Pyramid level shapes of the workload."""
        return make_level_shapes(self.image_height, self.image_width, self.model.strides)

    @property
    def num_tokens(self) -> int:
        """Number of flattened multi-scale tokens ``N_in``."""
        return total_pixels(self.spatial_shapes)

    @property
    def num_queries(self) -> int:
        """Number of encoder queries (equal to ``N_in`` for self-attention)."""
        return self.num_tokens

    @property
    def num_sampling_points_per_query(self) -> int:
        """Sampling points per query over all heads/levels (``N_h N_l N_p``)."""
        return self.model.num_heads * self.model.num_levels * self.model.num_points

    @property
    def num_sampling_points_per_layer(self) -> int:
        """Total sampling points of one MSDeformAttn layer."""
        return self.num_queries * self.num_sampling_points_per_query

    @property
    def d_head(self) -> int:
        """Per-head channel dimension ``D_h``."""
        return self.model.d_model // self.model.num_heads

    # ------------------------------------------------------------- FLOPs

    def layer_flops_breakdown(self) -> dict[str, int]:
        """Dense FLOP breakdown of one MSDeformAttn layer (no FFN/norms).

        Mirrors :meth:`repro.nn.msdeform_attn.MSDeformAttn.flops` but is
        computed analytically so no model has to be instantiated.
        """
        d = self.model.d_model
        n_q = self.num_queries
        n_in = self.num_tokens
        n_pts = self.num_sampling_points_per_query
        d_h = self.d_head
        return {
            "value_proj": 2 * n_in * d * d,
            "sampling_offsets": 2 * n_q * d * (2 * n_pts),
            "attention_weights": 2 * n_q * d * n_pts,
            "output_proj": 2 * n_q * d * d,
            "softmax": 5 * n_q * n_pts,
            "msgs": n_q * n_pts * d_h * 10,
            "aggregation": 2 * n_q * n_pts * d_h,
        }

    def layer_flops(self) -> int:
        """Total dense FLOPs of one MSDeformAttn layer."""
        return int(sum(self.layer_flops_breakdown().values()))

    def encoder_attention_flops(self) -> int:
        """Dense MSDeformAttn FLOPs over all encoder layers."""
        return self.layer_flops() * self.model.num_encoder_layers

    def ffn_flops_per_layer(self) -> int:
        """FLOPs of the FFN block of one encoder layer."""
        return 2 * self.num_tokens * self.model.d_model * self.model.ffn_dim * 2

    def encoder_flops(self) -> int:
        """Dense FLOPs of the whole encoder (attention + FFN)."""
        per_layer = self.layer_flops() + self.ffn_flops_per_layer()
        return per_layer * self.model.num_encoder_layers

    # ------------------------------------------------------------- memory

    def fmap_bytes(self, bytes_per_element: float = BYTES_PER_ELEMENT_INT12) -> float:
        """Size of the flattened multi-scale value feature maps in bytes."""
        return self.num_tokens * self.model.d_model * bytes_per_element

    def level_fmap_bytes(self, level: int, bytes_per_element: float = BYTES_PER_ELEMENT_INT12) -> float:
        """Size of one pyramid level's value feature map in bytes."""
        return self.spatial_shapes[level].num_pixels * self.model.d_model * bytes_per_element

    def multi_scale_to_single_scale_ratio(self, single_scale_stride: int = 32) -> float:
        """Pixel-count ratio of the full pyramid vs. a single-scale feature map.

        The paper quotes this as the ~21.3x factor by which multi-scale fmaps
        exceed the single-scale (stride-32) fmaps of DeformConv (Sec. 2.2).
        """
        single = make_level_shapes(self.image_height, self.image_width, (single_scale_stride,))[0]
        return self.num_tokens / single.num_pixels

    def describe(self) -> dict[str, float | int | str]:
        """Human-readable summary used by examples and the experiment runner."""
        return {
            "workload": self.name,
            "image": f"{self.image_height}x{self.image_width}",
            "levels": "+".join(f"{s.height}x{s.width}" for s in self.spatial_shapes),
            "num_tokens": self.num_tokens,
            "sampling_points_per_layer": self.num_sampling_points_per_layer,
            "layer_gflops": self.layer_flops() / 1e9,
            "encoder_gflops": self.encoder_flops() / 1e9,
        }


def get_workload(model_name: str, scale: str = "medium") -> WorkloadSpec:
    """Build the :class:`WorkloadSpec` for *model_name* at a scale preset."""
    if scale not in SCALE_PRESETS:
        raise KeyError(f"unknown scale {scale!r}; known scales: {sorted(SCALE_PRESETS)}")
    height, width = SCALE_PRESETS[scale]
    return WorkloadSpec(
        model=get_model_config(model_name),
        scale=scale,
        image_height=height,
        image_width=width,
    )


def list_workloads(scale: str = "medium") -> list[WorkloadSpec]:
    """Workload specs of all three benchmark models at the given scale."""
    return [get_workload(name, scale) for name in MODEL_NAMES]
