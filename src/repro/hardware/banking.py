"""Intra-level vs. inter-level parallel processing of MSGS (Sec. 4.2, Fig. 5/7a).

DEFA computes four sampling points per cycle, which requires reading the
4 x 4 = 16 neighbour pixels from 16 SRAM banks in a single cycle.

* **Intra-level** processing issues the four points of one (query, head,
  level) together.  The level's bounded-range window is interleaved over all
  16 banks (``bank = (row mod 4) * 4 + col mod 4``); the 2x2 neighbourhood of
  one point always hits four distinct banks, but different points frequently
  collide — colliding requests serialize and stall the pipeline.
* **Inter-level** processing issues the p-th point of one (query, head) from
  all four pyramid levels together.  Each level's window owns a private group
  of four banks (``bank = 4*level + (row mod 2)*2 + col mod 2``), so the 16
  requests are conflict-free by construction.

:func:`simulate_bank_conflicts` replays a real sampling trace under either
scheme and reports the cycle counts, from which the Fig. 7(a) throughput boost
is derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.nn.grid_sample import SamplingTrace


class BankingScheme(str, Enum):
    """Bank-mapping / issue-grouping scheme of the MSGS pipeline."""

    INTRA_LEVEL = "intra_level"
    INTER_LEVEL = "inter_level"


@dataclass(frozen=True)
class ConflictReport:
    """Result of replaying a sampling trace under one banking scheme."""

    scheme: BankingScheme
    num_groups: int
    """Number of parallel issue groups replayed."""

    active_points: int
    """Number of (kept, in-bounds) sampling points processed."""

    total_cycles: int
    """Cycles needed to serve all groups (>= num_groups)."""

    conflict_cycles: int
    """Extra cycles spent serializing bank conflicts and stalling the pipeline."""

    conflicting_groups: int = 0
    """Number of issue groups that hit at least one bank conflict."""

    @property
    def cycles_per_group(self) -> float:
        """Average cycles per issue group (1.0 = conflict free)."""
        return self.total_cycles / self.num_groups if self.num_groups else 0.0

    @property
    def throughput_points_per_cycle(self) -> float:
        """Sampling points completed per cycle."""
        return self.active_points / self.total_cycles if self.total_cycles else 0.0

    @property
    def conflict_fraction(self) -> float:
        """Fraction of cycles lost to conflicts."""
        return self.conflict_cycles / self.total_cycles if self.total_cycles else 0.0


def _intra_level_banks(rows: np.ndarray, cols: np.ndarray, num_banks: int) -> np.ndarray:
    """Bank index of a pixel under the intra-level interleaving.

    Following Fig. 5(a), the bounded-range window is laid out row-major over
    all banks: two consecutive rows span the 16 banks (8 columns per row
    group), so the 2x2 neighbourhood of a single point is conflict-free while
    different points frequently collide.
    """
    cols_per_group = max(1, num_banks // 2)
    return (rows % 2) * cols_per_group + cols % cols_per_group


def _inter_level_banks(
    rows: np.ndarray, cols: np.ndarray, levels: np.ndarray, num_banks: int, num_levels: int
) -> np.ndarray:
    """Bank index of a pixel under the inter-level (per-level bank group) mapping."""
    banks_per_level = max(1, num_banks // max(num_levels, 1))
    side = max(1, int(np.sqrt(banks_per_level)))
    local = (rows % side) * side + cols % side
    return levels * banks_per_level + local % banks_per_level


def _group_cycles(
    banks: np.ndarray,
    addresses: np.ndarray,
    active: np.ndarray,
    num_banks: int,
    merge_same_address: bool = False,
) -> np.ndarray:
    """Cycles needed by each issue group.

    ``banks``/``addresses``/``active`` have shape ``(G, K)`` where ``K`` is the
    number of simultaneous requests of one group.  Requests to the same bank
    serialize; the group cost is the maximum per-bank request count.  With
    ``merge_same_address=True`` requests of different sampling points hitting
    the same bank *and* the same address are served by a single broadcast
    access (an optimistic design with an address-comparison crossbar); the
    default models a plain single-port bank that serializes them.
    """
    banks = np.asarray(banks, dtype=np.int64)
    addresses = np.asarray(addresses, dtype=np.int64)
    active = np.asarray(active, dtype=bool)
    if banks.shape != addresses.shape or banks.shape != active.shape:
        raise ValueError("banks, addresses and active must share a shape")
    num_groups = banks.shape[0]
    if num_groups == 0:
        return np.zeros(0, dtype=np.int64)

    if merge_same_address:
        big = int(addresses.max()) + 2 if addresses.size else 2
        keys = np.where(active, banks * big + addresses + 1, 0)
        sorted_keys = np.sort(keys, axis=1)
        first = np.ones_like(sorted_keys, dtype=bool)
        first[:, 1:] = sorted_keys[:, 1:] != sorted_keys[:, :-1]
        unique = first & (sorted_keys != 0)
        bank_of = np.where(unique, (sorted_keys - 1) // big, -1)
    else:
        bank_of = np.where(active, banks, -1)

    cycles = np.zeros(num_groups, dtype=np.int64)
    for bank in range(num_banks):
        count = np.sum(bank_of == bank, axis=1)
        np.maximum(cycles, count, out=cycles)
    return cycles


def simulate_bank_conflicts(
    trace: SamplingTrace,
    scheme: BankingScheme | str = BankingScheme.INTER_LEVEL,
    point_mask: np.ndarray | None = None,
    num_banks: int = 16,
    merge_same_address: bool = False,
    conflict_penalty_cycles: int = 2,
) -> ConflictReport:
    """Replay a sampling trace under one banking scheme.

    Parameters
    ----------
    trace:
        Sampling trace of one MSDeformAttn block.
    scheme:
        Banking / issue-grouping scheme.
    point_mask:
        Optional PAP keep-mask ``(N_q, N_h, N_l, N_p)``; pruned points are not
        issued (matching the accelerator dataflow).
    num_banks:
        Number of SRAM banks (16 in the paper's design).
    merge_same_address:
        Whether same-bank same-address requests of different points are served
        by one broadcast access (see :func:`_group_cycles`).
    conflict_penalty_cycles:
        Pipeline-stall penalty paid by every group that hits at least one
        conflict.  The paper notes that "extra clock cycles are spent on
        detecting bank conflicts, stopping the pipeline, and sequentially
        processing the requests" — the serialization itself is modelled
        exactly, and this constant models the detect/stop/restart overhead.
    """
    scheme = BankingScheme(scheme)
    rows = trace.rows
    cols = trace.cols
    valid = trace.valid
    levels = trace.levels[..., None]  # broadcast over the 4 neighbours
    n_q, n_h, n_l, n_p, _ = rows.shape

    active = valid.copy()
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != (n_q, n_h, n_l, n_p):
            raise ValueError("point_mask shape mismatch")
        active &= point_mask[..., None]

    # Address within a bank: the pixel's position inside its level, divided by
    # the bank interleaving (different pixels mapping to the same bank get
    # different addresses, which is what matters for conflict detection).
    widths = np.array([s.width for s in trace.spatial_shapes], dtype=np.int64)
    level_width = widths[trace.levels][..., None]
    rows_c = np.maximum(rows, 0)
    cols_c = np.maximum(cols, 0)
    pixel_id = rows_c * level_width + cols_c

    if scheme is BankingScheme.INTRA_LEVEL:
        banks = _intra_level_banks(rows_c, cols_c, num_banks)
        # Issue groups: the N_p points of one (query, head, level).
        group_banks = banks.reshape(n_q * n_h * n_l, n_p * 4)
        group_addr = pixel_id.reshape(n_q * n_h * n_l, n_p * 4)
        group_active = active.reshape(n_q * n_h * n_l, n_p * 4)
    else:
        banks = _inter_level_banks(
            rows_c, cols_c, np.broadcast_to(levels, rows.shape), num_banks, n_l
        )
        # Issue groups: the same point index of one (query, head) across levels.
        order = (0, 1, 3, 2, 4)  # (q, h, p, l, neighbour)
        group_banks = banks.transpose(order).reshape(n_q * n_h * n_p, n_l * 4)
        group_addr = pixel_id.transpose(order).reshape(n_q * n_h * n_p, n_l * 4)
        group_active = active.transpose(order).reshape(n_q * n_h * n_p, n_l * 4)

    nonempty = group_active.any(axis=1)
    cycles = _group_cycles(
        group_banks[nonempty],
        group_addr[nonempty],
        group_active[nonempty],
        num_banks,
        merge_same_address=merge_same_address,
    )
    cycles = np.maximum(cycles, 1)
    conflicting = int(np.count_nonzero(cycles > 1))
    total_cycles = int(cycles.sum()) + conflict_penalty_cycles * conflicting
    num_groups = int(nonempty.sum())
    active_points = int(np.count_nonzero(active.any(axis=-1)))
    return ConflictReport(
        scheme=scheme,
        num_groups=num_groups,
        active_points=active_points,
        total_cycles=total_cycles,
        conflict_cycles=total_cycles - num_groups,
        conflicting_groups=conflicting,
    )


def throughput_boost(intra: ConflictReport, inter: ConflictReport) -> float:
    """MSGS throughput boost of inter-level over intra-level processing (Fig. 7a)."""
    if intra.throughput_points_per_cycle == 0:
        return 0.0
    return inter.throughput_points_per_cycle / intra.throughput_points_per_cycle
