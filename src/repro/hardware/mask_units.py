"""Mask generation and (de)compression units (Fig. 3).

The fmap mask generator implements FWP in hardware: it receives the sampling
addresses issued by the BI stage, counts per-pixel frequencies and emits the
bit mask for the next block.  The point mask generator thresholds the softmax
outputs (PAP).  The compression/decompression units pack the pruned tensors so
that masked elements consume no bandwidth.

These units are tiny compared to the PE array and the SRAM; the model tracks
their cycle overhead (fully overlapped with the main pipeline in the paper's
design) and their energy, which the evaluation shows to be negligible
(<0.1 % of SRAM access energy, Sec. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import HardwareConfig


@dataclass(frozen=True)
class MaskUnitReport:
    """Cycle / energy accounting of the mask and compression units for one block."""

    fmap_mask_bits: int
    point_mask_bits: int
    frequency_updates: int
    compression_bytes: float
    cycles: int
    energy_j: float


def mask_unit_report(
    num_tokens: int,
    num_points_total: int,
    neighbor_accesses: int,
    compressed_bytes: float,
    config: HardwareConfig,
    addresses_per_cycle: int = 16,
) -> MaskUnitReport:
    """Model the FWP/PAP mask generators and the compression units for one block.

    Parameters
    ----------
    num_tokens:
        Number of fmap pixels (one fmap-mask bit each).
    num_points_total:
        Number of sampling points (one point-mask bit each).
    neighbor_accesses:
        Sampling addresses streamed through the frequency counter.
    compressed_bytes:
        Data volume passing through the compression/decompression units.
    config:
        Hardware configuration (provides the per-bit energy).
    addresses_per_cycle:
        Frequency-counter update throughput (matches the 16 parallel bank
        accesses of the MSGS pipeline).
    """
    if min(num_tokens, num_points_total, neighbor_accesses) < 0 or compressed_bytes < 0:
        raise ValueError("mask unit inputs must be non-negative")
    if addresses_per_cycle <= 0:
        raise ValueError("addresses_per_cycle must be positive")
    cycles = (neighbor_accesses + addresses_per_cycle - 1) // addresses_per_cycle
    mask_bits = num_tokens + num_points_total
    energy_pj = (
        mask_bits * config.mask_bit_energy_pj
        + neighbor_accesses * config.mask_bit_energy_pj
        + compressed_bytes * 8.0 * config.mask_bit_energy_pj * 0.25
    )
    return MaskUnitReport(
        fmap_mask_bits=num_tokens,
        point_mask_bits=num_points_total,
        frequency_updates=neighbor_accesses,
        compression_bytes=compressed_bytes,
        cycles=int(cycles),
        energy_j=energy_pj * 1e-12,
    )
