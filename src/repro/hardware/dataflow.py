"""Operator schedule of one MSDeformAttn block on the DEFA accelerator.

The dataflow follows Sec. 4.1 of the paper:

1. ``Q W^A`` + softmax (MM mode) → point mask (PAP),
2. masked ``Delta P = Q W^S`` (MM mode),
3. masked ``V = X W^V`` (MM mode) using the FWP mask of the previous block,
4. fused MSGS + aggregation (BA mode) while the fmap mask generator counts
   sampled frequencies for the next block,
5. output projection (MM mode).

:func:`build_layer_schedule` turns a :class:`LayerWorkload` (how much work
survives pruning, how well fmap pixels are reused, how often banks conflict)
into a list of :class:`Phase` records with cycle counts and memory traffic,
under configurable ablation switches (operator fusion on/off, fmap reuse
on/off, intra- vs inter-level banking).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.banking import BankingScheme
from repro.hardware.config import HardwareConfig
from repro.hardware.mask_units import mask_unit_report
from repro.hardware.pe_array import ReconfigurablePEArray


@dataclass(frozen=True)
class LayerWorkload:
    """Pruning-aware description of one MSDeformAttn block's work.

    All quantities are totals over the block (not per query).
    """

    num_queries: int
    num_tokens: int
    d_model: int
    num_heads: int
    num_levels: int
    num_points: int
    points_kept: int
    pixels_kept: int
    unique_pixels_accessed: int
    neighbor_accesses: int
    intra_conflict_factor: float = 3.0
    """Average cycles per MSGS issue group under intra-level banking."""

    inter_conflict_factor: float = 1.0
    """Average cycles per MSGS issue group under inter-level banking."""

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if not 0 <= self.points_kept <= self.points_total:
            raise ValueError("points_kept out of range")
        if not 0 <= self.pixels_kept <= self.num_tokens:
            raise ValueError("pixels_kept out of range")
        if self.intra_conflict_factor < 1.0 or self.inter_conflict_factor < 1.0:
            raise ValueError("conflict factors must be >= 1")

    @property
    def d_head(self) -> int:
        return self.d_model // self.num_heads

    @property
    def points_per_query(self) -> int:
        return self.num_heads * self.num_levels * self.num_points

    @property
    def points_total(self) -> int:
        return self.num_queries * self.points_per_query

    @property
    def point_keep_ratio(self) -> float:
        return self.points_kept / self.points_total if self.points_total else 1.0

    @property
    def pixel_keep_ratio(self) -> float:
        return self.pixels_kept / self.num_tokens if self.num_tokens else 1.0

    # ------------------------------------------------------------ factories

    @staticmethod
    def dense(
        num_queries: int,
        num_tokens: int,
        d_model: int,
        num_heads: int,
        num_levels: int,
        num_points: int,
    ) -> "LayerWorkload":
        """An unpruned workload (every point and pixel kept, no reuse benefit)."""
        points_total = num_queries * num_heads * num_levels * num_points
        return LayerWorkload(
            num_queries=num_queries,
            num_tokens=num_tokens,
            d_model=d_model,
            num_heads=num_heads,
            num_levels=num_levels,
            num_points=num_points,
            points_kept=points_total,
            pixels_kept=num_tokens,
            unique_pixels_accessed=num_tokens,
            neighbor_accesses=points_total * 4,
        )

    @staticmethod
    def from_ratios(
        num_queries: int,
        num_tokens: int,
        d_model: int,
        num_heads: int,
        num_levels: int,
        num_points: int,
        point_keep_ratio: float = 1.0,
        pixel_keep_ratio: float = 1.0,
        unique_pixel_ratio: float = 1.0,
        intra_conflict_factor: float = 3.0,
    ) -> "LayerWorkload":
        """Build a workload from summary ratios (used for paper-scale projections)."""
        for name, value in [
            ("point_keep_ratio", point_keep_ratio),
            ("pixel_keep_ratio", pixel_keep_ratio),
            ("unique_pixel_ratio", unique_pixel_ratio),
        ]:
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        points_total = num_queries * num_heads * num_levels * num_points
        points_kept = int(round(points_total * point_keep_ratio))
        return LayerWorkload(
            num_queries=num_queries,
            num_tokens=num_tokens,
            d_model=d_model,
            num_heads=num_heads,
            num_levels=num_levels,
            num_points=num_points,
            points_kept=points_kept,
            pixels_kept=int(round(num_tokens * pixel_keep_ratio)),
            unique_pixels_accessed=int(round(num_tokens * unique_pixel_ratio)),
            neighbor_accesses=points_kept * 4,
            intra_conflict_factor=intra_conflict_factor,
        )


@dataclass(frozen=True)
class Phase:
    """One stage of the block schedule."""

    name: str
    mode: str
    cycles: int
    macs: int = 0
    bi_ops: int = 0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    sram_read_bytes: float = 0.0
    sram_write_bytes: float = 0.0
    extra_energy_j: float = 0.0

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def sram_bytes(self) -> float:
        return self.sram_read_bytes + self.sram_write_bytes


@dataclass
class LayerSchedule:
    """Full schedule of one MSDeformAttn block."""

    workload: LayerWorkload
    phases: list[Phase] = field(default_factory=list)
    fuse_msgs_aggregation: bool = True
    fmap_reuse: bool = True
    banking: BankingScheme = BankingScheme.INTER_LEVEL

    @property
    def compute_cycles(self) -> int:
        return int(sum(p.cycles for p in self.phases))

    @property
    def total_macs(self) -> int:
        return int(sum(p.macs for p in self.phases))

    @property
    def total_bi_ops(self) -> int:
        return int(sum(p.bi_ops for p in self.phases))

    @property
    def dram_bytes(self) -> float:
        return float(sum(p.dram_bytes for p in self.phases))

    @property
    def sram_bytes(self) -> float:
        return float(sum(p.sram_bytes for p in self.phases))

    def phase(self, name: str) -> Phase:
        """Look up a phase by name."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r}")

    def msgs_phases(self) -> list[Phase]:
        """The phases belonging to the MSGS + aggregation stage."""
        return [p for p in self.phases if p.name.startswith("msgs")]


def build_layer_schedule(
    workload: LayerWorkload,
    config: HardwareConfig,
    fuse_msgs_aggregation: bool = True,
    fmap_reuse: bool = True,
    banking: BankingScheme | str = BankingScheme.INTER_LEVEL,
) -> LayerSchedule:
    """Build the phase-by-phase schedule of one block.

    The ablation switches reproduce the paper's hardware experiments: turning
    ``fuse_msgs_aggregation`` off routes the sampling values through
    SRAM + DRAM between MSGS and aggregation (Fig. 7b, "Op Fusion"); turning
    ``fmap_reuse`` off re-fetches every bilinear neighbour from DRAM
    (Fig. 7b, "Fmap Reuse"); ``banking`` selects intra- vs inter-level parallel
    processing (Fig. 7a).
    """
    banking = BankingScheme(banking)
    pe = ReconfigurablePEArray(config)
    bpe = config.bytes_per_element
    d = workload.d_model
    d_head = workload.d_head
    n_q = workload.num_queries
    points_per_query = workload.points_per_query

    def refetch(output_cols: int) -> int:
        # Output-stationary tiling: the PE array produces `lane_width` output
        # columns per pass, so the input activations are streamed from DRAM
        # once per output-column strip (the full matrix does not fit on chip).
        # This activation re-fetch is what makes the MM data transfer dominate
        # the DRAM energy (Fig. 8).
        return max(1, int(np.ceil(output_cols / config.lane_width)))

    phases: list[Phase] = []

    # Weights of the four projections are streamed from DRAM once per block.
    weight_elements = d * d * 3 + d * (2 * points_per_query) + d * points_per_query
    phases.append(
        Phase(
            name="weight_load",
            mode="dma",
            cycles=0,
            dram_read_bytes=weight_elements * bpe,
            sram_write_bytes=weight_elements * bpe,
        )
    )

    # 1. Attention-weight projection + softmax (always dense: PAP needs them).
    macs = n_q * d * points_per_query
    phases.append(
        Phase(
            name="attention_weights_mm",
            mode="mm",
            cycles=pe.mm_cycles(macs),
            macs=macs,
            dram_read_bytes=n_q * d * bpe * refetch(points_per_query),  # queries
            sram_read_bytes=(n_q * d + weight_elements / 6) * bpe,
            sram_write_bytes=n_q * points_per_query * bpe,
        )
    )
    softmax_elements = n_q * points_per_query
    phases.append(
        Phase(
            name="softmax",
            mode="softmax",
            cycles=int(np.ceil(softmax_elements / config.softmax_throughput)),
            sram_read_bytes=softmax_elements * bpe,
            sram_write_bytes=softmax_elements * bpe,
            extra_energy_j=softmax_elements * config.softmax_element_energy_pj * 1e-12,
        )
    )

    # 2. Sampling offsets of the surviving points only.
    offset_cols = int(np.ceil(2 * points_per_query * workload.point_keep_ratio))
    macs = n_q * d * offset_cols
    phases.append(
        Phase(
            name="sampling_offsets_mm",
            mode="mm",
            cycles=pe.mm_cycles(macs),
            macs=macs,
            dram_read_bytes=n_q * d * bpe * refetch(offset_cols),
            sram_read_bytes=n_q * d * bpe,
            sram_write_bytes=workload.points_kept * 2 * bpe,
        )
    )

    # 3. Value projection of the FWP-kept pixels.
    macs = workload.pixels_kept * d * d
    phases.append(
        Phase(
            name="value_proj_mm",
            mode="mm",
            cycles=pe.mm_cycles(macs),
            macs=macs,
            dram_read_bytes=workload.pixels_kept * d * bpe * refetch(d),
            dram_write_bytes=workload.pixels_kept * d * bpe,  # V written back (full fmap > SRAM)
            sram_read_bytes=workload.pixels_kept * d * bpe,
            sram_write_bytes=workload.pixels_kept * d * bpe,
        )
    )

    # 4. Fused MSGS + aggregation (BA mode).
    conflict = (
        workload.inter_conflict_factor
        if banking is BankingScheme.INTER_LEVEL
        else workload.intra_conflict_factor
    )
    if fmap_reuse:
        fmap_fetch_bytes = workload.unique_pixels_accessed * d * bpe
    else:
        fmap_fetch_bytes = workload.neighbor_accesses * d_head * bpe
    phases.append(
        Phase(
            name="msgs_fmap_fetch",
            mode="dma",
            cycles=0,
            dram_read_bytes=fmap_fetch_bytes,
            sram_write_bytes=fmap_fetch_bytes,
        )
    )
    bi_reads = workload.neighbor_accesses * d_head * bpe
    phases.append(
        Phase(
            name="msgs_aggregation_ba",
            mode="ba",
            cycles=pe.ba_cycles(workload.points_kept, d_head, conflict_factor=conflict),
            macs=workload.points_kept * d_head,
            bi_ops=workload.points_kept * d_head,
            sram_read_bytes=bi_reads + workload.points_kept * 2 * bpe,
        )
    )
    if not fuse_msgs_aggregation:
        # Without fusion the interpolated sampling values take a round trip
        # through the SRAM buffers and off-chip memory before aggregation.
        sampling_value_bytes = workload.points_kept * d_head * bpe
        phases.append(
            Phase(
                name="msgs_sampling_value_spill",
                mode="dma",
                cycles=0,
                dram_write_bytes=sampling_value_bytes,
                dram_read_bytes=sampling_value_bytes,
                sram_write_bytes=2 * sampling_value_bytes,
                sram_read_bytes=2 * sampling_value_bytes,
            )
        )

    # Mask generation (FWP frequency counting + PAP thresholding + compression).
    mask_report = mask_unit_report(
        num_tokens=workload.num_tokens,
        num_points_total=workload.points_total,
        neighbor_accesses=workload.neighbor_accesses,
        compressed_bytes=workload.pixels_kept * d * bpe,
        config=config,
    )
    phases.append(
        Phase(
            name="mask_units",
            mode="mask",
            cycles=0,  # fully overlapped with the BA stage
            extra_energy_j=mask_report.energy_j,
            sram_write_bytes=(mask_report.fmap_mask_bits + mask_report.point_mask_bits) / 8.0,
        )
    )

    # 5. Output projection.
    macs = n_q * d * d
    phases.append(
        Phase(
            name="output_proj_mm",
            mode="mm",
            cycles=pe.mm_cycles(macs),
            macs=macs,
            dram_read_bytes=n_q * d * bpe * (refetch(d) - 1),
            sram_read_bytes=n_q * d * bpe,
            dram_write_bytes=n_q * d * bpe,
        )
    )

    return LayerSchedule(
        workload=workload,
        phases=phases,
        fuse_msgs_aggregation=fuse_msgs_aggregation,
        fmap_reuse=fmap_reuse,
        banking=banking,
    )
