"""Cycle-approximate simulator of the DEFA accelerator architecture."""

from repro.hardware.config import HardwareConfig
from repro.hardware.cacti import SRAMMacroModel
from repro.hardware.dram import HBM2Model
from repro.hardware.sram import BankedSRAM
from repro.hardware.banking import BankingScheme, simulate_bank_conflicts
from repro.hardware.pe_array import ReconfigurablePEArray
from repro.hardware.dataflow import LayerSchedule, build_layer_schedule
from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.hardware.area import AreaBreakdown, area_model
from repro.hardware.simulator import DEFASimulator, LayerSimulationReport, ModelSimulationReport

__all__ = [
    "HardwareConfig",
    "SRAMMacroModel",
    "HBM2Model",
    "BankedSRAM",
    "BankingScheme",
    "simulate_bank_conflicts",
    "ReconfigurablePEArray",
    "LayerSchedule",
    "build_layer_schedule",
    "EnergyBreakdown",
    "EnergyModel",
    "AreaBreakdown",
    "area_model",
    "DEFASimulator",
    "LayerSimulationReport",
    "ModelSimulationReport",
]
