"""The reconfigurable PE array (Sec. 4.3, Fig. 3).

The array switches between two modes:

* **MM mode** — a 16-element query vector is multiplied with a 16x16 weight
  tile in an output-stationary dataflow (one MAC per PE per cycle).  All
  linear projections of the MSDeformAttn block run in this mode.
* **BA mode** — the lanes are reorganised into bilinear-interpolation (BI)
  operators and aggregation (AG) operators.  Eq. 4 factorises the bilinear
  interpolation so that one BI operator needs only three multipliers and seven
  adders; the AG operator multiplies the interpolated value with its attention
  probability and accumulates the head output.  MSGS and aggregation run fused
  in this mode, so the sampling values never leave the array.

Besides cycle/energy accounting, the functional helpers
(:func:`bilinear_interpolate_factorized`, :meth:`ReconfigurablePEArray.matmul`)
are exercised by the tests to show the hardware arithmetic matches the NumPy
reference operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.config import HardwareConfig


def bilinear_interpolate_factorized(
    n0: np.ndarray, n1: np.ndarray, n2: np.ndarray, n3: np.ndarray, t0: np.ndarray, t1: np.ndarray
) -> np.ndarray:
    """Factorised bilinear interpolation of Eq. 4.

    ``S = N0 + (N2 - N0) t0 + [(N1 - N0) + (N3 - N2 - N1 + N0) t0] t1``

    with ``t0 = y - y0`` and ``t1 = x - x0``.  Only three multiplications are
    needed, which is what allows the BI operator to fit into three multipliers
    and seven adders.
    """
    n0 = np.asarray(n0, dtype=np.float64)
    n1 = np.asarray(n1, dtype=np.float64)
    n2 = np.asarray(n2, dtype=np.float64)
    n3 = np.asarray(n3, dtype=np.float64)
    t0 = np.asarray(t0, dtype=np.float64)
    t1 = np.asarray(t1, dtype=np.float64)
    vertical = n0 + (n2 - n0) * t0
    horizontal = (n1 - n0) + (n3 - n2 - n1 + n0) * t0
    return vertical + horizontal * t1


@dataclass(frozen=True)
class PEArrayUsage:
    """Cycle and operation counts of one PE-array workload."""

    cycles: int
    macs: int
    bi_ops: int

    def merged_with(self, other: "PEArrayUsage") -> "PEArrayUsage":
        return PEArrayUsage(
            cycles=self.cycles + other.cycles,
            macs=self.macs + other.macs,
            bi_ops=self.bi_ops + other.bi_ops,
        )


class ReconfigurablePEArray:
    """Cycle/energy model of the reconfigurable PE array."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config

    # --------------------------------------------------------------- MM mode

    def matmul(self, vector: np.ndarray, tile: np.ndarray) -> np.ndarray:
        """Functional MM-mode computation: ``vector @ tile`` (output stationary)."""
        vector = np.asarray(vector, dtype=np.float64)
        tile = np.asarray(tile, dtype=np.float64)
        if vector.shape[-1] != tile.shape[0]:
            raise ValueError("inner dimensions do not match")
        return vector @ tile

    def mm_cycles(self, num_macs: int) -> int:
        """Cycles to execute *num_macs* multiply-accumulates in MM mode."""
        if num_macs < 0:
            raise ValueError("num_macs must be non-negative")
        return int(np.ceil(num_macs / self.config.macs_per_cycle))

    def mm_usage(self, num_macs: int) -> PEArrayUsage:
        """Usage record of an MM-mode workload."""
        return PEArrayUsage(cycles=self.mm_cycles(num_macs), macs=int(num_macs), bi_ops=0)

    # --------------------------------------------------------------- BA mode

    def ba_cycles(self, num_points: int, d_head: int, conflict_factor: float = 1.0) -> int:
        """Cycles of the fused MSGS + aggregation stage.

        ``num_points`` sampling points each produce ``d_head`` interpolated
        channels; the array finishes ``ba_parallel_points x
        ba_channels_per_cycle`` channel results per cycle.  ``conflict_factor``
        scales the cycle count when bank conflicts stall the pipeline
        (intra-level processing); inter-level processing uses 1.0.
        """
        if num_points < 0 or d_head <= 0:
            raise ValueError("invalid BA workload")
        if conflict_factor < 1.0:
            raise ValueError("conflict_factor must be >= 1")
        ideal = np.ceil(num_points * d_head / self.config.ba_samples_per_cycle)
        return int(np.ceil(ideal * conflict_factor))

    def ba_usage(self, num_points: int, d_head: int, conflict_factor: float = 1.0) -> PEArrayUsage:
        """Usage record of a BA-mode workload (BI + aggregation ops counted)."""
        return PEArrayUsage(
            cycles=self.ba_cycles(num_points, d_head, conflict_factor),
            macs=int(num_points) * d_head,  # aggregation multiply-accumulate
            bi_ops=int(num_points) * d_head,
        )

    # ---------------------------------------------------------------- energy

    def energy_j(self, usage: PEArrayUsage) -> float:
        """Dynamic energy of a usage record (joules)."""
        cfg = self.config
        return (usage.macs * cfg.mac_energy_pj + usage.bi_ops * cfg.bi_op_energy_pj) * 1e-12
