"""Energy model of the DEFA accelerator.

Energy is split the way Fig. 8 reports it:

* **DRAM** — external HBM2 traffic at 1.2 pJ/bit,
* **SRAM** — on-chip buffer accesses (CACTI-style per-byte energy),
* **logic** — PE array MACs/BI operators, the softmax unit and the mask /
  compression units.

The model consumes the :class:`~repro.hardware.dataflow.LayerSchedule` phase
records, so every ablation (fusion, reuse, banking) automatically feeds
through to the energy numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cacti import SRAMMacroModel
from repro.hardware.config import HardwareConfig
from repro.hardware.dataflow import LayerSchedule, Phase
from repro.hardware.dram import HBM2Model


@dataclass
class EnergyBreakdown:
    """Energy of one block (or one model) split by component, in joules."""

    dram_j: float = 0.0
    sram_j: float = 0.0
    logic_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.dram_j + self.sram_j + self.logic_j

    def fractions(self) -> dict[str, float]:
        """Fractional breakdown (the Fig. 8 pie chart)."""
        total = self.total_j
        if total == 0:
            return {"dram": 0.0, "sram": 0.0, "logic": 0.0}
        return {
            "dram": self.dram_j / total,
            "sram": self.sram_j / total,
            "logic": self.logic_j / total,
        }

    def merged_with(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram_j=self.dram_j + other.dram_j,
            sram_j=self.sram_j + other.sram_j,
            logic_j=self.logic_j + other.logic_j,
        )


class EnergyModel:
    """Compute energy breakdowns from layer schedules."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        self.dram = HBM2Model(
            bandwidth_gbs=config.dram_bandwidth_gbs,
            energy_pj_per_bit=config.dram_energy_pj_per_bit,
        )
        bank_bytes = config.fmap_buffer_kib * 1024 / config.num_banks
        self._sram_macro = SRAMMacroModel(
            capacity_bytes=max(bank_bytes, 1024),
            word_bits=config.precision_bits * 8,
            technology_nm=config.technology_nm,
        )

    @property
    def sram_energy_per_byte_pj(self) -> float:
        """On-chip SRAM access energy per byte."""
        return self._sram_macro.energy_per_byte_pj()

    def phase_energy(self, phase: Phase) -> EnergyBreakdown:
        """Energy of one schedule phase."""
        cfg = self.config
        dram_j = self.dram.access_energy_j(phase.dram_bytes)
        sram_j = phase.sram_bytes * self.sram_energy_per_byte_pj * 1e-12
        logic_j = (
            phase.macs * cfg.mac_energy_pj + phase.bi_ops * cfg.bi_op_energy_pj
        ) * 1e-12 + phase.extra_energy_j
        return EnergyBreakdown(dram_j=dram_j, sram_j=sram_j, logic_j=logic_j)

    def layer_energy(self, schedule: LayerSchedule) -> EnergyBreakdown:
        """Total energy of one block schedule."""
        total = EnergyBreakdown()
        for phase in schedule.phases:
            total = total.merged_with(self.phase_energy(phase))
        return total

    def msgs_memory_energy(self, schedule: LayerSchedule) -> EnergyBreakdown:
        """Memory-access energy of the MSGS + aggregation stage only.

        This is the denominator the paper uses for the Fig. 7(b) savings
        ("of the overall MSGS energy consumption in memory access"): DRAM and
        SRAM energy of the fmap fetches, BI reads and (if present) the
        sampling-value spill; logic energy is excluded.
        """
        total = EnergyBreakdown()
        for phase in schedule.msgs_phases():
            part = self.phase_energy(phase)
            total = total.merged_with(EnergyBreakdown(dram_j=part.dram_j, sram_j=part.sram_j))
        return total
