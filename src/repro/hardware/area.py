"""Area model of the DEFA accelerator (Fig. 8 left, Table 1).

The breakdown follows the paper's categories: the on-chip SRAM (the dominant
component — MSGS needs the multi-level bounded-range buffers), the PE array
plus softmax unit, and "others" (mask generators, compression units, the
controller and interconnect).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cacti import SRAMMacroModel
from repro.hardware.config import HardwareConfig

# 40 nm logic area coefficients (mm² per unit); calibrated so the base DEFA
# configuration lands near the published 2.63 mm².
MAC_AREA_MM2 = 0.00155
BI_OPERATOR_AREA_MM2 = 0.011
SOFTMAX_UNIT_AREA_MM2 = 0.095
MASK_UNIT_AREA_MM2 = 0.032
COMPRESSION_UNIT_AREA_MM2 = 0.026
CONTROLLER_AREA_MM2 = 0.055


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas in mm²."""

    pe_softmax_mm2: float
    sram_mm2: float
    others_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.pe_softmax_mm2 + self.sram_mm2 + self.others_mm2

    def fractions(self) -> dict[str, float]:
        """Fractional breakdown (the Fig. 8 area pie chart)."""
        total = self.total_mm2
        if total == 0:
            return {"pe_softmax": 0.0, "sram": 0.0, "others": 0.0}
        return {
            "pe_softmax": self.pe_softmax_mm2 / total,
            "sram": self.sram_mm2 / total,
            "others": self.others_mm2 / total,
        }


def area_model(config: HardwareConfig) -> AreaBreakdown:
    """Estimate the silicon area of a DEFA configuration."""
    tech_scale = (config.technology_nm / 40.0) ** 2

    # SRAM: fmap bounded-range banks, weight buffer and I/O buffers.
    bank_bytes = config.fmap_buffer_kib * 1024 / config.num_banks
    fmap_area = config.num_banks * SRAMMacroModel(
        capacity_bytes=max(bank_bytes, 512),
        word_bits=config.precision_bits * 8,
        technology_nm=config.technology_nm,
    ).area_mm2()
    weight_area = SRAMMacroModel(
        capacity_bytes=config.weight_buffer_kib * 1024,
        word_bits=config.precision_bits * config.lane_width,
        technology_nm=config.technology_nm,
    ).area_mm2()
    io_area = SRAMMacroModel(
        capacity_bytes=config.io_buffer_kib * 1024,
        word_bits=config.precision_bits * config.lane_width,
        technology_nm=config.technology_nm,
    ).area_mm2()
    sram_mm2 = fmap_area + weight_area + io_area

    # PE array + softmax.
    num_macs = config.num_lanes * config.lane_width
    num_bi = config.ba_parallel_points * config.ba_channels_per_cycle // 4
    pe_mm2 = tech_scale * (
        num_macs * MAC_AREA_MM2 + num_bi * BI_OPERATOR_AREA_MM2 + SOFTMAX_UNIT_AREA_MM2
    )

    # Others: mask generators, compression units, controller.
    others_mm2 = tech_scale * (
        2 * MASK_UNIT_AREA_MM2 + 2 * COMPRESSION_UNIT_AREA_MM2 + CONTROLLER_AREA_MM2
    )
    return AreaBreakdown(pe_softmax_mm2=pe_mm2, sram_mm2=sram_mm2, others_mm2=others_mm2)
