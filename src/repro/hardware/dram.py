"""External memory model: HBM2 at 256 GB/s and 1.2 pJ/bit.

The paper uses a moderate single-stack HBM2 interface as the external memory
system.  Only two properties matter to the evaluation: the time a transfer
occupies the interface (bandwidth-limited) and the energy it consumes
(per-bit).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HBM2Model:
    """Bandwidth / energy model of the HBM2 external memory."""

    bandwidth_gbs: float = 256.0
    energy_pj_per_bit: float = 1.2
    burst_bytes: int = 32
    """Minimum transfer granularity; small transfers are rounded up to this."""

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")
        if self.energy_pj_per_bit < 0:
            raise ValueError("energy must be non-negative")
        if self.burst_bytes <= 0:
            raise ValueError("burst_bytes must be positive")

    def effective_bytes(self, num_bytes: float, num_transfers: int | None = None) -> float:
        """Bytes actually moved, accounting for burst granularity.

        If *num_transfers* is given, each transfer is rounded up to the burst
        size (irregular gathers pay for full bursts even when only a few bytes
        are useful — the effect that makes MSGS so bandwidth-hungry on GPUs).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_transfers is None:
            return float(num_bytes)
        return float(max(num_bytes, num_transfers * self.burst_bytes))

    def transfer_time_s(self, num_bytes: float) -> float:
        """Time to move *num_bytes* at full bandwidth (seconds)."""
        return float(num_bytes) / (self.bandwidth_gbs * 1e9)

    def access_energy_j(self, num_bytes: float) -> float:
        """Energy to move *num_bytes* (joules)."""
        return float(num_bytes) * 8.0 * self.energy_pj_per_bit * 1e-12
