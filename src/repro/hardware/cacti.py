"""Analytical SRAM macro model (CACTI-style).

The paper uses CACTI to obtain the area and access energy of the on-chip SRAM.
CACTI itself is a large C++ tool; this module provides a small analytical
stand-in with the scaling behaviour that matters for the evaluation:

* area grows linearly with capacity plus a fixed periphery overhead per macro,
* read/write energy per access grows with the square root of the capacity
  (longer bit/word lines) and linearly with the word width.

The coefficients are calibrated for a 40 nm process so that the DEFA base
configuration lands near the published 2.63 mm² total area (SRAM ≈ 72 % of it)
and ~100 mW total power.  They are deliberately exposed as constructor
arguments so the sensitivity of every result to the memory model can be
explored.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SRAMMacroModel:
    """Analytical area / energy model of one SRAM macro.

    Parameters
    ----------
    capacity_bytes:
        Macro capacity in bytes.
    word_bits:
        Read/write port width in bits.
    technology_nm:
        Process node; coefficients are calibrated at 40 nm and scaled
        quadratically (area) / linearly (energy) for other nodes.
    """

    capacity_bytes: float
    word_bits: int = 96
    technology_nm: int = 40

    # Calibration coefficients (40 nm).
    _area_mm2_per_kib: float = 0.0034
    _area_overhead_mm2: float = 0.008
    _energy_base_pj: float = 2.2
    _energy_per_sqrt_kib_pj: float = 0.35
    _energy_per_bit_pj: float = 0.015
    _leakage_mw_per_kib: float = 0.0045

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.word_bits <= 0:
            raise ValueError("word_bits must be positive")

    @property
    def capacity_kib(self) -> float:
        """Capacity in KiB."""
        return self.capacity_bytes / 1024.0

    @property
    def _tech_scale_area(self) -> float:
        return (self.technology_nm / 40.0) ** 2

    @property
    def _tech_scale_energy(self) -> float:
        return self.technology_nm / 40.0

    def area_mm2(self) -> float:
        """Silicon area of the macro in mm²."""
        return self._tech_scale_area * (
            self._area_overhead_mm2 + self._area_mm2_per_kib * self.capacity_kib
        )

    def energy_per_access_pj(self) -> float:
        """Energy of one read or write access (pJ)."""
        return self._tech_scale_energy * (
            self._energy_base_pj
            + self._energy_per_sqrt_kib_pj * np.sqrt(self.capacity_kib)
            + self._energy_per_bit_pj * self.word_bits
        )

    def energy_per_byte_pj(self) -> float:
        """Energy per byte transferred through the port (pJ/B)."""
        return self.energy_per_access_pj() / (self.word_bits / 8.0)

    def leakage_mw(self) -> float:
        """Static leakage power of the macro (mW)."""
        return self._tech_scale_energy * self._leakage_mw_per_kib * self.capacity_kib
