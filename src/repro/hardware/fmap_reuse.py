"""Feature-map reuse analysis (Sec. 4.1, Fig. 7b).

When the reference point slides to the next pixel, the bounded-range windows
of consecutive queries overlap almost entirely; DEFA keeps the overlapping
pixels on chip instead of re-fetching them from DRAM.  This module quantifies
the effect by replaying a sampling trace:

* **without reuse** every (kept, in-bounds) bilinear neighbour access fetches
  that pixel's channels of the sampled head from DRAM and writes them into the
  SRAM banks;
* **with reuse** every *distinct* fmap pixel touched by the block is fetched
  exactly once (all channels) and stays resident while the reference point
  sweeps over the map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.grid_sample import SamplingTrace


@dataclass(frozen=True)
class ReuseReport:
    """DRAM / SRAM traffic of the MSGS fmap fetches with and without reuse."""

    total_neighbor_accesses: int
    """Kept, in-bounds bilinear neighbour accesses of the block."""

    unique_pixels_accessed: int
    """Distinct fmap pixels touched at least once."""

    dram_bytes_no_reuse: float
    dram_bytes_with_reuse: float
    sram_write_bytes_no_reuse: float
    sram_write_bytes_with_reuse: float

    @property
    def dram_traffic_saving(self) -> float:
        """Fractional DRAM traffic removed by fmap reuse."""
        if self.dram_bytes_no_reuse == 0:
            return 0.0
        return 1.0 - self.dram_bytes_with_reuse / self.dram_bytes_no_reuse

    @property
    def sram_write_saving(self) -> float:
        """Fractional SRAM write traffic removed by fmap reuse."""
        if self.sram_write_bytes_no_reuse == 0:
            return 0.0
        return 1.0 - self.sram_write_bytes_with_reuse / self.sram_write_bytes_no_reuse

    @property
    def reuse_factor(self) -> float:
        """Average number of times each fetched pixel is reused."""
        if self.unique_pixels_accessed == 0:
            return 0.0
        return self.total_neighbor_accesses / self.unique_pixels_accessed


def analyze_fmap_reuse(
    trace: SamplingTrace,
    d_model: int,
    num_heads: int,
    bytes_per_element: float,
    point_mask: np.ndarray | None = None,
) -> ReuseReport:
    """Compute the :class:`ReuseReport` of one MSDeformAttn block.

    Parameters
    ----------
    trace:
        Sampling trace of the block.
    d_model:
        Full channel dimension (fetched once per pixel when reuse is on).
    num_heads:
        Number of attention heads (each neighbour access without reuse fetches
        the ``d_model / num_heads`` channels of its head).
    bytes_per_element:
        Storage bytes per feature element (1.5 for INT12).
    point_mask:
        Optional PAP keep-mask; pruned points fetch nothing.
    """
    if d_model % num_heads != 0:
        raise ValueError("d_model must be divisible by num_heads")
    d_head = d_model // num_heads
    active = trace.valid
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != trace.valid.shape[:-1]:
            raise ValueError("point_mask shape mismatch")
        active = active & point_mask[..., None]

    accesses = int(np.count_nonzero(active))
    touched = trace.flat_indices[active]
    unique_pixels = int(np.unique(touched).size) if touched.size else 0

    bytes_no_reuse = accesses * d_head * bytes_per_element
    bytes_with_reuse = unique_pixels * d_model * bytes_per_element
    return ReuseReport(
        total_neighbor_accesses=accesses,
        unique_pixels_accessed=unique_pixels,
        dram_bytes_no_reuse=bytes_no_reuse,
        dram_bytes_with_reuse=bytes_with_reuse,
        sram_write_bytes_no_reuse=bytes_no_reuse,
        sram_write_bytes_with_reuse=bytes_with_reuse,
    )
