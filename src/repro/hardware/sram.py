"""Banked on-chip SRAM model.

The multi-scale bounded-range buffer of DEFA is organised as 16 single-port
banks so that the four neighbour pixels of four sampling points (16 pixels in
total) can be read in one cycle — *if* no two of them land in the same bank at
different addresses.  :class:`BankedSRAM` models capacity, per-access energy
(via the CACTI-like macro model) and the conflict-serialization cost of a set
of simultaneous accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.cacti import SRAMMacroModel


@dataclass
class AccessStats:
    """Accumulated access statistics of a banked SRAM."""

    reads: int = 0
    writes: int = 0
    conflict_cycles: int = 0
    issue_cycles: int = 0

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes

    @property
    def conflict_rate(self) -> float:
        """Extra cycles per issue caused by bank conflicts."""
        if self.issue_cycles == 0:
            return 0.0
        return self.conflict_cycles / self.issue_cycles


@dataclass
class BankedSRAM:
    """A multi-bank SRAM with conflict accounting.

    Parameters
    ----------
    num_banks:
        Number of independent banks.
    bank_capacity_bytes:
        Capacity of each bank.
    word_bits:
        Port width of each bank.
    technology_nm:
        Process node forwarded to the macro model.
    """

    num_banks: int = 16
    bank_capacity_bytes: float = 16 * 1024
    word_bits: int = 96
    technology_nm: int = 40
    stats: AccessStats = field(default_factory=AccessStats)

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.macro = SRAMMacroModel(
            capacity_bytes=self.bank_capacity_bytes,
            word_bits=self.word_bits,
            technology_nm=self.technology_nm,
        )

    # --------------------------------------------------------------- sizing

    @property
    def total_capacity_bytes(self) -> float:
        """Total capacity across all banks."""
        return self.num_banks * self.bank_capacity_bytes

    def area_mm2(self) -> float:
        """Total silicon area of all banks."""
        return self.num_banks * self.macro.area_mm2()

    def energy_per_access_pj(self) -> float:
        """Energy of one bank access."""
        return self.macro.energy_per_access_pj()

    def energy_per_byte_pj(self) -> float:
        """Energy per byte read or written."""
        return self.macro.energy_per_byte_pj()

    # -------------------------------------------------------------- accesses

    def record_bulk(self, reads: int = 0, writes: int = 0) -> None:
        """Record streaming (conflict-free) accesses."""
        if reads < 0 or writes < 0:
            raise ValueError("access counts must be non-negative")
        self.stats.reads += int(reads)
        self.stats.writes += int(writes)

    def issue_parallel_reads(self, banks: np.ndarray, addresses: np.ndarray) -> int:
        """Issue one group of parallel reads and return the cycles it takes.

        ``banks`` and ``addresses`` are 1-D arrays of equal length describing
        the accesses requested in the same cycle.  Requests to the same bank
        *and* the same address are served by a single access (broadcast);
        requests to the same bank at different addresses serialize.
        """
        banks = np.asarray(banks, dtype=np.int64).ravel()
        addresses = np.asarray(addresses, dtype=np.int64).ravel()
        if banks.shape != addresses.shape:
            raise ValueError("banks and addresses must have the same shape")
        if banks.size == 0:
            return 0
        if np.any((banks < 0) | (banks >= self.num_banks)):
            raise ValueError("bank index out of range")
        keys = banks * (addresses.max() + 1) + addresses
        unique_keys, key_banks = np.unique(keys, return_index=True)
        unique_banks = banks[key_banks]
        counts = np.bincount(unique_banks, minlength=self.num_banks)
        cycles = int(counts.max()) if counts.size else 0
        self.stats.reads += int(unique_keys.size)
        self.stats.issue_cycles += 1
        self.stats.conflict_cycles += max(0, cycles - 1)
        return max(cycles, 1)

    def access_energy_j(self, num_bytes: float) -> float:
        """Energy to move *num_bytes* through the banks (joules)."""
        return float(num_bytes) * self.energy_per_byte_pj() * 1e-12
