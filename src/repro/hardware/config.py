"""Hardware configuration of the DEFA accelerator.

The defaults reproduce the base design point of the paper (Table 1):
40 nm technology, 400 MHz, INT12 datapath, a 16-lane reconfigurable PE array,
16 SRAM banks for the multi-scale bounded-range buffers and a 256 GB/s HBM2
external memory at 1.2 pJ/bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HardwareConfig:
    """Design parameters of one DEFA accelerator instance."""

    # ----------------------------------------------------------- technology
    technology_nm: int = 40
    frequency_mhz: float = 400.0
    precision_bits: int = 12

    # ------------------------------------------------------------- PE array
    num_lanes: int = 16
    """Number of PE lanes; in MM mode each lane computes one output column group."""

    lane_width: int = 16
    """MACs per lane in MM mode (a 16-element vector times a 16x16 tile)."""

    ba_parallel_points: int = 4
    """Sampling points processed in parallel in BA (bilinear + aggregation) mode."""

    ba_channels_per_cycle: int = 16
    """Feature channels of each sampling point processed per cycle in BA mode."""

    softmax_throughput: int = 16
    """Attention probabilities normalized per cycle by the softmax unit."""

    # ----------------------------------------------------------------- SRAM
    num_banks: int = 16
    """Number of SRAM banks holding the bounded-range fmap windows."""

    fmap_buffer_kib: float = 288.0
    """Capacity of the multi-scale bounded-range fmap buffer (KiB)."""

    weight_buffer_kib: float = 112.0
    """Capacity of the weight buffer (KiB)."""

    io_buffer_kib: float = 96.0
    """Capacity of the query / output / probability buffers (KiB)."""

    # ----------------------------------------------------------------- DRAM
    dram_bandwidth_gbs: float = 256.0
    """HBM2 bandwidth in GB/s."""

    dram_energy_pj_per_bit: float = 1.2
    """HBM2 access energy in pJ/bit."""

    # --------------------------------------------------------------- energy
    mac_energy_pj: float = 0.6
    """Energy of one INT12 multiply-accumulate including local control (pJ)."""

    bi_op_energy_pj: float = 1.0
    """Energy of one bilinear-interpolation operator invocation (3 mul + 7 add, pJ)."""

    softmax_element_energy_pj: float = 0.5
    """Energy per attention probability normalized (pJ)."""

    mask_bit_energy_pj: float = 0.05
    """Energy per mask bit generated/decoded by the FWP/PAP units (pJ)."""

    @property
    def bytes_per_element(self) -> float:
        """Storage bytes of one INT-``precision_bits`` value."""
        return self.precision_bits / 8.0

    @property
    def clock_period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e3 / self.frequency_mhz

    @property
    def macs_per_cycle(self) -> int:
        """Multiply-accumulates per cycle in MM mode."""
        return self.num_lanes * self.lane_width

    @property
    def peak_gops(self) -> float:
        """Peak arithmetic throughput in GOPS (2 ops per MAC)."""
        return 2.0 * self.macs_per_cycle * self.frequency_mhz * 1e6 / 1e9

    @property
    def ba_samples_per_cycle(self) -> float:
        """Sampling-point channel results produced per cycle in BA mode."""
        return self.ba_parallel_points * self.ba_channels_per_cycle

    @property
    def total_sram_kib(self) -> float:
        """Total on-chip SRAM capacity in KiB."""
        return self.fmap_buffer_kib + self.weight_buffer_kib + self.io_buffer_kib

    def scaled_to(self, target_tops: float) -> "HardwareConfig":
        """Return a configuration scaled up to roughly *target_tops* peak throughput.

        The paper scales DEFA to 13.3 TOPS and 40 TOPS to match the peak
        throughput of the RTX 2080Ti and 3090Ti; scaling multiplies the PE
        lanes, BA parallelism and buffer capacities while keeping frequency
        and technology fixed.
        """
        if target_tops <= 0:
            raise ValueError("target_tops must be positive")
        factor = target_tops * 1e3 / self.peak_gops
        lane_scale = max(1, int(round(factor**0.5)))
        width_scale = max(1, int(round(factor / lane_scale)))
        return replace(
            self,
            num_lanes=self.num_lanes * lane_scale,
            lane_width=self.lane_width * width_scale,
            ba_parallel_points=self.ba_parallel_points * lane_scale,
            ba_channels_per_cycle=self.ba_channels_per_cycle * width_scale,
            softmax_throughput=self.softmax_throughput * lane_scale,
            num_banks=self.num_banks * lane_scale,
            fmap_buffer_kib=self.fmap_buffer_kib * lane_scale,
            weight_buffer_kib=self.weight_buffer_kib * width_scale,
            io_buffer_kib=self.io_buffer_kib * lane_scale,
            dram_bandwidth_gbs=self.dram_bandwidth_gbs * factor**0.5,
        )
