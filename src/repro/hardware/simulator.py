"""Top-level DEFA performance/energy simulator.

:class:`DEFASimulator` glues the pieces together: it turns pruning results
(from the algorithm level) or summary ratios into :class:`LayerWorkload`
records, builds the block schedule, and evaluates cycles, runtime, memory
traffic, energy and power for a whole encoder.  The ablation switches
(operator fusion, fmap reuse, banking scheme) and the throughput scaling used
for the GPU comparison are all exposed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.encoder_runner import DEFAEncoderResult
from repro.core.pipeline import DEFAAttentionOutput
from repro.hardware.banking import BankingScheme, simulate_bank_conflicts
from repro.hardware.config import HardwareConfig
from repro.hardware.dataflow import LayerSchedule, LayerWorkload, build_layer_schedule
from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.workloads.specs import WorkloadSpec


@dataclass
class LayerSimulationReport:
    """Performance/energy results of one MSDeformAttn block."""

    schedule: LayerSchedule
    compute_cycles: int
    compute_time_s: float
    dram_time_s: float
    time_s: float
    energy: EnergyBreakdown
    dense_ops: int
    """Dense-equivalent operation count (2 x MACs of the unpruned block)."""

    @property
    def effective_gops(self) -> float:
        """Dense-equivalent throughput (counts pruned-away work as done)."""
        return self.dense_ops / self.time_s / 1e9 if self.time_s > 0 else 0.0

    @property
    def dram_bytes(self) -> float:
        return self.schedule.dram_bytes

    @property
    def sram_bytes(self) -> float:
        return self.schedule.sram_bytes


@dataclass
class ModelSimulationReport:
    """Aggregated results over all MSDeformAttn blocks of an encoder."""

    layers: list[LayerSimulationReport] = field(default_factory=list)

    @property
    def time_s(self) -> float:
        return float(sum(layer.time_s for layer in self.layers))

    @property
    def energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for layer in self.layers:
            total = total.merged_with(layer.energy)
        return total

    @property
    def dense_ops(self) -> int:
        return int(sum(layer.dense_ops for layer in self.layers))

    @property
    def effective_tops(self) -> float:
        """Dense-equivalent throughput in TOPS."""
        return self.dense_ops / self.time_s / 1e12 if self.time_s > 0 else 0.0

    @property
    def chip_power_w(self) -> float:
        """Average on-chip power (SRAM + logic, excluding DRAM) during execution."""
        if self.time_s == 0:
            return 0.0
        chip_energy = sum(layer.energy.sram_j + layer.energy.logic_j for layer in self.layers)
        return chip_energy / self.time_s

    @property
    def total_power_w(self) -> float:
        """Average power including DRAM access energy."""
        return self.energy.total_j / self.time_s if self.time_s > 0 else 0.0

    @property
    def dram_bytes(self) -> float:
        return float(sum(layer.dram_bytes for layer in self.layers))

    @property
    def energy_per_inference_j(self) -> float:
        """Total energy of the simulated blocks (one inference worth)."""
        return self.energy.total_j


class DEFASimulator:
    """Cycle-approximate simulator of the DEFA accelerator.

    Parameters
    ----------
    config:
        Hardware configuration (defaults to the paper's base design point).
    fuse_msgs_aggregation, fmap_reuse, banking:
        Ablation switches reproducing the paper's hardware experiments.
    """

    def __init__(
        self,
        config: HardwareConfig | None = None,
        fuse_msgs_aggregation: bool = True,
        fmap_reuse: bool = True,
        banking: BankingScheme | str = BankingScheme.INTER_LEVEL,
    ) -> None:
        self.config = config or HardwareConfig()
        self.fuse_msgs_aggregation = fuse_msgs_aggregation
        self.fmap_reuse = fmap_reuse
        self.banking = BankingScheme(banking)
        self.energy_model = EnergyModel(self.config)

    # ------------------------------------------------------------ workloads

    def layer_workload_from_defa(self, output: DEFAAttentionOutput) -> LayerWorkload:
        """Build a :class:`LayerWorkload` from a detailed DEFA attention output.

        The bank-conflict factors of both banking schemes are measured by
        replaying the block's actual sampling trace.
        """
        stats = output.stats
        # Sparse-path outputs carry a compacted trace; the simulator replays
        # every point, so materialize the full trace on demand.
        trace = output.dense_trace()
        n_q, n_h, n_l, n_p = output.point_mask.shape
        active = trace.valid & output.point_mask[..., None]
        neighbor_accesses = int(np.count_nonzero(active))
        touched = trace.flat_indices[active]
        unique_pixels = int(np.unique(touched).size) if touched.size else 0

        intra = simulate_bank_conflicts(
            trace, BankingScheme.INTRA_LEVEL, point_mask=output.point_mask, num_banks=self.config.num_banks
        )
        inter = simulate_bank_conflicts(
            trace, BankingScheme.INTER_LEVEL, point_mask=output.point_mask, num_banks=self.config.num_banks
        )
        d_model = output.output.shape[1]
        return LayerWorkload(
            num_queries=stats.num_queries,
            num_tokens=stats.num_tokens,
            d_model=d_model,
            num_heads=n_h,
            num_levels=n_l,
            num_points=n_p,
            points_kept=stats.points_kept,
            pixels_kept=stats.pixels_kept,
            unique_pixels_accessed=unique_pixels,
            neighbor_accesses=neighbor_accesses,
            intra_conflict_factor=max(1.0, intra.cycles_per_group),
            inter_conflict_factor=max(1.0, inter.cycles_per_group),
        )

    def workloads_from_encoder_result(self, result: DEFAEncoderResult) -> list[LayerWorkload]:
        """Layer workloads for every block of a detailed encoder run."""
        if not result.layer_outputs:
            raise ValueError(
                "encoder result has no detailed layer outputs; run the encoder "
                "with collect_details=True"
            )
        return [self.layer_workload_from_defa(out) for out in result.layer_outputs]

    def workloads_from_ratios(
        self,
        spec: WorkloadSpec,
        point_keep_ratio: float,
        pixel_keep_ratio: float,
        unique_pixel_ratio: float = 0.6,
        intra_conflict_factor: float = 3.0,
        num_layers: int | None = None,
    ) -> list[LayerWorkload]:
        """Analytic layer workloads for paper-scale projections.

        The first block never has an incoming FWP mask, so its pixel keep
        ratio is 1; subsequent blocks use *pixel_keep_ratio*.
        """
        num_layers = num_layers or spec.model.num_encoder_layers
        workloads = []
        for layer in range(num_layers):
            workloads.append(
                LayerWorkload.from_ratios(
                    num_queries=spec.num_queries,
                    num_tokens=spec.num_tokens,
                    d_model=spec.model.d_model,
                    num_heads=spec.model.num_heads,
                    num_levels=spec.model.num_levels,
                    num_points=spec.model.num_points,
                    point_keep_ratio=point_keep_ratio,
                    pixel_keep_ratio=1.0 if layer == 0 else pixel_keep_ratio,
                    unique_pixel_ratio=unique_pixel_ratio,
                    intra_conflict_factor=intra_conflict_factor,
                )
            )
        return workloads

    # ------------------------------------------------------------ simulation

    def simulate_layer(self, workload: LayerWorkload) -> LayerSimulationReport:
        """Simulate one MSDeformAttn block."""
        schedule = build_layer_schedule(
            workload,
            self.config,
            fuse_msgs_aggregation=self.fuse_msgs_aggregation,
            fmap_reuse=self.fmap_reuse,
            banking=self.banking,
        )
        compute_cycles = schedule.compute_cycles
        compute_time = compute_cycles * self.config.clock_period_ns * 1e-9
        dram_time = schedule.dram_bytes / (self.config.dram_bandwidth_gbs * 1e9)
        time_s = max(compute_time, dram_time)
        energy = self.energy_model.layer_energy(schedule)
        dense_workload = LayerWorkload.dense(
            num_queries=workload.num_queries,
            num_tokens=workload.num_tokens,
            d_model=workload.d_model,
            num_heads=workload.num_heads,
            num_levels=workload.num_levels,
            num_points=workload.num_points,
        )
        dense_schedule = build_layer_schedule(dense_workload, self.config)
        dense_ops = 2 * dense_schedule.total_macs + dense_schedule.total_bi_ops * 8
        return LayerSimulationReport(
            schedule=schedule,
            compute_cycles=compute_cycles,
            compute_time_s=compute_time,
            dram_time_s=dram_time,
            time_s=time_s,
            energy=energy,
            dense_ops=dense_ops,
        )

    def simulate_layers(self, workloads: list[LayerWorkload]) -> ModelSimulationReport:
        """Simulate a sequence of blocks (one encoder's MSDeformAttn layers)."""
        return ModelSimulationReport(layers=[self.simulate_layer(w) for w in workloads])

    def simulate_encoder_result(self, result: DEFAEncoderResult) -> ModelSimulationReport:
        """Simulate the blocks of a detailed algorithm-level encoder run."""
        return self.simulate_layers(self.workloads_from_encoder_result(result))

    def simulate_from_ratios(
        self,
        spec: WorkloadSpec,
        point_keep_ratio: float,
        pixel_keep_ratio: float,
        unique_pixel_ratio: float = 0.6,
        intra_conflict_factor: float = 3.0,
        num_layers: int | None = None,
    ) -> ModelSimulationReport:
        """Simulate a workload described only by summary pruning ratios."""
        workloads = self.workloads_from_ratios(
            spec,
            point_keep_ratio=point_keep_ratio,
            pixel_keep_ratio=pixel_keep_ratio,
            unique_pixel_ratio=unique_pixel_ratio,
            intra_conflict_factor=intra_conflict_factor,
            num_layers=num_layers,
        )
        return self.simulate_layers(workloads)
