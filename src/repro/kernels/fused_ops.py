"""Plan-aware fused projection helpers for the DEFA pipeline.

The quantized projections dominate the non-gather wall clock of the sparse
encoder: every :meth:`~repro.quant.qmodules.QuantizedLinear.forward_rows`
call makes ~8 full passes over its activation block (float64 upcast, divide,
round, clip, int32 round-trip, rescale, matmul, bias), each allocating a
fresh temporary.  The helpers here execute the same projections through an
:class:`~repro.kernels.plan.ExecutionPlan` arena: row gathers via
``np.take(out=...)``, fake quantization through a reused float64 scratch
(see :func:`repro.quant.quantizer.fake_quantize`), matmul + bias in-place
into a reused output buffer.

Every helper is **bit-identical** to the module method it replaces:

* the dynamic activation scale is ``max(x.max(), -x.min())``, which equals
  ``np.max(np.abs(x))`` exactly (float negation and abs are exact) without
  materialising ``|x|``;
* the in-place quantize chain preserves the float64 op order (the int32
  round-trip it skips maps integral in-range float64 values to themselves);
* ``np.matmul(out=...)`` issues the same BLAS call for the same row count.

Per-channel activation specs fall back to the module's own scale computation
(no configuration in this repo uses them for activations, but correctness
must not depend on that).

Every helper accepts ``backend=None``: a backend exposing
``fake_quantize_into`` (the ``"compiled"`` backend's single-pass C chain)
takes over the quantize step when it supports the input, bit-identically;
otherwise — unsupported layout, numpy-only backend — the in-place numpy
chain runs as before, and the float64 scratch is only allocated on that
path.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.plan import ExecutionPlan
from repro.nn.modules import Linear
from repro.quant.qmodules import QuantizedLinear
from repro.quant.quantizer import fake_quantize

FLOAT_DTYPE = np.float32

__all__ = [
    "max_abs",
    "project_into",
    "project_rows_into",
    "project_batched_into",
    "project_rows_batched_into",
]


def max_abs(x: np.ndarray, axis=None, keepdims: bool = False):
    """``np.max(np.abs(x), axis)`` without materialising ``|x|``.

    Exactly equal for any non-NaN floats: ``max|x| = max(max(x), -min(x))``.
    """
    if x.size == 0:
        return 0.0 if axis is None else np.zeros((), dtype=x.dtype)
    hi = x.max(axis=axis, keepdims=keepdims)
    lo = x.min(axis=axis, keepdims=keepdims)
    result = np.maximum(hi, -lo)
    return float(result) if axis is None else result


def _quantize_into(
    proj: QuantizedLinear,
    x: np.ndarray,
    scale_max_abs,
    plan: ExecutionPlan,
    name: str,
    backend=None,
) -> np.ndarray:
    """Fake-quantized activations of *x* in a reused float32 buffer."""
    x_q = plan.buffer(f"{name}.xq", x.shape, FLOAT_DTYPE)
    fq_into = getattr(backend, "fake_quantize_into", None)
    if fq_into is not None:
        result = fq_into(x, proj.activation_spec, scale_max_abs, x_q)
        if result is not None:
            return result
    scratch = plan.buffer(f"{name}.q64", x.shape, np.float64)
    fake_quantize(x, proj.activation_spec, max_abs=scale_max_abs, out=x_q, scratch=scratch)
    return x_q


def _matmul_bias_into(
    weight: np.ndarray, bias: np.ndarray | None, x: np.ndarray, out: np.ndarray
) -> np.ndarray:
    np.matmul(x, weight, out=out)
    if bias is not None:
        out += bias
    return out


def _full_array_scale(proj: QuantizedLinear, x: np.ndarray):
    """The dynamic activation scale :meth:`QuantizedLinear.forward` derives.

    ``None`` signals an unsupported (per-channel) configuration — the caller
    falls back to the module method.
    """
    if proj.activation_max_abs is not None:
        return proj.activation_max_abs
    if proj.activation_spec.per_channel:
        return None
    return max_abs(x)


def project_into(
    proj: Linear | QuantizedLinear,
    x: np.ndarray,
    plan: ExecutionPlan,
    name: str,
    backend=None,
) -> np.ndarray:
    """``proj(x)`` into a plan buffer — the full-array (dense) projection."""
    out = plan.buffer(f"{name}.out", x.shape[:-1] + (proj.out_features,), FLOAT_DTYPE)
    if isinstance(proj, QuantizedLinear):
        scale = _full_array_scale(proj, x)
        if scale is None:  # per-channel activations: defer to the module
            out[...] = proj.forward(x)
            return out
        x_q = _quantize_into(proj, x, scale, plan, name, backend=backend)
        return _matmul_bias_into(proj.quantized_weight, proj.inner.bias, x_q, out)
    return _matmul_bias_into(proj.weight, proj.bias, x, out)


def project_rows_into(
    proj: Linear | QuantizedLinear,
    x: np.ndarray,
    rows: np.ndarray,
    plan: ExecutionPlan,
    name: str,
    backend=None,
) -> np.ndarray:
    """``proj.forward_rows(x, rows)`` into a plan buffer (single image).

    Quantized projections keep the *full-array* dynamic activation scale, as
    in :meth:`QuantizedLinear.forward_rows`, so the returned rows equal the
    dense projection's rows exactly.
    """
    out = plan.buffer(f"{name}.out", (rows.shape[0], proj.out_features), FLOAT_DTYPE)
    if isinstance(proj, QuantizedLinear):
        scale = _full_array_scale(proj, x)
        if scale is None:  # per-channel fallback gathers internally
            out[...] = proj.forward_rows(x, rows)
            return out
        x_rows = plan.take(f"{name}.rows", x, rows, axis=0)
        x_q = _quantize_into(proj, x_rows, scale, plan, name, backend=backend)
        return _matmul_bias_into(proj.quantized_weight, proj.inner.bias, x_q, out)
    x_rows = plan.take(f"{name}.rows", x, rows, axis=0)
    return _matmul_bias_into(proj.weight, proj.bias, x_rows, out)


def project_batched_into(
    proj: Linear | QuantizedLinear,
    x: np.ndarray,
    plan: ExecutionPlan,
    name: str,
    backend=None,
) -> np.ndarray:
    """``proj.forward_batched(x)`` / ``proj(x)`` into a plan buffer.

    Dynamic activation quantization stays *per image* (one scale per batch
    element, exactly the scales :meth:`QuantizedLinear.forward_batched`
    derives).
    """
    out = plan.buffer(f"{name}.out", x.shape[:-1] + (proj.out_features,), FLOAT_DTYPE)
    if isinstance(proj, QuantizedLinear):
        if proj.activation_spec.per_channel and proj.activation_max_abs is None:
            out[...] = proj.forward_batched(x)
            return out
        scale = proj.activation_max_abs
        if scale is None:
            reduce_axes = tuple(range(1, x.ndim))
            scale = max_abs(x, axis=reduce_axes, keepdims=True)
        x_q = _quantize_into(proj, x, scale, plan, name, backend=backend)
        return _matmul_bias_into(proj.quantized_weight, proj.inner.bias, x_q, out)
    return _matmul_bias_into(proj.weight, proj.bias, x, out)


def project_rows_batched_into(
    proj: Linear | QuantizedLinear,
    x: np.ndarray,
    flat_rows: np.ndarray,
    plan: ExecutionPlan,
    name: str,
    backend=None,
) -> np.ndarray:
    """``proj.forward_rows_batched(x, flat_rows)`` into a plan buffer.

    ``x`` has shape ``(B, N, D)`` and ``flat_rows`` indexes the flattened
    ``(B * N)`` row axis; each selected row is quantized with the dynamic
    scale of its own image, exactly as the module method does.
    """
    batch, n_rows = x.shape[0], x.shape[1]
    flat = x.reshape(batch * n_rows, x.shape[-1])
    out = plan.buffer(f"{name}.out", (flat_rows.shape[0], proj.out_features), FLOAT_DTYPE)
    if isinstance(proj, QuantizedLinear):
        if proj.activation_spec.per_channel and proj.activation_max_abs is None:
            out[...] = proj.forward_rows_batched(x, flat_rows)  # gathers internally
            return out
        scale = proj.activation_max_abs
        if scale is None:
            image = np.asarray(flat_rows, dtype=np.int64) // n_rows
            per_image = max_abs(x, axis=(1, 2))  # (B,)
            scale = per_image[image][:, None]
        x_rows = plan.take(f"{name}.rows", flat, flat_rows, axis=0)
        x_q = _quantize_into(proj, x_rows, scale, plan, name, backend=backend)
        return _matmul_bias_into(proj.quantized_weight, proj.inner.bias, x_q, out)
    x_rows = plan.take(f"{name}.rows", flat, flat_rows, axis=0)
    return _matmul_bias_into(proj.weight, proj.bias, x_rows, out)
