"""Zero-allocation execution plans: a capacity-growing named buffer arena.

Steady-state encoder forwards re-allocate every intermediate on every block
(compact gathers, projection outputs, FFN hidden buffers, masks).  On a
single-core NumPy substrate those allocations are not free: arrays above the
malloc mmap threshold are returned to the OS on free, so every block pays
mmap + page-fault + TLB churn for hundreds of megabytes of temporaries.  An
:class:`ExecutionPlan` removes that traffic: each named intermediate is
allocated once at its high-water-mark capacity and reused across blocks and
across :class:`~repro.engine.batching.BatchRunner` work items.

Usage and lifetime rules
------------------------

* ``plan.buffer(name, shape, dtype)`` returns an array view of exactly
  ``shape``.  The *content* of a named buffer stays valid only until the next
  ``buffer()`` request with the same name — a name identifies one logical
  intermediate of the execution, not a storage slot to hold on to.
* Buffers grow monotonically: a request larger than the cached capacity
  reallocates (counted in :attr:`grows`), a smaller one reuses the prefix.
  After one warm forward per shape signature the plan is at its high-water
  mark and subsequent forwards perform no large allocations.
* Plans are keyed by the caller on ``(shape-signature, batch-size)`` (see
  :meth:`repro.core.encoder_runner.DEFAEncoderRunner.execution_plan`): a
  shape-signature change means a *new* plan, never a resize-in-place of a
  live one, so two signatures interleaved (the BatchRunner regime) each keep
  their own warm arena.
* Nothing returned to an API caller may alias a plan buffer (results must
  survive the next forward); callers copy the final output out of the arena.
  The aliasing-corruption test in ``tests/test_kernels.py`` pins this.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ExecutionPlan"]


class ExecutionPlan:
    """Named-buffer arena for the per-block intermediates of one runner.

    Not thread-safe (neither is the NumPy substrate it serves); one plan
    belongs to one runner and one shape signature.
    """

    def __init__(self, max_buffer_bytes: int | None = None) -> None:
        self._buffers: dict[tuple[str, np.dtype], np.ndarray] = {}
        self.max_buffer_bytes = max_buffer_bytes
        """Per-buffer retention cap: requests larger than this are served
        fresh and *not* cached, so a long-lived arena (e.g. the fused
        backend's plan-less scratch) never pins a one-off large workload's
        high-water mark for the process lifetime.  ``None`` (the default for
        runner-owned plans, whose lifetime matches their workload) retains
        everything."""

        self.hits = 0
        """Requests served from an existing buffer without allocating."""
        self.grows = 0
        """Requests that had to allocate (first use, capacity growth, or an
        over-cap transient)."""

    def buffer(self, name: str, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """An uninitialised array of exactly *shape*, reusing cached capacity.

        The returned array is a view into the arena; its previous content is
        arbitrary (use :meth:`zeros` / :meth:`full` for initialised buffers).
        """
        dt = np.dtype(dtype)
        size = int(np.prod(shape)) if shape else 1
        if self.max_buffer_bytes is not None and size * dt.itemsize > self.max_buffer_bytes:
            self.grows += 1
            return np.empty(shape, dtype=dt)  # transient: never retained
        key = (name, dt)
        flat = self._buffers.get(key)
        if flat is None or flat.size < size:
            flat = np.empty(max(size, 1), dtype=dt)
            self._buffers[key] = flat
            self.grows += 1
        else:
            self.hits += 1
        return flat[:size].reshape(shape)

    def zeros(self, name: str, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """A zero-filled buffer (memset of reused capacity, no allocation)."""
        out = self.buffer(name, shape, dtype)
        out.fill(0)
        return out

    def take(
        self, name: str, source: np.ndarray, indices: np.ndarray, axis: int = 0
    ) -> np.ndarray:
        """``np.take(source, indices, axis)`` gathered into a plan buffer."""
        shape = (
            source.shape[:axis] + np.asarray(indices).shape + source.shape[axis + 1 :]
        )
        out = self.buffer(name, shape, source.dtype)
        np.take(source, indices, axis=axis, out=out)
        return out

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    @property
    def allocated_bytes(self) -> int:
        """Total arena capacity in bytes (the steady-state footprint)."""
        return int(sum(b.nbytes for b in self._buffers.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionPlan(buffers={self.num_buffers}, "
            f"bytes={self.allocated_bytes}, hits={self.hits}, grows={self.grows})"
        )
