"""Kernel backends and zero-allocation execution plans (PR 5).

Public surface:

* :func:`get_backend` / :func:`set_backend` / :func:`resolve_backend` /
  :func:`use_backend` — backend selection (``"reference"`` = the PR 4
  kernels unchanged, ``"fused"`` = bit-identical single-pass kernels with
  buffer reuse, ``"compiled"`` = the fused hot loops as C kernels when the
  optional extension is built, falling back to ``"fused"`` otherwise),
  initialised from ``REPRO_KERNEL_BACKEND``.
* :data:`COMPILED_AVAILABLE` — whether the compiled kernel library loaded;
  gate for tests/benchmarks that exercise the ``"compiled"`` backend
  specifically rather than its fallback.
* :class:`ExecutionPlan` — the named-buffer arena that makes steady-state
  encoder forwards allocation-free (see :mod:`repro.kernels.plan` for the
  lifetime rules).
* :mod:`repro.kernels.fused_ops` — plan-aware fused projection / LayerNorm /
  fake-quantize helpers used by the pipeline when a plan is active.
* :class:`ExecutionOptions` / :func:`normalize_execution_options` — the one
  frozen object bundling the execution knobs (``sparse_mode``, kernel
  backend, detail collection, query-pruning enablement) threaded through
  the whole stack since PR 8, and its single legacy-keyword normalization
  point (see :mod:`repro.kernels.options`).
"""

from repro.kernels.compiled_backend import COMPILED_AVAILABLE
from repro.kernels.options import (
    ExecutionOptions,
    normalize_execution_options,
    reset_deprecation_warnings,
)
from repro.kernels.plan import ExecutionPlan
from repro.kernels.registry import (
    DEFAULT_BACKEND_ENV,
    KERNEL_BACKENDS,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "COMPILED_AVAILABLE",
    "DEFAULT_BACKEND_ENV",
    "ExecutionOptions",
    "ExecutionPlan",
    "KERNEL_BACKENDS",
    "get_backend",
    "normalize_execution_options",
    "reset_deprecation_warnings",
    "resolve_backend",
    "set_backend",
    "use_backend",
]
