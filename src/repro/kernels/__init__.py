"""Kernel backends and zero-allocation execution plans (PR 5).

Public surface:

* :func:`get_backend` / :func:`set_backend` / :func:`resolve_backend` /
  :func:`use_backend` — backend selection (``"reference"`` = the PR 4
  kernels unchanged, ``"fused"`` = bit-identical single-pass kernels with
  buffer reuse, ``"compiled"`` = the fused hot loops as C kernels when the
  optional extension is built, falling back to ``"fused"`` otherwise),
  initialised from ``REPRO_KERNEL_BACKEND``.
* :data:`COMPILED_AVAILABLE` — whether the compiled kernel library loaded;
  gate for tests/benchmarks that exercise the ``"compiled"`` backend
  specifically rather than its fallback.
* :class:`ExecutionPlan` — the named-buffer arena that makes steady-state
  encoder forwards allocation-free (see :mod:`repro.kernels.plan` for the
  lifetime rules).
* :mod:`repro.kernels.fused_ops` — plan-aware fused projection / LayerNorm /
  fake-quantize helpers used by the pipeline when a plan is active.
* :class:`ExecutionOptions` / :func:`normalize_execution_options` — the one
  frozen object bundling the execution knobs (``sparse_mode``, kernel
  backend, detail collection, query-pruning enablement, machine profile)
  threaded through the whole stack since PR 8, and its single
  legacy-keyword normalization point (see :mod:`repro.kernels.options`).
* :class:`MachineProfile` / :class:`DispatchThresholds` /
  :func:`get_active_profile` / :func:`set_active_profile` /
  :func:`resolve_profile` / :func:`use_profile` / :func:`calibrate` —
  host-calibrated auto-dispatch profiles (PR 9): the ``SPARSE_AUTO_*``
  crossover thresholds as versioned, schema-checked JSON data, with a sweep
  harness to calibrate them per host and per backend, initialised from
  ``REPRO_MACHINE_PROFILE`` (the committed reference profile when unset, so
  dispatch stays bit-deterministic by default — see
  :mod:`repro.kernels.calibration`).
"""

# Import order is load-bearing: every leaf surface (registry, calibration,
# options, plan) must bind into this namespace *before* compiled_backend,
# whose import chain (quant -> nn.msdeform_attn) re-enters this package and
# reads ExecutionOptions from the partially initialized module.
from repro.kernels.registry import (
    DEFAULT_BACKEND_ENV,
    KERNEL_BACKENDS,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.kernels.calibration import (
    PROFILE_ENV,
    CalibrationGrid,
    DispatchThresholds,
    MachineProfile,
    calibrate,
    get_active_profile,
    reference_profile,
    resolve_profile,
    set_active_profile,
    use_profile,
)
from repro.kernels.options import (
    ExecutionOptions,
    normalize_execution_options,
    reset_deprecation_warnings,
)
from repro.kernels.plan import ExecutionPlan
from repro.kernels.compiled_backend import COMPILED_AVAILABLE

__all__ = [
    "COMPILED_AVAILABLE",
    "DEFAULT_BACKEND_ENV",
    "PROFILE_ENV",
    "CalibrationGrid",
    "DispatchThresholds",
    "ExecutionOptions",
    "ExecutionPlan",
    "KERNEL_BACKENDS",
    "MachineProfile",
    "calibrate",
    "get_active_profile",
    "get_backend",
    "normalize_execution_options",
    "reference_profile",
    "reset_deprecation_warnings",
    "resolve_backend",
    "resolve_profile",
    "set_backend",
    "set_active_profile",
    "use_backend",
    "use_profile",
]
