/* Compiled DEFA hot-path kernels (PR 7).
 *
 * C implementations of the four true hot loops of the sparse encoder —
 * the flat neighbour gather, the 4-neighbour bilinear weight combine, the
 * segment sum and the fused fake-quantize chain — fused into two entry
 * points.  Loaded via ctypes by repro/kernels/compiled_backend.py; there is
 * deliberately no Python C-API dependency so the library builds with any C
 * toolchain and degrades to COMPILED_AVAILABLE = False when none exists.
 *
 * Bit-identity contract (the "compiled" backend is gated at exactly 0.0
 * drift against "fused", see benchmarks/baselines/README.md):
 *
 * - The gather/combine order replicates the fused backend exactly:
 *   w = (weights * valid) * attn as float32, then a sequential float32
 *   accumulation over the four neighbours (numpy's einsum "kfc,kf->kc"
 *   order for a length-4 contraction).
 * - The segment sum replicates np.add.reduceat: each segment sums as
 *   `first row + pairwise_sum(rest)`, where pairwise_sum is numpy's
 *   8-way-unrolled pairwise algorithm (sequential below 8 rows, unrolled
 *   partial sums up to the 128-row block size, recursive halving above).
 * - Segments are split at the same 8 MiB chunk boundaries as both numpy
 *   backends (_SPARSE_CONTRIB_BUDGET_BYTES), flushing a partial sum into
 *   the output row at each boundary in chronological order.
 * - The fake-quantize chain is elementwise float64 divide -> rint ->
 *   clip -> rescale -> float32 store, the exact op sequence of
 *   repro.quant.quantizer.fake_quantize's in-place path.
 *
 * Must be compiled with FP contraction off (-ffp-contract=off) — a fused
 * multiply-add would change the rounding of the combine loop.
 */

#include <stdint.h>
#include <string.h>
#include <math.h>

/* Bumped whenever a signature below changes; the ctypes loader refuses a
 * stale library rather than calling it with a mismatched ABI. */
#define DEFA_KERNELS_ABI 1

int64_t
defa_kernels_abi(void)
{
    return DEFA_KERNELS_ABI;
}

/* numpy pairwise summation over the `n` contiguous (w,)-rows at `rows`,
 * written into `res`.  `r8` is 8*w scratch for the unrolled partial sums,
 * `stack` provides one w-sized scratch row per recursion level. */
static void
pairwise_rows(const float *rows, int64_t n, int64_t w,
              float *res, float *r8, float *stack)
{
    if (n < 8) {
        for (int64_t c = 0; c < w; ++c) res[c] = 0.0f;
        for (int64_t i = 0; i < n; ++i) {
            const float *a = rows + i * w;
            for (int64_t c = 0; c < w; ++c) res[c] += a[c];
        }
    }
    else if (n <= 128) {
        memcpy(r8, rows, (size_t)(8 * w) * sizeof(float));
        int64_t i = 8;
        for (; i < n - (n % 8); i += 8) {
            for (int j = 0; j < 8; ++j) {
                const float *a = rows + (i + j) * w;
                float *r = r8 + j * w;
                for (int64_t c = 0; c < w; ++c) r[c] += a[c];
            }
        }
        for (int64_t c = 0; c < w; ++c)
            res[c] = ((r8[c] + r8[w + c]) + (r8[2 * w + c] + r8[3 * w + c]))
                   + ((r8[4 * w + c] + r8[5 * w + c]) + (r8[6 * w + c] + r8[7 * w + c]));
        for (; i < n; ++i) {
            const float *a = rows + i * w;
            for (int64_t c = 0; c < w; ++c) res[c] += a[c];
        }
    }
    else {
        int64_t n2 = n / 2;
        n2 -= n2 % 8;
        float *right = stack;
        pairwise_rows(rows, n2, w, res, r8, stack + w);
        pairwise_rows(rows + n2 * w, n - n2, w, right, r8, stack + w);
        for (int64_t c = 0; c < w; ++c) res[c] += right[c];
    }
}

/* Fused flat-neighbour gather + bilinear weight combine + segment sum over
 * a compacted sampling trace (CompactSamplingTrace layout):
 *
 *   value     (n_rows, d_h)  float32 value rows, n_rows = batch*n_in*n_h
 *   kept      (k,)           sorted flat point ids; seg = kept / points_per_seg
 *   flat_idx  (k, 4)         neighbour token ids, -1 for out of bounds
 *   weights   (k, 4)         bilinear weights (invalid entries not zeroed)
 *   valid     (k, 4)         in-bounds flags, one byte each
 *   attn      (k,)           attention probability per kept point
 *   contrib   (run_max, d_h) scratch for one segment-within-chunk run
 *   sums      (>=57, d_h)    scratch: res row + 8 unroll rows + 48 stack rows
 *   out       (batch*n_q*n_h, d_h)  caller-zeroed output, accumulated into
 */
void
defa_gather_combine_segsum(
    const float *restrict value,
    const int64_t *restrict kept,
    const int64_t *restrict flat_idx,
    const float *restrict weights,
    const uint8_t *restrict valid,
    const float *restrict attn,
    int64_t k, int64_t d_h,
    int64_t n_in, int64_t n_h, int64_t n_q,
    int64_t points_per_seg,
    int64_t batch,
    int64_t chunk,
    float *restrict contrib,
    float *restrict sums,
    float *restrict out)
{
    float *res = sums;
    float *r8 = sums + d_h;
    float *stack = sums + 9 * d_h;
    int64_t i = 0;
    while (i < k) {
        int64_t seg = kept[i] / points_per_seg;
        /* One run = the rows of this segment inside the current chunk; a
         * segment crossing a chunk boundary flushes one partial sum per
         * chunk, exactly like the chunked reduceat of the numpy backends. */
        int64_t chunk_end = (i / chunk + 1) * chunk;
        int64_t j = i + 1;
        while (j < k && j < chunk_end && kept[j] / points_per_seg == seg) ++j;
        int64_t n = j - i;
        int64_t head = seg % n_h;
        int64_t base = head;
        if (batch > 1) base += (seg / (n_q * n_h)) * n_in * n_h;
        for (int64_t r = 0; r < n; ++r) {
            int64_t p = i + r;
            const int64_t *fi = flat_idx + p * 4;
            const float *wr = weights + p * 4;
            const uint8_t *vr = valid + p * 4;
            float a = attn[p];
            float w0 = wr[0] * (float)vr[0]; w0 *= a;
            float w1 = wr[1] * (float)vr[1]; w1 *= a;
            float w2 = wr[2] * (float)vr[2]; w2 *= a;
            float w3 = wr[3] * (float)vr[3]; w3 *= a;
            /* clamp -1 (out of bounds) to 0: its weight is exactly 0 */
            const float *g0 = value + (base + (fi[0] > 0 ? fi[0] : 0) * n_h) * d_h;
            const float *g1 = value + (base + (fi[1] > 0 ? fi[1] : 0) * n_h) * d_h;
            const float *g2 = value + (base + (fi[2] > 0 ? fi[2] : 0) * n_h) * d_h;
            const float *g3 = value + (base + (fi[3] > 0 ? fi[3] : 0) * n_h) * d_h;
            float *cr = contrib + r * d_h;
            for (int64_t c = 0; c < d_h; ++c) {
                float t = w0 * g0[c];
                t += w1 * g1[c];
                t += w2 * g2[c];
                t += w3 * g3[c];
                cr[c] = t;
            }
        }
        float *o = out + seg * d_h;
        if (n == 1) {
            for (int64_t c = 0; c < d_h; ++c) o[c] += contrib[c];
        } else {
            /* np.add.reduceat: first row + pairwise sum of the rest */
            pairwise_rows(contrib + d_h, n - 1, d_h, res, r8, stack);
            for (int64_t c = 0; c < d_h; ++c) o[c] += contrib[c] + res[c];
        }
        i = j;
    }
}

/* Fused fake-quantize chain: out = clip(rint(x / scale), qmin, qmax) * scale
 * computed in float64 and stored as float32 — one pass instead of the four
 * full-array passes (plus a float64 scratch) of the numpy in-place chain.
 * `scales` holds one float64 scale per row of `row_size` elements
 * (n / row_size rows); a single dynamic scale is the row_size == n case. */
void
defa_fake_quantize(
    const float *restrict x,
    float *restrict out,
    int64_t n,
    const double *restrict scales,
    int64_t row_size,
    double qmin,
    double qmax)
{
    if (row_size <= 0) return;
    int64_t rows = n / row_size;
    for (int64_t r = 0; r < rows; ++r) {
        double s = scales[r];
        const float *xr = x + r * row_size;
        float *orow = out + r * row_size;
        for (int64_t c = 0; c < row_size; ++c) {
            double v = (double)xr[c] / s;
            v = rint(v);
            if (v < qmin) v = qmin;
            if (v > qmax) v = qmax;
            orow[c] = (float)(v * s);
        }
    }
}
