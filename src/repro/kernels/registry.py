"""Kernel-backend registry and selection.

The compact-trace MSGS kernels (and the execution-plan machinery that rides
with them) exist in two implementations — see :mod:`repro.kernels.backends`.
Selection, from lowest to highest precedence:

1. the process default — the ``REPRO_KERNEL_BACKEND`` environment variable
   at first use (``"fused"`` when unset), changeable at runtime with
   :func:`set_backend`;
2. the per-pipeline configuration — :attr:`repro.core.config.DEFAConfig.
   kernel_backend` (``None`` follows the process default);
3. a per-call ``backend=`` override on the kernel entry points and
   ``forward_detailed`` methods.

``"reference"`` reproduces the PR 4 execution byte for byte (no execution
plans, per-chunk allocation); ``"fused"`` is bit-identical in results but
single-pass and zero-allocation in steady state; ``"compiled"`` runs the
fused hot loops as C kernels (bit-identical again) and requires the optional
extension built by ``setup.py build_ext`` — when the library is absent the
name resolves to ``"fused"`` with a :class:`RuntimeWarning`, never an
ImportError, so configs and environment variables naming ``"compiled"``
stay valid on toolchain-less hosts.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator

from repro.kernels.backends import FusedBackend, ReferenceBackend

KERNEL_BACKENDS = ("reference", "fused", "compiled")
"""Valid kernel-backend names, in increasing order of fusion."""

DEFAULT_BACKEND_ENV = "REPRO_KERNEL_BACKEND"
"""Environment variable consulted once for the initial process default."""

_BACKENDS = {"reference": ReferenceBackend(), "fused": FusedBackend()}
_current = None


def _lookup(name: str):
    if name == "compiled":
        # Availability is re-checked on every lookup (not cached at import)
        # so a test monkeypatching COMPILED_AVAILABLE exercises the real
        # fallback path, and so the warning fires per resolution site.
        from repro.kernels import compiled_backend

        if not compiled_backend.COMPILED_AVAILABLE:
            warnings.warn(
                "kernel backend 'compiled' requested but the compiled kernel "
                "library is not available (build it with `python setup.py "
                "build_ext --inplace`); falling back to 'fused'",
                RuntimeWarning,
                stacklevel=3,
            )
            return _BACKENDS["fused"]
        if "compiled" not in _BACKENDS:
            _BACKENDS["compiled"] = compiled_backend.CompiledBackend()
        return _BACKENDS["compiled"]
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"kernel backend must be one of {KERNEL_BACKENDS}, got {name!r}"
        ) from None


def get_backend():
    """The process-default kernel backend.

    Initialised lazily from :data:`DEFAULT_BACKEND_ENV` (``"fused"`` when the
    variable is unset); an unknown value in the environment raises here, at
    first use, with the valid names.
    """
    global _current
    if _current is None:
        _current = _lookup(os.environ.get(DEFAULT_BACKEND_ENV, "fused"))
    return _current


def set_backend(name: str):
    """Set the process-default backend; returns the backend object."""
    global _current
    _current = _lookup(name)
    return _current


def resolve_backend(backend=None):
    """Resolve a backend specification to a backend object.

    ``None`` means the process default, a string is looked up by name, and a
    backend object passes through — the uniform rule behind every
    ``backend=`` parameter in the pipeline.
    """
    if backend is None:
        return get_backend()
    if isinstance(backend, str):
        return _lookup(backend)
    return backend


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch the process-default backend (tests, probes)."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        global _current
        _current = previous
