"""Kernel backends for the compact-trace MSGS hot path.

Two implementations of the gather → bilinear-weight einsum →
``np.add.reduceat`` segment-sum chain that executes a
:class:`~repro.nn.grid_sample.CompactSamplingTrace`:

* :class:`ReferenceBackend` — the PR 3/4 kernel, moved behind this interface
  unchanged: every chunk allocates its gather block, its combined-weight
  array and its contribution rows, and recomputes the flat gather indices
  from the segment ids.
* :class:`FusedBackend` — the same chunk structure and the same float
  operations in the same order (results are **bit-identical**), but executed
  as one single-pass kernel per chunk: the flattened neighbour gather
  indices are precomputed once per trace (not once per chunk), every
  intermediate is written into caller-reusable ``out=`` buffers drawn from
  an :class:`~repro.kernels.plan.ExecutionPlan`, and the weight combine runs
  in-place instead of materialising three temporaries.  With a warm plan a
  steady-state call performs no large allocations.

Both backends are duck-typed over the trace (``kept`` / ``flat_indices`` /
``weights`` / ``valid`` / ``segments()`` / geometry attributes) so this
module never imports the NN substrate; :mod:`repro.nn.grid_sample`
dispatches into it via :func:`repro.kernels.registry.resolve_backend`.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.plan import ExecutionPlan
from repro.utils.timing import kernel_section

FLOAT_DTYPE = np.float32

_SPARSE_CONTRIB_BUDGET_BYTES = 8 * 1024 * 1024
"""Upper bound on the compacted ``(N_kept, D_h)`` contribution block per
chunk, mirroring the cache-size chunking of the dense kernels.  Shared by
both backends so their chunk boundaries (and therefore their float
summation order) are identical."""


def segment_sum_into(out: np.ndarray, contrib: np.ndarray, seg: np.ndarray) -> None:
    """Accumulate ``contrib`` rows into ``out[seg]`` for *sorted* segment ids.

    ``seg`` must be non-decreasing (compaction via ``np.flatnonzero``
    guarantees it).  Implemented with one ``np.add.reduceat`` over the starts
    of the non-empty segments — orders of magnitude faster than ``np.add.at``
    and exact up to float summation order.
    """
    if contrib.shape[0] == 0:
        return
    first = int(seg[0])
    last = int(seg[-1])
    counts = np.bincount(seg - first, minlength=last - first + 1)
    nonempty = counts > 0
    ends = np.cumsum(counts)
    starts = ends - counts
    # Non-empty segment starts are strictly increasing, and the rows between
    # two consecutive ones belong to exactly the earlier segment (empty
    # segments contribute no rows), so reduceat sums each segment exactly.
    sums = np.add.reduceat(contrib, starts[nonempty], axis=0)
    out[first : last + 1][nonempty] += sums


class ReferenceBackend:
    """The PR 3/4 compact-trace kernel, unchanged."""

    name = "reference"
    fused = False
    """Whether this backend uses :class:`ExecutionPlan` arenas (see
    :meth:`repro.core.encoder_runner.DEFAEncoderRunner.execution_plan`)."""

    def compact_gather_aggregate(
        self,
        value_flat: np.ndarray,
        trace,
        attn_flat: np.ndarray,
        n_in: int,
        plan: ExecutionPlan | None = None,
    ) -> np.ndarray:
        """Gather + segment-sum aggregation over an already-compacted trace.

        ``value_flat`` is the ``(B * N_in * N_h, D_h)`` value-row matrix,
        ``attn_flat`` the ``(K,)`` attention probabilities of the kept points
        (in ``trace.kept`` order).  Returns the ``(B * N_q * N_h, D_h)`` head
        outputs.  The kernel is a chunked gather, one einsum over the four
        neighbours and a segment sum; ``plan`` is accepted for interface
        parity and ignored (the reference kernel allocates per chunk).
        """
        d_h = value_flat.shape[1]
        n_h = trace.num_heads
        n_q, batch = trace.num_queries, trace.batch_size
        seg_all = trace.segments()
        output = np.zeros((batch * n_q * n_h, d_h), dtype=FLOAT_DTYPE)
        chunk = max(1, _SPARSE_CONTRIB_BUDGET_BYTES // (4 * 4 * max(d_h, 1)))
        for lo in range(0, trace.num_kept, chunk):
            sl = slice(lo, lo + chunk)
            with kernel_section("gather"):
                seg = seg_all[sl]
                head = seg % n_h
                token = np.maximum(trace.flat_indices[sl], 0)  # clamp -1 (weight is 0)
                if batch > 1:
                    image = seg // (n_q * n_h)
                    gather_idx = ((image[:, None] * n_in) + token) * n_h + head[:, None]
                else:
                    gather_idx = token * n_h + head[:, None]
                gathered = value_flat[gather_idx]  # (K_chunk, 4, D_h)
            with kernel_section("aggregate"):
                w4 = trace.weights[sl] * trace.valid[sl] * attn_flat[sl][:, None]
                contrib = np.einsum("kfc,kf->kc", gathered, w4)
                segment_sum_into(output, contrib, seg)
        return output


class FusedBackend:
    """Single-pass, buffer-reusing variant of the compact-trace kernel.

    Bit-identical to :class:`ReferenceBackend`: the chunk boundaries, the
    gather order, the weight-combine order and the reduceat groupings are
    the same — only the memory traffic differs (precomputed whole-trace
    gather indices, in-place weight combine, ``np.take``/``np.einsum`` with
    ``out=`` into plan buffers instead of fresh temporaries).
    """

    name = "fused"
    fused = True

    _SCRATCH_RETENTION_BYTES = 1 << 20

    def __init__(self) -> None:
        # Internal-buffer scratch for plan-less calls (operator-level use,
        # tests, the dense first block): reusing it across calls keeps the
        # fused kernel allocation-free at any call site where it matters —
        # small inputs, where per-call allocation overhead dominates.  Only
        # buffers that never escape this method may live here — the output
        # is allocated fresh when no caller plan owns it, so results of
        # consecutive stand-alone calls never alias each other.  The
        # retention cap keeps this process-lifetime singleton from pinning a
        # one-off large workload's scratch forever: over-cap requests are
        # served fresh (the reference backend's cost profile, where the
        # per-call overhead is negligible anyway).
        self._scratch = ExecutionPlan(max_buffer_bytes=self._SCRATCH_RETENTION_BYTES)

    def compact_gather_aggregate(
        self,
        value_flat: np.ndarray,
        trace,
        attn_flat: np.ndarray,
        n_in: int,
        plan: ExecutionPlan | None = None,
    ) -> np.ndarray:
        d_h = value_flat.shape[1]
        n_h = trace.num_heads
        n_q, batch = trace.num_queries, trace.batch_size
        k = trace.num_kept
        internal = plan if plan is not None else self._scratch

        with kernel_section("gather"):
            seg_all = trace.segments()
            head = internal.buffer("msgs.head", (k,), np.int64)
            np.mod(seg_all, n_h, out=head)
            # Flattened neighbour gather indices, once per trace (the
            # reference kernel rebuilds this per chunk from the segment ids):
            # ((image * N_in) + token) * N_h + head.
            gidx = internal.buffer("msgs.gather_idx", (k, 4), np.int64)
            np.maximum(trace.flat_indices, 0, out=gidx)  # clamp -1 (weight is 0)
            if batch > 1:
                image = internal.buffer("msgs.image", (k,), np.int64)
                np.floor_divide(seg_all, n_q * n_h, out=image)
                np.multiply(image, n_in, out=image)
                gidx += image[:, None]
            np.multiply(gidx, n_h, out=gidx)
            gidx += head[:, None]

        if plan is not None:
            output = plan.zeros("msgs.out", (batch * n_q * n_h, d_h), FLOAT_DTYPE)
        else:  # escapes to the caller: must not live in the shared scratch
            output = np.zeros((batch * n_q * n_h, d_h), dtype=FLOAT_DTYPE)
        chunk = max(1, _SPARSE_CONTRIB_BUDGET_BYTES // (4 * 4 * max(d_h, 1)))
        gathered = internal.buffer("msgs.gathered", (min(chunk, max(k, 1)), 4, d_h))
        w4 = internal.buffer("msgs.w4", (min(chunk, max(k, 1)), 4))
        contrib = internal.buffer("msgs.contrib", (min(chunk, max(k, 1)), d_h))
        for lo in range(0, k, chunk):
            hi = min(lo + chunk, k)
            n = hi - lo
            sl = slice(lo, hi)
            with kernel_section("gather"):
                np.take(value_flat, gidx[sl], axis=0, out=gathered[:n])
            with kernel_section("aggregate"):
                # Same order as the reference: (weights * valid) * attn.
                np.multiply(trace.weights[sl], trace.valid[sl], out=w4[:n])
                np.multiply(w4[:n], attn_flat[sl][:, None], out=w4[:n])
                np.einsum("kfc,kf->kc", gathered[:n], w4[:n], out=contrib[:n])
                segment_sum_into(output, contrib[:n], seg_all[sl])
        return output
