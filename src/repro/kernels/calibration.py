"""Host-calibrated auto-dispatch profiles (PR 9).

The ``auto`` sparse-dispatch rule compares keep fractions and problem sizes
against crossover thresholds (:class:`DispatchThresholds`).  Until PR 9 those
were hand-tuned module constants measured on one reference machine — but the
dense/sparse crossover moves with the host (memory bandwidth, malloc
behaviour) and with the kernel backend (the compiled C kernels shift every
break-even point).  This module makes the thresholds *data*:

* :class:`DispatchThresholds` — the eight crossover constants of the shared
  :func:`~repro.core.pipeline.use_sparse_rows` /
  :func:`~repro.nn.grid_sample.use_sparse_gather` dispatch rules.  Its field
  defaults ARE the historical hand-tuned values; the ``SPARSE_AUTO_*`` module
  constants in ``core/pipeline.py`` and ``nn/grid_sample.py`` are derived
  from them, so there is exactly one source of truth.
* :class:`MachineProfile` — a named, versioned, JSON-serializable bundle of
  thresholds (a machine-wide default plus optional per-backend overrides).
  The committed ``profiles/reference.json`` equals :func:`reference_profile`
  bit for bit, so CI and every equivalence gate dispatch exactly as the
  hand-tuned constants always did (the committed-reference-default rule).
* :func:`calibrate` — the sweep harness: a config-object-driven design-space
  sweep (one :class:`CalibrationGrid` describes the keep-ratio × token-count
  grid) that measures dense vs. row-compacted projections and dense vs.
  compacted point gathering with the *real* kernels, per backend, and fits
  the crossover points into a fresh :class:`MachineProfile` for this host.
* an active-profile registry mirroring the kernel-backend registry
  (:func:`get_active_profile` / :func:`set_active_profile` /
  :func:`use_profile`, seeded lazily from ``REPRO_MACHINE_PROFILE``), and
  :func:`resolve_profile` — the uniform rule behind every
  ``machine_profile`` specification in :class:`~repro.kernels.
  ExecutionOptions` / :class:`~repro.engine.serving.ModelBankSpec`.

Run ``python -m repro.kernels.calibration --output host.json`` to calibrate
the current host, and load the result via ``ExecutionOptions(
machine_profile="host.json")`` or ``REPRO_MACHINE_PROFILE=host.json``.
Profiles change *dispatch decisions only* — which equivalence-tested path
runs — never numerics of a chosen path, so a miscalibrated profile can cost
wall clock but not correctness.

Import layering: this module sits below the pipeline (it may import
``repro.kernels.registry``/``plan`` at module level; anything from
``repro.nn``/``repro.core`` is imported lazily inside the sweep functions),
so ``core/pipeline.py`` and ``nn/grid_sample.py`` can derive their constants
from it without a cycle.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.kernels.registry import KERNEL_BACKENDS, resolve_backend

__all__ = [
    "PROFILE_ENV",
    "PROFILE_SCHEMA_VERSION",
    "REFERENCE_PROFILE_PATH",
    "CalibrationGrid",
    "DispatchThresholds",
    "MachineProfile",
    "calibrate",
    "get_active_profile",
    "reference_profile",
    "resolve_profile",
    "set_active_profile",
    "use_profile",
]

PROFILE_SCHEMA_VERSION = 1
"""Schema version stamped into every serialized profile.  Bumped whenever a
threshold field is added/removed/renamed; :meth:`MachineProfile.from_dict`
rejects any other version rather than guessing at migration."""

PROFILE_ENV = "REPRO_MACHINE_PROFILE"
"""Environment variable consulted once for the initial active profile: the
name ``"reference"`` or a path to a profile JSON file."""

REFERENCE_PROFILE_NAME = "reference"

REFERENCE_PROFILE_PATH = Path(__file__).resolve().parent / "profiles" / "reference.json"
"""The committed reference profile.  Equals :func:`reference_profile` exactly
(pinned by tests and the CI calibration-smoke leg): loading it reproduces the
historical hand-tuned dispatch decisions bit for bit."""


@dataclass(frozen=True)
class DispatchThresholds:
    """Crossover constants of the ``auto`` dense/sparse dispatch rules.

    The defaults are the hand-tuned reference-machine values that shipped as
    ``SPARSE_AUTO_*`` module constants through PR 8; those constants are now
    derived from this dataclass (single source of truth).

    Boundary semantics — pinned by the boundary-value tests, and load-bearing
    for the path-choice-parity invariant: a calibrated profile whose values
    sit exactly on a measured crossover must make the *same* decision in
    batched and single-image execution, otherwise float rounding differences
    between the two kernels can be amplified into INT12 quantization steps:

    * minimum sizes compare with ``<`` — ``rows_per_image < min_rows`` (and
      ``slots_per_image < min_slots``) forces dense, so a problem *exactly
      at* the minimum is sparse-eligible;
    * keep ratios compare with ``<=`` — ``keep_fraction <= keep_max`` goes
      sparse, so a keep fraction *exactly at* the crossover goes sparse.
    """

    pixel_keep_max: float = 0.85
    """Value projection: compacted when at most this fraction of fmap pixels
    survives the incoming FWP mask."""

    min_tokens: int = 512
    """Value projection: minimum per-image ``N_in`` before compaction can pay
    for its gather/scatter overhead."""

    query_keep_max: float = 0.85
    """Query-side projections (attention / offset / output heads) under query
    pruning: compacted at or below this query keep fraction."""

    min_queries: int = 512
    """Query-side projections: minimum per-image ``N_q``."""

    ffn_keep_max: float = 0.85
    """Inter-block FFN/LayerNorm stage (block-sparse encoder): compacted at
    or below this pixel keep fraction."""

    ffn_min_tokens: int = 512
    """Inter-block FFN/LayerNorm stage: minimum per-image ``N_in``."""

    point_keep_max: float = 0.70
    """MSGS point gathering: compacted at or below this PAP point keep
    fraction."""

    min_slots: int = 32768
    """MSGS point gathering: minimum per-image gather slots
    (``N_q * N_h * N_l * N_p * 4``)."""

    def __post_init__(self) -> None:
        for name in ("pixel_keep_max", "query_keep_max", "ffn_keep_max", "point_keep_max"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TypeError(f"{name} must be a number, got {type(value).__name__}")
            if not 0.0 <= float(value) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
            object.__setattr__(self, name, float(value))
        for name in ("min_tokens", "min_queries", "ffn_min_tokens", "min_slots"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(f"{name} must be an int, got {type(value).__name__}")
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DispatchThresholds":
        if not isinstance(data, dict):
            raise TypeError(f"thresholds must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown threshold field(s) {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        missing = known - set(data)
        if missing:
            raise ValueError(f"missing threshold field(s) {sorted(missing)}")
        return cls(**data)


@dataclass(frozen=True)
class MachineProfile:
    """One host's calibrated dispatch thresholds, versioned and serializable.

    Frozen, hashable and picklable (plain data only), so a profile can ride
    inside an :class:`~repro.kernels.ExecutionOptions` or a
    :class:`~repro.engine.serving.ModelBankSpec` across a worker process
    boundary.  ``per_backend`` carries backend-specific overrides — the
    compiled C kernels shift the crossovers relative to the NumPy kernels —
    looked up by :meth:`thresholds_for`; backends without an override use the
    machine-wide ``thresholds``.
    """

    name: str
    thresholds: DispatchThresholds = DispatchThresholds()
    per_backend: tuple[tuple[str, DispatchThresholds], ...] = ()
    host: tuple[tuple[str, str], ...] = ()
    """Provenance metadata of the calibrated host (platform, python, numpy
    versions) as sorted key/value pairs; informational only, never compared
    by the dispatch path."""

    schema_version: int = PROFILE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("profile name must be a non-empty string")
        if self.schema_version != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported profile schema_version {self.schema_version!r} "
                f"(this build reads version {PROFILE_SCHEMA_VERSION})"
            )
        if not isinstance(self.thresholds, DispatchThresholds):
            raise TypeError("thresholds must be a DispatchThresholds")
        object.__setattr__(self, "per_backend", tuple(self.per_backend))
        seen = set()
        for entry in self.per_backend:
            backend_name, thresholds = entry
            if backend_name not in KERNEL_BACKENDS:
                raise ValueError(
                    f"per_backend names must be from {KERNEL_BACKENDS}, "
                    f"got {backend_name!r}"
                )
            if backend_name in seen:
                raise ValueError(f"duplicate per_backend entry {backend_name!r}")
            seen.add(backend_name)
            if not isinstance(thresholds, DispatchThresholds):
                raise TypeError("per_backend values must be DispatchThresholds")
        object.__setattr__(
            self, "host", tuple((str(k), str(v)) for k, v in self.host)
        )

    def thresholds_for(self, backend_name: str | None) -> DispatchThresholds:
        """The thresholds governing dispatch under the named backend.

        ``None`` (no backend context) and backends without an override both
        resolve to the machine-wide default thresholds.
        """
        for name, thresholds in self.per_backend:
            if name == backend_name:
                return thresholds
        return self.thresholds

    # ------------------------------------------------------------- serde

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "host": {key: value for key, value in self.host},
            "thresholds": self.thresholds.to_dict(),
            "per_backend": {
                name: thresholds.to_dict() for name, thresholds in self.per_backend
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineProfile":
        if not isinstance(data, dict):
            raise TypeError(f"profile must be a mapping, got {type(data).__name__}")
        known = {"schema_version", "name", "host", "thresholds", "per_backend"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown profile field(s) {sorted(unknown)}")
        missing = {"schema_version", "name", "thresholds"} - set(data)
        if missing:
            raise ValueError(f"missing profile field(s) {sorted(missing)}")
        host = data.get("host", {})
        if not isinstance(host, dict):
            raise TypeError("profile host metadata must be a mapping")
        per_backend = data.get("per_backend", {})
        if not isinstance(per_backend, dict):
            raise TypeError("profile per_backend must be a mapping")
        return cls(
            name=data["name"],
            schema_version=data["schema_version"],
            host=tuple(sorted((str(k), str(v)) for k, v in host.items())),
            thresholds=DispatchThresholds.from_dict(data["thresholds"]),
            per_backend=tuple(
                (name, DispatchThresholds.from_dict(values))
                for name, values in sorted(per_backend.items())
            ),
        )

    def save(self, path: str | os.PathLike) -> Path:
        """Write the profile as schema-checked JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "MachineProfile":
        """Read and validate a profile JSON file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"profile file {path} is not valid JSON: {exc}") from None
        return cls.from_dict(data)


def reference_profile() -> MachineProfile:
    """The reference profile: today's hand-tuned constants, no overrides.

    The committed :data:`REFERENCE_PROFILE_PATH` JSON must equal this object
    exactly — that equality is what keeps CI and the equivalence gates
    bit-deterministic across hosts (the committed-reference-default rule).
    """
    return MachineProfile(name=REFERENCE_PROFILE_NAME)


# --------------------------------------------------------------------------
# Active-profile registry (mirrors repro.kernels.registry for backends).

_active_profile: MachineProfile | None = None


def get_active_profile() -> MachineProfile:
    """The process-default machine profile.

    Initialised lazily from :data:`PROFILE_ENV` (the committed reference
    profile when the variable is unset), changeable at runtime with
    :func:`set_active_profile`.
    """
    global _active_profile
    if _active_profile is None:
        spec = os.environ.get(PROFILE_ENV)
        _active_profile = _load_spec(spec) if spec else reference_profile()
    return _active_profile


def set_active_profile(profile: "MachineProfile | str | None") -> MachineProfile:
    """Set the process-default profile; returns the resolved profile.

    Accepts a :class:`MachineProfile`, ``"reference"``, a path to a profile
    JSON file, or ``None`` to reset to the environment/default resolution.
    """
    global _active_profile
    if profile is None:
        _active_profile = None
        return get_active_profile()
    _active_profile = _coerce(profile)
    return _active_profile


@contextmanager
def use_profile(profile: "MachineProfile | str") -> Iterator[MachineProfile]:
    """Temporarily switch the process-default profile (tests, probes)."""
    previous = get_active_profile()
    resolved = set_active_profile(profile)
    try:
        yield resolved
    finally:
        global _active_profile
        _active_profile = previous


def _load_spec(spec: str) -> MachineProfile:
    if spec == REFERENCE_PROFILE_NAME:
        return reference_profile()
    return MachineProfile.load(spec)


def _coerce(profile: "MachineProfile | str") -> MachineProfile:
    if isinstance(profile, MachineProfile):
        return profile
    if isinstance(profile, str):
        return _load_spec(profile)
    raise TypeError(
        "machine_profile must be a MachineProfile, 'reference', a path to a "
        f"profile JSON file, or None; got {type(profile).__name__}"
    )


def resolve_profile(profile: "MachineProfile | str | None" = None) -> MachineProfile:
    """Resolve a profile specification to a :class:`MachineProfile`.

    ``None`` means the process-default active profile, ``"reference"`` the
    committed reference constants, any other string a profile JSON path, and
    a :class:`MachineProfile` passes through — the uniform rule behind every
    ``machine_profile`` parameter (mirrors :func:`repro.kernels.
    resolve_backend`).
    """
    if profile is None:
        return get_active_profile()
    return _coerce(profile)


# --------------------------------------------------------------------------
# The calibration sweep harness.


@dataclass(frozen=True)
class CalibrationGrid:
    """Design-space description of one calibration sweep.

    One frozen config object describes the whole sweep (the OpenNVRAM
    design-space-exploration idiom: mutate the config, not the harness):
    :func:`calibrate` walks ``keep_ratios`` × ``token_counts`` per backend,
    measures dense and compacted execution at every point, and fits the
    crossovers.  The defaults are a balanced grid (~seconds per backend on a
    laptop-class core); :meth:`tiny` is the CI smoke grid.
    """

    keep_ratios: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.85, 0.95)
    """Keep fractions swept (ascending); the fitted ``*_keep_max`` is the
    largest ratio at which the compacted kernel still beats the dense one."""

    token_counts: tuple[int, ...] = (128, 512, 2048)
    """Per-image row/query counts swept; the fitted ``min_*`` is the smallest
    count at which compaction wins at a clearly-profitable keep ratio."""

    d_model: int = 64
    num_heads: int = 4
    num_levels: int = 2
    num_points: int = 2
    repeats: int = 3
    """Timing repeats per measurement point (best-of-N wall clock)."""

    rng_seed: int = 0

    def __post_init__(self) -> None:
        if not self.keep_ratios or not self.token_counts:
            raise ValueError("keep_ratios and token_counts must be non-empty")
        if any(not 0.0 < r <= 1.0 for r in self.keep_ratios):
            raise ValueError("keep_ratios must lie in (0, 1]")
        if tuple(sorted(self.keep_ratios)) != tuple(self.keep_ratios):
            raise ValueError("keep_ratios must be ascending")
        if tuple(sorted(self.token_counts)) != tuple(self.token_counts):
            raise ValueError("token_counts must be ascending")
        if any(n <= 0 for n in self.token_counts):
            raise ValueError("token_counts must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")

    @classmethod
    def tiny(cls) -> "CalibrationGrid":
        """The CI smoke grid: two ratios × two sizes, one repeat."""
        return cls(keep_ratios=(0.3, 0.9), token_counts=(64, 256), repeats=1)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _keep_mask(rng: np.random.Generator, size: int, keep_ratio: float) -> np.ndarray:
    """A boolean keep mask with exactly ``round(size * keep_ratio)`` (>= 1)
    kept entries at random positions."""
    kept = max(1, int(round(size * keep_ratio)))
    mask = np.zeros(size, dtype=bool)
    mask[rng.permutation(size)[:kept]] = True
    return mask


def _sweep_row_projection(
    grid: CalibrationGrid, backend
) -> dict[int, dict[float, tuple[float, float]]]:
    """``{tokens: {keep_ratio: (dense_s, sparse_s)}}`` for the row-compacted
    projection — the machinery shared by the value / query-side / FFN stages,
    so one measured crossover serves all three row thresholds."""
    from repro.kernels.plan import ExecutionPlan
    from repro.kernels.fused_ops import project_into, project_rows_into
    from repro.nn.modules import Linear

    rng = np.random.default_rng(grid.rng_seed)
    results: dict[int, dict[float, tuple[float, float]]] = {}
    for tokens in grid.token_counts:
        proj = Linear(grid.d_model, grid.d_model, rng=rng)
        x = rng.standard_normal((tokens, grid.d_model)).astype(np.float32)
        plan = ExecutionPlan()
        results[tokens] = {}
        for keep_ratio in grid.keep_ratios:
            mask = _keep_mask(rng, tokens, keep_ratio)
            kept = np.flatnonzero(mask)

            def dense() -> None:
                out = project_into(proj, x, plan, "cal.dense", backend=backend)
                out[~mask] = 0

            def sparse() -> None:
                out = plan.zeros("cal.sparse", (tokens, grid.d_model))
                out[kept] = project_rows_into(
                    proj, x, kept, plan, "cal.rows", backend=backend
                )

            dense()  # warm the arena outside the timed region
            sparse()
            results[tokens][keep_ratio] = (
                _best_of(dense, grid.repeats),
                _best_of(sparse, grid.repeats),
            )
    return results


def _sweep_point_gather(
    grid: CalibrationGrid, backend
) -> dict[int, dict[float, tuple[float, float]]]:
    """``{slots_per_image: {keep_ratio: (dense_s, sparse_s)}}`` for MSGS
    point gathering (dense trace + masked gather vs. compacted trace +
    compact gather)."""
    from repro.kernels.plan import ExecutionPlan
    from repro.nn.grid_sample import (
        ms_deform_attn_from_compact_trace,
        ms_deform_attn_from_trace,
        multi_scale_neighbors,
        multi_scale_neighbors_sparse,
    )
    from repro.utils.shapes import LevelShape

    rng = np.random.default_rng(grid.rng_seed + 1)
    d_head = grid.d_model // grid.num_heads
    results: dict[int, dict[float, tuple[float, float]]] = {}
    for n_q in grid.token_counts:
        side = max(2, int(np.ceil(np.sqrt(n_q / grid.num_levels))))
        spatial_shapes = [LevelShape(side, side) for _ in range(grid.num_levels)]
        n_in = sum(s.num_pixels for s in spatial_shapes)
        value = rng.standard_normal(
            (n_in, grid.num_heads, d_head)
        ).astype(np.float32)
        points_shape = (n_q, grid.num_heads, grid.num_levels, grid.num_points)
        locations = rng.uniform(0.05, 0.95, size=points_shape + (2,)).astype(np.float32)
        weights = rng.uniform(0.0, 1.0, size=points_shape).astype(np.float32)
        slots = int(np.prod(points_shape)) * 4
        plan = ExecutionPlan()
        results[slots] = {}
        for keep_ratio in grid.keep_ratios:
            mask = _keep_mask(
                rng, int(np.prod(points_shape)), keep_ratio
            ).reshape(points_shape)

            def dense() -> None:
                trace = multi_scale_neighbors(spatial_shapes, locations)
                ms_deform_attn_from_trace(value, trace, weights, point_mask=mask)

            def sparse() -> None:
                trace = multi_scale_neighbors_sparse(
                    spatial_shapes, locations, point_mask=mask, plan=plan
                )
                ms_deform_attn_from_compact_trace(
                    value, trace, weights, backend=backend, plan=plan
                )

            sparse()  # warm the arena outside the timed region
            results[slots][keep_ratio] = (
                _best_of(dense, grid.repeats),
                _best_of(sparse, grid.repeats),
            )
    return results


def _fit_crossover(
    sweep: dict[int, dict[float, tuple[float, float]]],
    default_keep_max: float,
    default_min_size: int,
) -> tuple[float, int]:
    """Fit ``(keep_max, min_size)`` from a sweep.

    ``keep_max`` is the largest swept ratio at which the compacted kernel
    beats the dense one on the largest problem size (the regime the
    thresholds exist for); ``min_size`` is the smallest swept size at which
    compaction wins at the most favourable (smallest) ratio.  A sweep where
    compaction never wins keeps the hand-tuned defaults — a conservative
    fallback for noisy or degenerate hosts.
    """
    largest = max(sweep)
    keep_max = None
    for ratio, (dense_s, sparse_s) in sorted(sweep[largest].items()):
        if sparse_s <= dense_s:
            keep_max = ratio
    if keep_max is None:
        return default_keep_max, default_min_size
    min_size = None
    for size in sorted(sweep):
        smallest_ratio = min(sweep[size])
        dense_s, sparse_s = sweep[size][smallest_ratio]
        if sparse_s <= dense_s:
            min_size = size
            break
    if min_size is None:
        min_size = largest
    return float(keep_max), int(min_size)


def calibrate(
    grid: CalibrationGrid | None = None,
    backends: tuple[str, ...] | None = None,
    name: str | None = None,
) -> MachineProfile:
    """Measure this host's dense/sparse crossovers and fit a profile.

    Sweeps every requested backend (default: all of
    :data:`~repro.kernels.KERNEL_BACKENDS` that resolve on this host —
    ``"compiled"`` is skipped when the extension is absent rather than
    calibrating its ``"fused"`` fallback twice) and records one
    :class:`DispatchThresholds` override per backend, with the first
    backend's fit as the machine-wide default.  The row-projection sweep
    drives the three row thresholds (value / query / FFN share the same
    compaction machinery); the point-gather sweep drives
    ``point_keep_max`` / ``min_slots``.
    """
    import warnings

    grid = grid or CalibrationGrid()
    if backends is None:
        candidates = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for backend_name in KERNEL_BACKENDS:
                if resolve_backend(backend_name).name == backend_name:
                    candidates.append(backend_name)
        backends = tuple(candidates)
    if not backends:
        raise ValueError("no kernel backends to calibrate")
    defaults = DispatchThresholds()
    per_backend = []
    for backend_name in backends:
        backend = resolve_backend(backend_name)
        rows = _sweep_row_projection(grid, backend)
        points = _sweep_point_gather(grid, backend)
        row_keep_max, min_rows = _fit_crossover(
            rows, defaults.pixel_keep_max, defaults.min_tokens
        )
        point_keep_max, min_slots = _fit_crossover(
            points, defaults.point_keep_max, defaults.min_slots
        )
        per_backend.append(
            (
                backend_name,
                DispatchThresholds(
                    pixel_keep_max=row_keep_max,
                    min_tokens=min_rows,
                    query_keep_max=row_keep_max,
                    min_queries=min_rows,
                    ffn_keep_max=row_keep_max,
                    ffn_min_tokens=min_rows,
                    point_keep_max=point_keep_max,
                    min_slots=min_slots,
                ),
            )
        )
    host = tuple(
        sorted(
            {
                "platform": platform.platform(),
                "machine": platform.machine(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            }.items()
        )
    )
    return MachineProfile(
        name=name or f"calibrated-{platform.node() or 'host'}",
        thresholds=per_backend[0][1],
        per_backend=tuple(sorted(per_backend)),
        host=host,
    )


# --------------------------------------------------------------------------
# CLI: calibrate this host, or verify the committed reference profile.


def check_reference(path: Path = REFERENCE_PROFILE_PATH) -> list[str]:
    """Verify the committed reference profile; returns human-readable failures.

    Checks (the CI calibration-smoke gate):

    1. the file parses, schema-validates and round-trips through
       ``to_dict``/``from_dict``;
    2. it equals :func:`reference_profile` — i.e. the hand-tuned constants —
       exactly;
    3. dispatching representative shapes through the shared
       :func:`~repro.core.pipeline.use_sparse_rows` /
       :func:`~repro.nn.grid_sample.use_sparse_gather` rules with the loaded
       profile reproduces the module-constant decisions bit-identically, for
       every backend name.
    """
    from repro.core.pipeline import (
        SPARSE_AUTO_MIN_TOKENS,
        SPARSE_AUTO_PIXEL_KEEP_MAX,
        use_sparse_rows,
    )
    from repro.nn.grid_sample import use_sparse_gather

    failures: list[str] = []
    try:
        loaded = MachineProfile.load(path)
    except (OSError, TypeError, ValueError) as exc:
        return [f"failed to load {path}: {exc}"]
    if MachineProfile.from_dict(loaded.to_dict()) != loaded:
        failures.append("profile does not round-trip through to_dict/from_dict")
    if loaded != reference_profile():
        failures.append(
            f"{path} differs from reference_profile(); regenerate it with "
            f"`python -m repro.kernels.calibration --write-reference`"
        )
    rng = np.random.default_rng(0)
    for backend_name in KERNEL_BACKENDS + (None,):
        thresholds = loaded.thresholds_for(backend_name)
        for rows in (64, SPARSE_AUTO_MIN_TOKENS, 4096):
            for keep in (0.1, 0.5, SPARSE_AUTO_PIXEL_KEEP_MAX, 0.99):
                mask = _keep_mask(rng, rows, keep)
                expected = use_sparse_rows(
                    mask, rows, SPARSE_AUTO_PIXEL_KEEP_MAX, SPARSE_AUTO_MIN_TOKENS, "auto"
                )
                got = use_sparse_rows(
                    mask, rows, thresholds.pixel_keep_max, thresholds.min_tokens, "auto"
                )
                if expected != got:
                    failures.append(
                        f"use_sparse_rows dispatch diverged for backend="
                        f"{backend_name} rows={rows} keep={keep}: {expected} != {got}"
                    )
                point_mask = mask.reshape(rows, 1, 1, 1)
                expected = use_sparse_gather(point_mask, rows * 4, "auto")
                got = use_sparse_gather(
                    point_mask, rows * 4, "auto", thresholds=thresholds
                )
                if expected != got:
                    failures.append(
                        f"use_sparse_gather dispatch diverged for backend="
                        f"{backend_name} slots={rows * 4} keep={keep}: "
                        f"{expected} != {got}"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the calibrated profile JSON here",
    )
    parser.add_argument(
        "--grid", choices=("default", "tiny"), default="default",
        help="sweep grid: 'tiny' is the CI smoke grid",
    )
    parser.add_argument(
        "--name", default=None, help="profile name (default: calibrated-<host>)"
    )
    parser.add_argument(
        "--backends", nargs="+", choices=KERNEL_BACKENDS, default=None,
        help="backends to calibrate (default: all that resolve on this host)",
    )
    parser.add_argument(
        "--check-reference", action="store_true",
        help="verify the committed reference profile instead of calibrating",
    )
    parser.add_argument(
        "--write-reference", action="store_true",
        help="(re)write the committed reference profile from the hand-tuned "
        "constants — only needed after changing DispatchThresholds defaults",
    )
    args = parser.parse_args(argv)

    if args.write_reference:
        path = reference_profile().save(REFERENCE_PROFILE_PATH)
        print(f"wrote {path}")
        return 0
    if args.check_reference:
        failures = check_reference()
        for failure in failures:
            print(f"FAIL: {failure}")
        if not failures:
            print(
                "reference profile OK: schema round-trip and dispatch parity "
                "with the hand-tuned constants"
            )
        return 1 if failures else 0

    grid = CalibrationGrid.tiny() if args.grid == "tiny" else CalibrationGrid()
    backends = tuple(args.backends) if args.backends else None
    profile = calibrate(grid, backends=backends, name=args.name)
    if args.output is not None:
        profile.save(args.output)
        print(f"wrote {args.output}")
    print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
