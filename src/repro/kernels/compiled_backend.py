"""The ``"compiled"`` kernel backend: C hot loops behind the registry (PR 7).

Loads the shared library built from ``src/repro/kernels/_c/defa_kernels.c``
(``python setup.py build_ext --inplace``) via :mod:`ctypes` and exposes it as
a backend object selected per-call/per-config exactly like ``"fused"``.  Two
entry points cover the four true hot loops of the sparse encoder:

* ``defa_gather_combine_segsum`` — the flat neighbour gather, the
  4-neighbour bilinear weight combine and the segment sum, fused into one
  pass over the kept points (no ``(K, 4, D_h)`` gather block, no ``(K, D_h)``
  contribution block — the numpy backends stream several MB per chunk
  through memory just to feed ``reduceat``);
* ``defa_fake_quantize`` — the divide → rint → clip → rescale chain of
  dynamic activation quantization in a single pass, replacing four
  full-array numpy passes plus a float64 scratch.

**Graceful degradation.**  When no library is found (no toolchain, never
built, stale ABI), :data:`COMPILED_AVAILABLE` is ``False`` and
:func:`repro.kernels.registry._lookup` resolves ``"compiled"`` to the fused
backend with a warning — never an ImportError.

**Numerics.**  Both kernels replicate the numpy op order exactly (see the C
source header): the combine accumulates the four neighbours sequentially in
float32 as einsum does, the segment sum replays ``np.add.reduceat``'s
``first + pairwise(rest)`` order including the shared 8 MiB chunk
boundaries, and the quantize chain is the same elementwise float64 sequence.
The backend is therefore *bit-identical* to ``"fused"`` on every supported
input, and :data:`COMPILED_EQUIVALENCE_TOL` — the backend's tier in the
equivalence probes and ``run_all --check`` gates — is exactly ``0.0``.  The
tier constant exists so that a platform where identity is unachievable (a
compiler that ignores ``-ffp-contract=off``, a non-IEEE libm ``rint``) can
widen *this backend's* gate explicitly without touching the 0.0
fused-vs-reference gate, the same per-comparison precedent as the PR 4
BLAS-row-count tolerance.

Inputs the C kernels do not support (non-contiguous arrays, unexpected
dtypes, per-channel/broadcast scale layouts) fall back to the inherited
fused implementations, which are bit-identical anyway — support is a pure
performance question, never a correctness one.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro.kernels.backends import (
    _SPARSE_CONTRIB_BUDGET_BYTES,
    FLOAT_DTYPE,
    FusedBackend,
)
from repro.kernels.plan import ExecutionPlan
from repro.quant.quantizer import QuantSpec, compute_scale
from repro.utils.timing import kernel_section

__all__ = [
    "COMPILED_AVAILABLE",
    "COMPILED_EQUIVALENCE_TOL",
    "CompiledBackend",
]

COMPILED_EQUIVALENCE_TOL = 0.0
"""Compiled-vs-fused drift bound: the per-backend tolerance tier of the
``"compiled"`` backend in equivalence probes and CI gates.  Exactly zero —
the C kernels replicate the numpy float op order including reduceat's
pairwise summation — and deliberately separate from the fused-vs-reference
0.0 gate so a diverging platform would widen only this tier, explicitly."""

_ABI_VERSION = 1
"""Expected ``defa_kernels_abi()`` of the library; must match the C source.
A stale in-place build after a signature change is refused, not called."""

_LIB_STEM = "_defa_kernels"

_STACK_LEVELS = 48
"""Recursion head-room of the C pairwise segment sum (each level halves the
row count, so 48 covers any conceivable segment length)."""

_SUM_SCRATCH_ROWS = 9 + _STACK_LEVELS
"""Rows of the ``(rows, d_h)`` summation scratch: 1 result row + 8 unrolled
partial-sum rows + one row per recursion level."""


def _load_library() -> ctypes.CDLL | None:
    """The kernel library next to this module, or ``None`` when unusable."""
    here = Path(__file__).resolve().parent
    for path in sorted(here.glob(_LIB_STEM + "*")):
        if path.suffix not in {".so", ".dylib", ".pyd"}:
            continue
        try:
            lib = ctypes.CDLL(str(path))
            abi = lib.defa_kernels_abi
            lib.defa_gather_combine_segsum.restype = None
            lib.defa_fake_quantize.restype = None
        except (OSError, AttributeError):
            continue
        abi.restype = ctypes.c_int64
        abi.argtypes = []
        if abi() != _ABI_VERSION:
            continue
        return lib
    return None


_LIB = _load_library()

COMPILED_AVAILABLE = _LIB is not None
"""Whether the compiled kernel library was found and loaded.  ``False`` on
hosts that never ran ``setup.py build_ext`` (or have no C toolchain); the
registry then resolves ``"compiled"`` to ``"fused"`` with a warning."""


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def _rowwise_scales(x: np.ndarray, scale: np.ndarray) -> tuple[np.ndarray, int] | None:
    """Flatten a broadcastable quantization scale to per-row form.

    Returns ``(scales_1d, row_size)`` such that ``scales_1d[i]`` applies to
    the ``i``-th block of ``row_size`` elements of C-ordered ``x`` — the
    layout ``defa_fake_quantize`` consumes.  Covers every scale shape the
    projection helpers produce: a scalar (full-array dynamic scale), the
    per-image ``(B, 1, 1)`` keepdims array and the per-row ``(rows, 1)``
    array.  ``None`` means the layout is not row-wise (e.g. per-channel
    scales broadcasting along a middle axis) and the caller must fall back.
    """
    scale = np.asarray(scale, dtype=np.float64)
    if scale.size == 1:
        return np.ascontiguousarray(scale.reshape(1)), x.size
    if scale.ndim != x.ndim:
        return None
    lead = scale.ndim
    while lead > 0 and scale.shape[lead - 1] == 1:
        lead -= 1
    if scale.shape[:lead] != x.shape[:lead]:
        return None
    return np.ascontiguousarray(scale.reshape(-1)), x.size // scale.size


class CompiledBackend(FusedBackend):
    """C-kernel variant of the fused backend (same plans, same bits).

    Inherits the fused backend's plan/arena conventions (``fused = True``:
    runners thread :class:`ExecutionPlan` arenas through it, plan-less calls
    use the internal retention-capped scratch) and overrides the two hot
    paths with single-pass C kernels.  Steady-state calls perform no
    allocations beyond the same plan buffers the fused backend uses — the C
    scratch rows live in the arena too.
    """

    name = "compiled"

    def compact_gather_aggregate(
        self,
        value_flat: np.ndarray,
        trace,
        attn_flat: np.ndarray,
        n_in: int,
        plan: ExecutionPlan | None = None,
    ) -> np.ndarray:
        d_h = int(value_flat.shape[1])
        n_h = trace.num_heads
        n_q, batch = trace.num_queries, trace.batch_size
        k = trace.num_kept
        supported = (
            value_flat.dtype == FLOAT_DTYPE
            and attn_flat.dtype == FLOAT_DTYPE
            and trace.weights.dtype == FLOAT_DTYPE
            and trace.kept.dtype == np.int64
            and trace.flat_indices.dtype == np.int64
            and trace.valid.dtype == np.bool_
            and value_flat.flags.c_contiguous
            and attn_flat.flags.c_contiguous
            and trace.kept.flags.c_contiguous
            and trace.flat_indices.flags.c_contiguous
            and trace.weights.flags.c_contiguous
            and trace.valid.flags.c_contiguous
            and trace.flat_indices.shape[1:] == (4,)
        )
        if not supported:
            return super().compact_gather_aggregate(
                value_flat, trace, attn_flat, n_in, plan=plan
            )
        internal = plan if plan is not None else self._scratch
        if plan is not None:
            output = plan.zeros("msgs.out", (batch * n_q * n_h, d_h), FLOAT_DTYPE)
        else:  # escapes to the caller: must not live in the shared scratch
            output = np.zeros((batch * n_q * n_h, d_h), dtype=FLOAT_DTYPE)
        if k == 0:
            return output
        # Same chunking formula as the numpy backends: shared boundaries mean
        # a shared float summation order (partial sums flush per chunk).
        chunk = max(1, _SPARSE_CONTRIB_BUDGET_BYTES // (4 * 4 * max(d_h, 1)))
        points_per_seg = trace.num_levels * trace.num_points
        run_max = max(1, min(points_per_seg, chunk))
        contrib = internal.buffer("msgs.c_contrib", (run_max, d_h), FLOAT_DTYPE)
        sums = internal.buffer("msgs.c_sums", (_SUM_SCRATCH_ROWS, d_h), FLOAT_DTYPE)
        with kernel_section("aggregate"):  # gather+combine+segsum, one pass
            _LIB.defa_gather_combine_segsum(
                _ptr(value_flat),
                _ptr(trace.kept),
                _ptr(trace.flat_indices),
                _ptr(trace.weights),
                _ptr(trace.valid.view(np.uint8)),
                _ptr(attn_flat),
                ctypes.c_int64(k),
                ctypes.c_int64(d_h),
                ctypes.c_int64(n_in),
                ctypes.c_int64(n_h),
                ctypes.c_int64(n_q),
                ctypes.c_int64(points_per_seg),
                ctypes.c_int64(batch),
                ctypes.c_int64(chunk),
                _ptr(contrib),
                _ptr(sums),
                _ptr(output),
            )
        return output

    def fake_quantize_into(
        self,
        x: np.ndarray,
        spec: QuantSpec,
        max_abs,
        out: np.ndarray,
    ) -> np.ndarray | None:
        """Fused C fake-quantize chain into *out*; ``None`` = unsupported.

        Bit-identical to :func:`repro.quant.quantizer.fake_quantize`'s
        in-place path (same float64 op sequence, elementwise).  Returns
        ``None`` when the input or scale layout is outside the C kernel's
        contract so the caller runs the numpy chain instead.
        """
        if (
            x.dtype != FLOAT_DTYPE
            or out.dtype != FLOAT_DTYPE
            or out.shape != x.shape
            or not x.flags.c_contiguous
            or not out.flags.c_contiguous
        ):
            return None
        if x.size == 0:
            return out
        scale = compute_scale(x, spec, max_abs=max_abs)
        rowwise = _rowwise_scales(x, scale)
        if rowwise is None:
            return None
        scales, row_size = rowwise
        _LIB.defa_fake_quantize(
            _ptr(x),
            _ptr(out),
            ctypes.c_int64(x.size),
            _ptr(scales),
            ctypes.c_int64(row_size),
            ctypes.c_double(spec.qmin),
            ctypes.c_double(spec.qmax),
        )
        return out
