"""One object for the execution knobs threaded through the stack (PR 8).

Across PRs 2-7 the execution switches grew ad hoc as per-call keywords:
``sparse_mode=`` on :class:`~repro.core.pipeline.DEFAAttention` and
:class:`~repro.core.encoder_runner.DEFAEncoderRunner`, ``backend=`` /
``kernel_backend`` in four different spots, ``collect_details=`` on the
runner, ``enable_query_pruning`` on the config.  :class:`ExecutionOptions`
bundles them into one frozen object that travels the whole stack —
``DEFAAttention`` / ``MSDeformAttn.forward_detailed`` /
``DEFAEncoderRunner`` / ``defa_forward_fn`` / ``ModelBankSpec`` — and
:func:`normalize_execution_options` is the *single* point where the legacy
keywords are accepted, warned about and converted (the PR 5
``normalize_mask`` precedent: coerce once at the boundary, everything
downstream sees one type).

The one-object rule for future knobs: a new execution switch is a new
``ExecutionOptions`` field, never a new loose keyword.  Internal code under
``src/repro/`` must pass ``options=`` only — ``tools/check_deprecated_kwargs.py``
(run in CI and by the tier-1 tests) fails on any internal use of the
deprecated keywords, keeping the old surface external-only.
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, replace

from repro.kernels.calibration import MachineProfile
from repro.kernels.registry import KERNEL_BACKENDS

#: Execution-path switch values (mirrors ``repro.core.pipeline.SPARSE_MODES``;
#: duplicated here as plain data so the options module stays import-cycle-free
#: below the pipeline).
_SPARSE_MODES = ("auto", "dense", "sparse")


class _Unset:
    """Sentinel distinguishing "keyword not passed" from an explicit ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()


@dataclass(frozen=True)
class ExecutionOptions:
    """How a DEFA pipeline executes — independent of *what* it computes.

    Every field defaults to "inherit": ``None`` means the consuming layer
    keeps its own default (``sparse_mode`` ``"auto"``, backend resolution
    chain unchanged, the wrapped config's query-pruning flag).  The object is
    frozen, hashable and picklable (pass backend *names*, not backend
    objects, when it must cross a process boundary, e.g. inside a
    :class:`~repro.engine.serving.ModelBankSpec`).

    Parameters
    ----------
    sparse_mode:
        ``"auto"`` / ``"dense"`` / ``"sparse"`` execution-path switch (see
        :data:`repro.core.pipeline.SPARSE_MODES`), or ``None`` to keep the
        consumer's default (``"auto"``).
    kernel_backend:
        Kernel-backend specification — a name from
        :data:`repro.kernels.KERNEL_BACKENDS`, a backend object, or ``None``
        to follow the ``config.kernel_backend`` → process-default resolution
        chain.
    collect_details:
        Keep per-block attention outputs (:class:`~repro.core.encoder_runner.
        DEFAEncoderRunner` forwards) / the integer sampling trace
        (``MSDeformAttn.forward_detailed``).  Detail collection disables the
        execution-plan arenas, since the details must outlive the forward.
    enable_query_pruning:
        Override :attr:`~repro.core.config.DEFAConfig.enable_query_pruning`
        at construction time (``None`` keeps the config's value).  Only
        layers that *own* a config honor it — per-call surfaces
        (``MSDeformAttn.forward_detailed``, :func:`~repro.engine.batching.
        defa_forward_fn`) reject it, because the pruning projections are
        baked in when the runner is built.
    machine_profile:
        Host-calibrated auto-dispatch profile (PR 9): a
        :class:`~repro.kernels.MachineProfile`, ``"reference"``, a path to a
        profile JSON file, or ``None`` to follow the process-default active
        profile (``REPRO_MACHINE_PROFILE``, falling back to the committed
        reference constants).  Resolved once at construction by the owning
        layer via :func:`~repro.kernels.resolve_profile`; per-call surfaces
        reject it.  Profiles move *dispatch decisions* (which
        equivalence-tested dense/sparse path runs), never the numerics of a
        chosen path.  A new field, not a legacy keyword — there is no
        ``machine_profile=`` shim, and ``tools/check_deprecated_kwargs.py``
        keeps it that way.
    """

    sparse_mode: str | None = None
    kernel_backend: object | None = None
    collect_details: bool = False
    enable_query_pruning: bool | None = None
    machine_profile: "MachineProfile | str | None" = None

    def __post_init__(self) -> None:
        if self.sparse_mode is not None and self.sparse_mode not in _SPARSE_MODES:
            raise ValueError(
                f"sparse_mode must be one of {_SPARSE_MODES} or None, "
                f"got {self.sparse_mode!r}"
            )
        if isinstance(self.kernel_backend, str) and (
            self.kernel_backend not in KERNEL_BACKENDS
        ):
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, a backend "
                f"object or None, got {self.kernel_backend!r}"
            )
        if self.machine_profile is not None and not isinstance(
            self.machine_profile, (str, MachineProfile)
        ):
            raise TypeError(
                "machine_profile must be a MachineProfile, 'reference', a "
                "profile JSON path, or None, got "
                f"{type(self.machine_profile).__name__}"
            )

    def with_overrides(self, **kwargs) -> "ExecutionOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Call sites already warned about, keyed ``(filename, lineno, owner)`` — the
#: deprecation fires exactly once per site so a shim inside a hot loop does
#: not flood the log.  :func:`reset_deprecation_warnings` clears it (tests).
_WARNED_CALL_SITES: set[tuple[str, int, str]] = set()


def reset_deprecation_warnings() -> None:
    """Forget which call sites were warned (test helper)."""
    _WARNED_CALL_SITES.clear()


def _warn_deprecated(owner: str, keywords: list[str], stacklevel: int) -> None:
    frame = sys._getframe(stacklevel - 1)
    site = (frame.f_code.co_filename, frame.f_lineno, owner)
    if site in _WARNED_CALL_SITES:
        return
    _WARNED_CALL_SITES.add(site)
    warnings.warn(
        f"passing {', '.join(sorted(keywords))} to {owner} is deprecated; "
        f"pass options=ExecutionOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def normalize_execution_options(
    options: ExecutionOptions | str | None = None,
    *,
    owner: str,
    sparse_mode=_UNSET,
    backend=_UNSET,
    collect_details=_UNSET,
    stacklevel: int = 3,
) -> ExecutionOptions:
    """Coerce the (options, legacy keywords) surface into one object.

    The single normalization point of the execution-options API (the
    ``normalize_mask`` precedent): every shimmed signature calls this first
    and only ever sees an :class:`ExecutionOptions` afterwards.

    * ``options`` may be an :class:`ExecutionOptions` (the supported path),
      ``None`` (all defaults), or — for backward compatibility with the old
      positional signatures — a bare ``sparse_mode`` string.
    * The legacy keywords (``sparse_mode=``, ``backend=``, and where the old
      signature had it, ``collect_details=``) still work but emit a
      :class:`DeprecationWarning` once per call site, and cannot be combined
      with an explicit ``options`` object.
    """
    legacy = {}
    if isinstance(options, str):
        legacy["sparse_mode"] = options
        options = None
    if sparse_mode is not _UNSET:
        legacy["sparse_mode"] = sparse_mode
    if backend is not _UNSET:
        legacy["backend"] = backend
    if collect_details is not _UNSET:
        legacy["collect_details"] = collect_details
    if options is not None:
        if legacy:
            raise TypeError(
                f"{owner}: cannot combine options= with the deprecated "
                f"keyword(s) {sorted(legacy)}"
            )
        if not isinstance(options, ExecutionOptions):
            raise TypeError(
                f"{owner}: options must be an ExecutionOptions, "
                f"got {type(options).__name__}"
            )
        return options
    if not legacy:
        return ExecutionOptions()
    _warn_deprecated(owner, list(legacy), stacklevel + 1)
    return ExecutionOptions(
        sparse_mode=legacy.get("sparse_mode"),
        kernel_backend=legacy.get("backend"),
        collect_details=bool(legacy.get("collect_details", False)),
    )
