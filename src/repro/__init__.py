"""DEFA reproduction: pruning-assisted multi-scale deformable attention acceleration.

This package re-implements the full system described in

    "DEFA: Efficient Deformable Attention Acceleration via Pruning-Assisted
    Grid-Sampling and Multi-Scale Parallel Processing" (DAC 2024)

entirely in NumPy:

* :mod:`repro.nn` — a small NumPy neural-network substrate with the
  multi-scale deformable attention (MSDeformAttn) operator and the
  Deformable-DETR / DN-DETR / DINO encoder workloads.
* :mod:`repro.quant` — fake quantization (INT8 / INT12) used by the paper.
* :mod:`repro.core` — the paper's algorithmic contribution: frequency-weighted
  feature-map pruning (FWP), probability-aware point pruning (PAP), level-wise
  range narrowing, and the combined DEFA attention pipeline.
* :mod:`repro.hardware` — a cycle-approximate simulator of the DEFA
  accelerator (reconfigurable PE array, banked SRAM, HBM2, energy/area models).
* :mod:`repro.baselines` — GPU roofline cost models, Faster R-CNN reference,
  DeformConv workload comparison and published ASIC platform specs.
* :mod:`repro.workloads` — synthetic COCO-like detection workloads and
  sampling-trace generation.
* :mod:`repro.eval` — detection metrics, fidelity metrics, pruning statistics
  and the GPU latency profiler.
* :mod:`repro.experiments` — one module per paper figure/table.
"""

from repro.version import __version__

from repro.core.config import DEFAConfig
from repro.core.pipeline import DEFAAttention
from repro.nn.msdeform_attn import MSDeformAttn
from repro.workloads.specs import WorkloadSpec, get_workload, list_workloads

__all__ = [
    "__version__",
    "DEFAConfig",
    "DEFAAttention",
    "MSDeformAttn",
    "WorkloadSpec",
    "get_workload",
    "list_workloads",
]
