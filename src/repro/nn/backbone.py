"""Synthetic FPN backbone: images -> multi-scale feature pyramids.

The paper feeds COCO images through a ResNet-50 + FPN backbone to obtain a
four-level feature pyramid (strides 8/16/32/64).  Offline we cannot run the
trained backbone, so this module builds a lightweight deterministic stand-in:

1. each pyramid level is produced by average-pooling the image down to the
   level resolution (``ceil(H / stride)`` as in FPN),
2. a small set of hand-crafted per-pixel statistics (colour channels, local
   contrast, gradient magnitude) is computed, and
3. a shared random linear projection lifts those statistics to ``d_model``
   channels, followed by a GELU.

The result preserves the property the DEFA algorithm depends on: feature
energy is concentrated around objects, so the sampled-frequency distribution
over fmap pixels is non-uniform (Sec. 3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.modules import Linear
from repro.nn.tensor_utils import FLOAT_DTYPE, gelu
from repro.utils.rng import as_rng
from repro.utils.shapes import LevelShape, make_level_shapes

NUM_IMAGE_STATS = 6
"""Per-pixel statistics fed to the projection: r, g, b, luminance, local
contrast and gradient magnitude."""


@dataclass
class FeaturePyramid:
    """Multi-scale features produced by the backbone.

    Attributes
    ----------
    levels:
        List of per-level feature maps of shape ``(H_l, W_l, D)``.
    spatial_shapes:
        The corresponding :class:`LevelShape` list.
    flat:
        The flattened ``(N_in, D)`` token matrix (levels concatenated in
        order), i.e. the ``X`` input of MSDeformAttn.
    """

    levels: list[np.ndarray]
    spatial_shapes: list[LevelShape]
    flat: np.ndarray


def _average_pool(image: np.ndarray, out_height: int, out_width: int) -> np.ndarray:
    """Average-pool ``(H, W, C)`` to ``(out_height, out_width, C)``.

    Uses area-style pooling over an index partition, which handles output
    sizes that do not divide the input evenly.
    """
    height, width = image.shape[:2]
    row_edges = np.linspace(0, height, out_height + 1).astype(int)
    col_edges = np.linspace(0, width, out_width + 1).astype(int)
    out = np.zeros((out_height, out_width, image.shape[2]), dtype=FLOAT_DTYPE)
    for i in range(out_height):
        r0, r1 = row_edges[i], max(row_edges[i + 1], row_edges[i] + 1)
        for j in range(out_width):
            c0, c1 = col_edges[j], max(col_edges[j + 1], col_edges[j] + 1)
            out[i, j] = image[r0:r1, c0:c1].mean(axis=(0, 1))
    return out


def _image_statistics(image: np.ndarray) -> np.ndarray:
    """Per-pixel statistics of an RGB image: (H, W, NUM_IMAGE_STATS)."""
    image = np.asarray(image, dtype=FLOAT_DTYPE)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("image must have shape (H, W, 3)")
    luminance = image.mean(axis=2)
    grad_y = np.abs(np.diff(luminance, axis=0, prepend=luminance[:1]))
    grad_x = np.abs(np.diff(luminance, axis=1, prepend=luminance[:, :1]))
    gradient = grad_x + grad_y
    mean = luminance.mean()
    contrast = np.abs(luminance - mean)
    stats = np.concatenate(
        [image, luminance[..., None], contrast[..., None], gradient[..., None]], axis=2
    )
    return stats.astype(FLOAT_DTYPE)


class SyntheticFPNBackbone:
    """Deterministic image-to-pyramid feature extractor.

    Parameters
    ----------
    d_model:
        Output channel dimension of every pyramid level.
    strides:
        Backbone strides producing the pyramid (one level per stride).
    feature_gain:
        Scale applied after the projection so the features have roughly unit
        variance (keeps the downstream encoder numerically comparable to a
        trained model).
    rng:
        Seed or generator for the projection weights.
    """

    def __init__(
        self,
        d_model: int = 256,
        strides: tuple[int, ...] = (8, 16, 32, 64),
        feature_gain: float = 4.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not strides:
            raise ValueError("at least one stride is required")
        rng = as_rng(rng)
        self.d_model = d_model
        self.strides = tuple(strides)
        self.feature_gain = float(feature_gain)
        self.projection = Linear(NUM_IMAGE_STATS, d_model, rng=rng)
        # Per-level scale so deeper levels are not systematically weaker.
        self.level_scales = np.linspace(1.0, 1.5, len(strides)).astype(FLOAT_DTYPE)

    @property
    def num_levels(self) -> int:
        """Number of pyramid levels produced."""
        return len(self.strides)

    def level_shapes(self, image_height: int, image_width: int) -> list[LevelShape]:
        """Pyramid shapes for an input image of the given size."""
        return make_level_shapes(image_height, image_width, self.strides)

    def forward(self, image: np.ndarray) -> FeaturePyramid:
        """Extract the multi-scale feature pyramid of *image* (``(H, W, 3)``)."""
        stats = _image_statistics(image)
        shapes = self.level_shapes(image.shape[0], image.shape[1])
        levels = []
        for lvl, shape in enumerate(shapes):
            pooled = _average_pool(stats, shape.height, shape.width)
            features = gelu(self.projection(pooled)) * self.feature_gain * self.level_scales[lvl]
            levels.append(features.astype(FLOAT_DTYPE))
        flat = np.concatenate([lv.reshape(-1, self.d_model) for lv in levels], axis=0)
        return FeaturePyramid(levels=levels, spatial_shapes=shapes, flat=flat)

    __call__ = forward
