"""Model configurations for the paper's three benchmark networks.

The paper evaluates DEFA on the MSDeformAttn layers in the encoders of
Deformable DETR, DN-DETR and DINO (object detection on COCO 2017).  This
module records their architectural hyper-parameters along with the published
reference numbers used by the experiment harness (baseline AP, AP after the
DEFA algorithm modifications, workload GFLOPs, GPU latency fractions).

Architectural details that the paper does not state explicitly (e.g. the FFN
width of each model's encoder) follow the official open-source configurations
of the respective models and are marked as approximations in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.encoder import DeformableEncoder
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class PublishedNumbers:
    """Reference numbers reported by the paper for one benchmark model."""

    baseline_ap: float
    """COCO AP of the unmodified model (Fig. 6a, "Baseline")."""

    defa_ap: float
    """COCO AP after FWP + PAP + range narrowing + INT12 (Fig. 6a, "DEFA")."""

    msgs_latency_fraction: float
    """Fraction of MSDeformAttn GPU latency spent in MSGS + aggregation (Fig. 1b)."""

    sampling_point_reduction: float
    """Fraction of sampling points removed by PAP (Fig. 6b)."""

    fmap_pixel_reduction: float
    """Fraction of fmap pixels removed by FWP (Fig. 6b)."""

    flops_reduction: float
    """Fraction of MSDeformAttn computation removed overall (Fig. 6b)."""

    msgs_throughput_boost: float
    """Inter-level over intra-level MSGS throughput (Fig. 7a)."""

    speedup_2080ti: float
    """DEFA speedup over RTX 2080Ti (Fig. 9a)."""

    speedup_3090ti: float
    """DEFA speedup over RTX 3090Ti (Fig. 9a)."""

    ee_improvement_2080ti: float
    """DEFA energy-efficiency improvement over RTX 2080Ti (Fig. 9b)."""

    ee_improvement_3090ti: float
    """DEFA energy-efficiency improvement over RTX 3090Ti (Fig. 9b)."""


@dataclass(frozen=True)
class ModelConfig:
    """Architecture + workload description of one benchmark network."""

    name: str
    """Canonical short name ("deformable_detr", "dn_detr", "dino")."""

    display_name: str
    """Name as it appears in the paper's figures."""

    d_model: int = 256
    num_heads: int = 8
    num_levels: int = 4
    num_points: int = 4
    num_encoder_layers: int = 6
    ffn_dim: int = 1024
    activation: str = "relu"

    image_height: int = 800
    image_width: int = 1066
    strides: tuple[int, ...] = (8, 16, 32, 64)

    end_to_end_gflops: float = 173.0
    """Published end-to-end workload of the full detector (GFLOPs)."""

    published: PublishedNumbers = field(default=None)  # type: ignore[assignment]

    def encoder_kwargs(self) -> dict:
        """Keyword arguments for :class:`DeformableEncoder` construction."""
        return {
            "num_layers": self.num_encoder_layers,
            "d_model": self.d_model,
            "num_heads": self.num_heads,
            "num_levels": self.num_levels,
            "num_points": self.num_points,
            "ffn_dim": self.ffn_dim,
            "activation": self.activation,
        }


_MODEL_CONFIGS: dict[str, ModelConfig] = {
    "deformable_detr": ModelConfig(
        name="deformable_detr",
        display_name="De DETR",
        ffn_dim=1024,
        end_to_end_gflops=173.0,
        published=PublishedNumbers(
            baseline_ap=46.9,
            defa_ap=45.5,
            msgs_latency_fraction=0.6328,
            sampling_point_reduction=0.86,
            fmap_pixel_reduction=0.42,
            flops_reduction=0.52,
            msgs_throughput_boost=3.09,
            speedup_2080ti=11.8,
            speedup_3090ti=31.9,
            ee_improvement_2080ti=23.2,
            ee_improvement_3090ti=37.7,
        ),
    ),
    "dn_detr": ModelConfig(
        name="dn_detr",
        display_name="DN-DETR",
        ffn_dim=2048,
        end_to_end_gflops=195.0,
        published=PublishedNumbers(
            baseline_ap=49.4,
            defa_ap=47.9,
            msgs_latency_fraction=0.6036,
            sampling_point_reduction=0.83,
            fmap_pixel_reduction=0.44,
            flops_reduction=0.53,
            msgs_throughput_boost=3.02,
            speedup_2080ti=10.1,
            speedup_3090ti=29.4,
            ee_improvement_2080ti=20.3,
            ee_improvement_3090ti=35.3,
        ),
    ),
    "dino": ModelConfig(
        name="dino",
        display_name="DINO",
        ffn_dim=2048,
        end_to_end_gflops=279.0,
        published=PublishedNumbers(
            baseline_ap=50.8,
            defa_ap=49.4,
            msgs_latency_fraction=0.6331,
            sampling_point_reduction=0.82,
            fmap_pixel_reduction=0.44,
            flops_reduction=0.53,
            msgs_throughput_boost=3.06,
            speedup_2080ti=10.8,
            speedup_3090ti=30.2,
            ee_improvement_2080ti=21.6,
            ee_improvement_3090ti=36.3,
        ),
    ),
}

MODEL_NAMES: tuple[str, ...] = tuple(_MODEL_CONFIGS)
"""Canonical names of the three benchmark models."""


def get_model_config(name: str) -> ModelConfig:
    """Look up a :class:`ModelConfig` by canonical or display name."""
    key = name.lower().replace("-", "_").replace(" ", "_")
    aliases = {
        "de_detr": "deformable_detr",
        "dedetr": "deformable_detr",
        "dn_deformable_detr": "dn_detr",
        "dndetr": "dn_detr",
    }
    key = aliases.get(key, key)
    if key not in _MODEL_CONFIGS:
        raise KeyError(f"unknown model {name!r}; known models: {sorted(_MODEL_CONFIGS)}")
    return _MODEL_CONFIGS[key]


def list_model_configs() -> list[ModelConfig]:
    """All benchmark model configurations, in the paper's order."""
    return [_MODEL_CONFIGS[name] for name in MODEL_NAMES]


def build_encoder(
    config: ModelConfig,
    attention_sharpness: float = 2.5,
    offset_scale: float = 2.0,
    rng: np.random.Generator | int | None = None,
) -> DeformableEncoder:
    """Construct the deformable encoder of *config* with synthetic weights."""
    rng = as_rng(rng)
    return DeformableEncoder(
        attention_sharpness=attention_sharpness,
        offset_scale=offset_scale,
        rng=rng,
        **config.encoder_kwargs(),
    )
