"""The multi-scale deformable attention (MSDeformAttn) operator.

This is the operator DEFA accelerates (Eq. 1 of the paper):

.. math::

    \\mathrm{MSDeformAttn}(Q, P, X) = \\mathrm{Concat}(H_0, ..., H_{N_h-1}) W^O
    \\qquad
    H_{ij} = \\mathrm{Softmax}(Q_i W^A_j)\\, V_j(P_i + \\Delta P_{ij})

with ``V = X W^V`` and ``\\Delta P = Q W^S``.  The module mirrors the
structure of the official Deformable DETR implementation: per-head value
projection, a sampling-offset head, an attention-weight head (softmax over
all ``N_l * N_p`` points of a head) and an output projection.

Because no trained checkpoints are available offline, the module is
initialized with *structured synthetic weights*: the sampling-offset bias
follows the directional grid initialization of Deformable DETR and the
attention-weight head gets a configurable sharpness so that the softmax
distribution is realistically peaked (the property PAP exploits — in trained
models over 80 % of attention probabilities are near zero).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.grid_sample import (
    BatchedSamplingTrace,
    SamplingTrace,
    ms_deform_attn_core,
    ms_deform_attn_core_batched,
    ms_deform_attn_core_sparse,
    ms_deform_attn_core_sparse_batched,
    ms_deform_attn_from_trace_batched,
    ms_deform_attn_sparse_from_trace,
    ms_deform_attn_sparse_from_trace_batched,
    multi_scale_neighbors,
    multi_scale_neighbors_batched,
    use_sparse_gather,
)
from repro.kernels import ExecutionOptions, normalize_execution_options
from repro.kernels.options import _UNSET
from repro.nn.modules import Linear, Module
from repro.nn.tensor_utils import FLOAT_DTYPE, softmax
from repro.utils.rng import as_rng
from repro.utils.shapes import LevelShape, total_pixels


@dataclass
class MSDeformAttnOutput:
    """Full set of intermediate tensors produced by one MSDeformAttn forward.

    The DEFA pipeline and the hardware simulator both need access to the
    intermediates (attention probabilities for PAP, sampling locations for
    FWP/banking), so :meth:`MSDeformAttn.forward_detailed` returns this record
    rather than only the output features.
    """

    output: np.ndarray
    """Final output of shape ``(N_q, D)`` (after the output projection).

    Batched forwards prepend a batch axis to every tensor in this record
    (``(B, N_q, D)`` here, ``(B, N_q, N_h, N_l, N_p)`` for the attention
    weights, and so on).
    """

    attention_weights: np.ndarray
    """Softmax attention probabilities, shape ``(N_q, N_h, N_l, N_p)``."""

    sampling_locations: np.ndarray
    """Normalized sampling locations, shape ``(N_q, N_h, N_l, N_p, 2)``."""

    sampling_offsets: np.ndarray
    """Raw sampling offsets (before normalization), same shape as locations."""

    value: np.ndarray
    """Projected value tensor of shape ``(N_in, N_h, D_h)``."""

    trace: SamplingTrace | BatchedSamplingTrace | None = None
    """Optional integer-level sampling trace (neighbour indices / weights)."""


class MSDeformAttn(Module):
    """Multi-scale deformable attention module.

    Inputs may be single images (``(N_q, D)`` queries / ``(N_in, D)`` values)
    or same-shape batches (``(B, N_q, D)`` / ``(B, N_in, D)``); the batched
    path is fully vectorized and equivalent to looping over the images.

    Parameters
    ----------
    d_model:
        Hidden dimension of queries / values.
    num_heads:
        Number of attention heads ``N_h``.
    num_levels:
        Number of pyramid levels ``N_l``.
    num_points:
        Number of sampling points per level per head ``N_p``.
    attention_sharpness:
        Scale applied to the attention-weight head so that softmax outputs are
        peaked; larger values concentrate probability mass on fewer points.
    offset_scale:
        Standard deviation (in pixels of the sampled level) of the
        query-dependent part of the sampling offsets.
    rng:
        Seed or generator for the synthetic weight initialization.
    """

    def __init__(
        self,
        d_model: int = 256,
        num_heads: int = 8,
        num_levels: int = 4,
        num_points: int = 4,
        attention_sharpness: float = 2.5,
        offset_scale: float = 2.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if d_model % num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        rng = as_rng(rng)
        self.d_model = d_model
        self.num_heads = num_heads
        self.num_levels = num_levels
        self.num_points = num_points
        self.d_head = d_model // num_heads
        self.attention_sharpness = float(attention_sharpness)
        self.offset_scale = float(offset_scale)

        self.value_proj = Linear(d_model, d_model, rng=rng)
        self.output_proj = Linear(d_model, d_model, rng=rng)
        self.sampling_offsets = Linear(d_model, num_heads * num_levels * num_points * 2, rng=rng)
        self.attention_weights = Linear(d_model, num_heads * num_levels * num_points, rng=rng)
        self._init_synthetic_weights(rng)

    def _init_synthetic_weights(self, rng: np.random.Generator) -> None:
        """Structured initialization mimicking a trained Deformable DETR layer."""
        n_h, n_l, n_p = self.num_heads, self.num_levels, self.num_points
        # Directional grid bias for sampling offsets (Deformable DETR init):
        # head h points in direction 2*pi*h/N_h, point p has magnitude (p+1).
        thetas = np.arange(n_h, dtype=FLOAT_DTYPE) * (2.0 * np.pi / n_h)
        grid = np.stack([np.cos(thetas), np.sin(thetas)], axis=-1)  # (N_h, 2)
        grid = grid / np.abs(grid).max(axis=-1, keepdims=True)
        bias = np.tile(grid[:, None, None, :], (1, n_l, n_p, 1))
        bias = bias * (np.arange(n_p, dtype=FLOAT_DTYPE) + 1.0)[None, None, :, None]
        self.sampling_offsets.bias = bias.reshape(-1).astype(FLOAT_DTYPE)
        # Query-dependent offset component with a controlled magnitude.
        self.sampling_offsets.weight = (
            rng.standard_normal(self.sampling_offsets.weight.shape)
            * (self.offset_scale / np.sqrt(self.d_model))
        ).astype(FLOAT_DTYPE)
        # Peaked attention logits: scale the random weights so that the logit
        # standard deviation is roughly `attention_sharpness`.
        self.attention_weights.weight = (
            rng.standard_normal(self.attention_weights.weight.shape)
            * (self.attention_sharpness / np.sqrt(self.d_model))
        ).astype(FLOAT_DTYPE)
        self.attention_weights.bias = (
            rng.standard_normal(self.attention_weights.bias.shape) * 0.5
        ).astype(FLOAT_DTYPE)

    # ------------------------------------------------------------------ API

    def project_attention_logits(self, query: np.ndarray) -> np.ndarray:
        """Raw attention logits ``Q W^A`` of shape ``(..., N_q, N_h, N_l * N_p)``.

        ``query`` may carry arbitrary leading axes (e.g. a batch axis) before
        the trailing ``(N_q, D)`` pair.
        """
        logits = self.attention_weights(query)
        return logits.reshape(
            query.shape[:-1] + (self.num_heads, self.num_levels * self.num_points)
        )

    def attention_probabilities(self, query: np.ndarray) -> np.ndarray:
        """Softmax attention probabilities of shape ``(..., N_q, N_h, N_l, N_p)``."""
        logits = self.project_attention_logits(query)
        probs = softmax(logits, axis=-1)
        return probs.reshape(
            query.shape[:-1] + (self.num_heads, self.num_levels, self.num_points)
        )

    def project_sampling_offsets(self, query: np.ndarray) -> np.ndarray:
        """Raw sampling offsets ``Q W^S`` of shape ``(..., N_q, N_h, N_l, N_p, 2)``."""
        offsets = self.sampling_offsets(query)
        return offsets.reshape(
            query.shape[:-1] + (self.num_heads, self.num_levels, self.num_points, 2)
        )

    def compute_sampling_locations(
        self,
        reference_points: np.ndarray,
        sampling_offsets: np.ndarray,
        spatial_shapes: list[LevelShape],
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Combine reference points and offsets into normalized locations.

        ``reference_points`` has shape ``(N_q, N_l, 2)`` (normalized); offsets
        are expressed in pixels of their level and divided by the level size,
        following the Deformable DETR convention.

        Batched offsets ``(B, N_q, N_h, N_l, N_p, 2)`` are supported with
        either shared ``(N_q, N_l, 2)`` or per-image ``(B, N_q, N_l, 2)``
        reference points.  ``out`` (same shape as the offsets, may alias
        them) receives the locations without allocating — bit-identical to
        the allocating path (same divide-then-add order).
        """
        if len(spatial_shapes) != self.num_levels:
            raise ValueError("spatial_shapes length must equal num_levels")
        normalizer = np.array(
            [[s.width, s.height] for s in spatial_shapes], dtype=FLOAT_DTYPE
        )  # (N_l, 2)
        ref = np.asarray(reference_points, dtype=FLOAT_DTYPE)
        # Insert the head and point axes: (..., N_q, N_l, 2) -> (..., N_q, 1, N_l, 1, 2).
        ref = ref[..., :, None, :, None, :]
        if out is None:
            return ref + sampling_offsets / normalizer[:, None, :]
        np.divide(sampling_offsets, normalizer[:, None, :], out=out)
        np.add(ref, out, out=out)
        return out

    def forward_detailed(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
        with_trace: bool = False,
        point_mask: np.ndarray | None = None,
        query_mask: np.ndarray | None = None,
        options: ExecutionOptions | None = None,
        *,
        sparse_mode=_UNSET,
        backend=_UNSET,
    ) -> MSDeformAttnOutput:
        """Full forward pass returning intermediates.

        Parameters
        ----------
        query:
            ``(N_q, D)`` query features (content + positional embedding), or a
            batch ``(B, N_q, D)``.
        reference_points:
            ``(N_q, N_l, 2)`` normalized reference points; batched inputs may
            share them or pass per-image points ``(B, N_q, N_l, 2)``.
        value_input:
            ``(N_in, D)`` flattened multi-scale feature maps ``X``, or a batch
            ``(B, N_in, D)`` matching the query batch.
        spatial_shapes:
            Pyramid level shapes whose pixel counts sum to ``N_in``.
        with_trace:
            If ``True``, also compute the integer sampling trace.
        point_mask:
            Optional boolean keep-mask of shape ``(N_q, N_h, N_l, N_p)``
            (batched: with a leading ``B``); ``False`` points contribute
            nothing, as under PAP pruning.
        query_mask:
            Optional boolean keep-mask of shape ``(N_q,)`` (batched:
            ``(B, N_q)``) over whole queries, as under FWP query pruning:
            every point of a masked-out query is pruned and its output row is
            the output-projection bias.  On the sparse path the offset and
            attention-head projections run row-compacted over the kept
            queries only, and the recorded ``attention_weights`` /
            ``sampling_offsets`` rows of pruned queries are zero-filled (the
            dense path records their true projections; outputs agree either
            way since every pruned point contributes nothing).
        options:
            Per-call :class:`~repro.kernels.ExecutionOptions`.
            ``sparse_mode`` (``None`` means ``"auto"``) controls whether a
            supplied ``point_mask`` executes through the compacted
            (pruned-points-dropped-before-gather) kernels — under ``"auto"``
            the dense kernels always run when no mask is given, so existing
            callers are unchanged, and ``"sparse"`` forces the compacted
            kernels even without a mask (all points kept — useful for
            testing and benchmarking the kernels themselves).
            ``kernel_backend`` overrides the kernel backend for the
            compacted kernels (see :mod:`repro.kernels`); ``None`` follows
            the process default; the backends are bit-identical, so this
            only affects wall clock.  ``collect_details=True`` implies
            ``with_trace``.  ``enable_query_pruning`` is rejected — this
            module has no DEFA config to apply it to.  The legacy
            ``sparse_mode=`` / ``backend=`` keywords are deprecated shims.

        Batched inputs take the fully vectorized kernels (no per-image Python
        loop); every field of the result gains a leading batch axis and the
        trace becomes a :class:`~repro.nn.grid_sample.BatchedSamplingTrace`.
        """
        options = normalize_execution_options(
            options,
            owner="MSDeformAttn.forward_detailed",
            sparse_mode=sparse_mode,
            backend=backend,
        )
        if options.enable_query_pruning is not None:
            raise ValueError(
                "enable_query_pruning does not apply to a bare MSDeformAttn; "
                "set it on the DEFAConfig of the wrapping DEFAAttention"
            )
        sparse_mode = options.sparse_mode or "auto"
        backend = options.kernel_backend
        with_trace = bool(with_trace) or options.collect_details
        query = np.asarray(query, dtype=FLOAT_DTYPE)
        value_input = np.asarray(value_input, dtype=FLOAT_DTYPE)
        if query.ndim not in (2, 3):
            raise ValueError("query must have shape (N_q, D) or (B, N_q, D)")
        if value_input.ndim != query.ndim:
            raise ValueError("query and value_input must both be batched or both single")
        batched = query.ndim == 3
        if batched and value_input.shape[0] != query.shape[0]:
            raise ValueError("query and value_input batch sizes differ")
        n_in = value_input.shape[-2]
        if n_in != total_pixels(spatial_shapes):
            raise ValueError("value_input length does not match spatial_shapes")

        value = self.value_proj(value_input).reshape(
            value_input.shape[:-1] + (self.num_heads, self.d_head)
        )

        points_shape = query.shape[:-1] + (self.num_heads, self.num_levels, self.num_points)
        if point_mask is not None:
            point_mask = np.asarray(point_mask, dtype=bool)
            if point_mask.shape != points_shape:
                raise ValueError("point_mask shape must match the attention weights")
        effective_mask = point_mask
        if query_mask is not None:
            query_mask = np.asarray(query_mask, dtype=bool)
            if query_mask.shape != query.shape[:-1]:
                raise ValueError("query_mask must have shape (N_q,) (batched: (B, N_q))")
            keep_rows = query_mask[..., None, None, None]
            if point_mask is None:
                effective_mask = np.broadcast_to(keep_rows, points_shape)
            else:
                effective_mask = point_mask & keep_rows
        per_image_points = int(np.prod(points_shape[1:] if batched else points_shape))
        sparse = use_sparse_gather(
            effective_mask, per_image_points * 4, sparse_mode, batched=batched
        )

        if sparse and query_mask is not None:
            # Row-compacted query-side projections: pruned queries never
            # reach the offset / attention heads (their records stay zero).
            kept = np.flatnonzero(query_mask.reshape(-1))
            q_rows = query.reshape(-1, query.shape[-1])[kept]
            attention = np.zeros(points_shape, dtype=FLOAT_DTYPE)
            offsets = np.zeros(points_shape + (2,), dtype=FLOAT_DTYPE)
            if kept.size:
                attention.reshape((-1,) + points_shape[-3:])[kept] = (
                    self.attention_probabilities(q_rows)
                )
                offsets.reshape((-1,) + points_shape[-3:] + (2,))[kept] = (
                    self.project_sampling_offsets(q_rows)
                )
        else:
            attention = self.attention_probabilities(query)
            offsets = self.project_sampling_offsets(query)
        locations = self.compute_sampling_locations(reference_points, offsets, spatial_shapes)
        point_mask = effective_mask

        trace = None
        if batched:
            if with_trace:
                # Build the trace once and reuse it for the kernel — the
                # neighbour computation is the non-gather setup cost.
                trace = multi_scale_neighbors_batched(spatial_shapes, locations)
                if sparse:
                    head_outputs = ms_deform_attn_sparse_from_trace_batched(
                        value, trace, attention, point_mask=point_mask
                    )
                else:
                    head_outputs = ms_deform_attn_from_trace_batched(
                        value, trace, attention, point_mask=point_mask
                    )
            elif sparse:
                head_outputs = ms_deform_attn_core_sparse_batched(
                    value,
                    spatial_shapes,
                    locations,
                    attention,
                    point_mask=point_mask,
                    backend=backend,
                )
            else:
                head_outputs = ms_deform_attn_core_batched(
                    value, spatial_shapes, locations, attention, point_mask=point_mask
                )
        else:
            if with_trace:
                trace = multi_scale_neighbors(spatial_shapes, locations)
            if sparse and trace is not None:
                head_outputs = ms_deform_attn_sparse_from_trace(
                    value, trace, attention, point_mask=point_mask
                )
            elif sparse:
                head_outputs = ms_deform_attn_core_sparse(
                    value,
                    spatial_shapes,
                    locations,
                    attention,
                    point_mask=point_mask,
                    backend=backend,
                )
            else:
                head_outputs = ms_deform_attn_core(
                    value, spatial_shapes, locations, attention, point_mask=point_mask
                )
        output = self.output_proj(head_outputs)
        return MSDeformAttnOutput(
            output=output.astype(FLOAT_DTYPE),
            attention_weights=attention,
            sampling_locations=locations,
            sampling_offsets=offsets,
            value=value,
            trace=trace,
        )

    def forward(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
    ) -> np.ndarray:
        """Standard forward pass returning only the ``(N_q, D)`` output.

        Accepts single-image ``(N_q, D)`` or batched ``(B, N_q, D)`` inputs.
        """
        return self.forward_detailed(query, reference_points, value_input, spatial_shapes).output

    # ------------------------------------------------------------- analysis

    def flops(self, num_queries: int, num_tokens: int) -> dict[str, int]:
        """FLOP breakdown of one dense (unpruned) forward pass.

        Returns a dict with the per-operator FLOPs used by the FLOP analyzer
        and the GPU cost model: the four linear projections, the softmax and
        the MSGS + aggregation stage.
        """
        n_points_total = self.num_heads * self.num_levels * self.num_points
        sampling = {
            # 8 MAC-ish ops per bilinear interpolation per channel (Eq. 4: 3 mul + 7 add),
            # counted as 2*flops-per-mac equivalents plus the aggregation multiply-add.
            "msgs": int(num_queries * n_points_total * self.d_head * 10),
            "aggregation": int(2 * num_queries * n_points_total * self.d_head),
        }
        return {
            "value_proj": self.value_proj.flops(num_tokens),
            "sampling_offsets": self.sampling_offsets.flops(num_queries),
            "attention_weights": self.attention_weights.flops(num_queries),
            "output_proj": self.output_proj.flops(num_queries),
            "softmax": int(5 * num_queries * n_points_total),
            **sampling,
        }
