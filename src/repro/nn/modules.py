"""Minimal module system: parameter containers with a functional ``__call__``.

The substrate only needs inference, so modules hold NumPy parameter arrays and
implement ``forward``.  A tiny ``Module`` base class provides parameter
discovery (used by the quantization wrappers and the FLOP analyzer) without
pulling in any framework machinery.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor_utils import FLOAT_DTYPE, gelu, layer_norm, relu, xavier_uniform
from repro.utils.rng import as_rng


class Module:
    """Base class for all NN modules.

    Subclasses register parameters simply by assigning NumPy arrays to
    attributes and sub-modules by assigning :class:`Module` instances.
    :meth:`parameters` and :meth:`named_parameters` walk that structure.
    """

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def named_parameters(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Return ``{qualified_name: array}`` for every parameter in the tree."""
        params: dict[str, np.ndarray] = {}
        for name, value in vars(self).items():
            qualified = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            if isinstance(value, np.ndarray):
                params[qualified] = value
            elif isinstance(value, Module):
                params.update(value.named_parameters(qualified))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        params.update(item.named_parameters(f"{qualified}.{i}"))
        return params

    def parameters(self) -> list[np.ndarray]:
        """Return all parameter arrays in the module tree."""
        return list(self.named_parameters().values())

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    def named_modules(self, prefix: str = "") -> dict[str, "Module"]:
        """Return ``{qualified_name: module}`` for this module and all children."""
        modules: dict[str, Module] = {prefix or "": self}
        for name, value in vars(self).items():
            qualified = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Module):
                modules.update(value.named_modules(qualified))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        modules.update(item.named_modules(f"{qualified}.{i}"))
        return modules


class Linear(Module):
    """Affine map ``y = x @ weight + bias`` with Xavier-uniform initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = xavier_uniform(rng, in_features, out_features)
        self.bias = np.zeros(out_features, dtype=FLOAT_DTYPE) if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dimension {self.in_features}, got {x.shape[-1]}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """:meth:`forward` written into a caller-provided buffer.

        ``out`` must have shape ``x.shape[:-1] + (out_features,)`` and must
        not alias ``x``.  Bit-identical to :meth:`forward` (``np.matmul``
        with ``out=`` issues the same BLAS call — kernel choice depends on
        the row count, which is unchanged — and the in-place bias add is the
        same float operation); only the temporaries disappear.
        """
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dimension {self.in_features}, got {x.shape[-1]}"
            )
        np.matmul(x, self.weight, out=out)
        if self.bias is not None:
            out += self.bias
        return out

    def flops(self, num_rows: int) -> int:
        """Multiply-accumulate FLOPs (2 per MAC) for *num_rows* input rows."""
        return int(2 * num_rows * self.in_features * self.out_features)


class LayerNorm(Module):
    """Layer normalization over the last dimension with learnable scale/shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        if normalized_shape <= 0:
            raise ValueError("normalized_shape must be positive")
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = np.ones(normalized_shape, dtype=FLOAT_DTYPE)
        self.bias = np.zeros(normalized_shape, dtype=FLOAT_DTYPE)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return layer_norm(x, self.weight, self.bias, self.eps)

    def forward_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """:meth:`forward` written into ``out`` (same shape, not aliasing
        ``x``); bit-identical — see :func:`repro.nn.tensor_utils.layer_norm`.
        """
        return layer_norm(x, self.weight, self.bias, self.eps, out=out)

    def forward_rows(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Normalize only ``x[rows]`` of a ``(N, D)`` input.

        The row-compacted entry point of the block-sparse encoder (mirroring
        :meth:`repro.quant.qmodules.QuantizedLinear.forward_rows`): layer norm
        is a per-row operation, so the returned ``(N_kept, D)`` rows are
        *bit-identical* to ``forward(x)[rows]`` while the normalization work
        only runs on the surviving rows.
        """
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if x.ndim != 2:
            raise ValueError("forward_rows expects a (N, D) input")
        return layer_norm(x[rows], self.weight, self.bias, self.eps)

    def forward_rows_batched(self, x: np.ndarray, flat_rows: np.ndarray) -> np.ndarray:
        """Normalize selected rows of a ``(B, N, D)`` batch.

        ``flat_rows`` indexes the flattened ``(B * N)`` row axis.  Layer norm
        carries no cross-row or cross-image state, so the result is
        bit-identical to ``forward(x).reshape(B * N, D)[flat_rows]``.
        """
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if x.ndim != 3:
            raise ValueError("forward_rows_batched expects a (B, N, D) input")
        return layer_norm(
            x.reshape(-1, x.shape[-1])[flat_rows], self.weight, self.bias, self.eps
        )


class ReLU(Module):
    """Rectified linear unit activation module."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return relu(x)


class GELU(Module):
    """GELU activation module (tanh approximation)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return gelu(x)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        self.layers = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x


class FeedForward(Module):
    """Transformer feed-forward block: ``Linear -> activation -> Linear``."""

    def __init__(
        self,
        d_model: int,
        d_ffn: int,
        activation: str = "relu",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        rng = as_rng(rng)
        self.d_model = d_model
        self.d_ffn = d_ffn
        self.linear1 = Linear(d_model, d_ffn, rng=rng)
        self.linear2 = Linear(d_ffn, d_model, rng=rng)
        if activation == "relu":
            self.activation: Module = ReLU()
        elif activation == "gelu":
            self.activation = GELU()
        else:
            raise ValueError(f"unknown activation {activation!r}")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.linear2(self.activation(self.linear1(x)))

    def forward_into(
        self, x: np.ndarray, out: np.ndarray, hidden: np.ndarray
    ) -> np.ndarray:
        """:meth:`forward` through caller-provided buffers.

        ``hidden`` holds the ``(..., d_ffn)`` post-activation intermediate
        (the largest FFN temporary), ``out`` the ``(..., d_model)`` result;
        neither may alias ``x``.  Only the ReLU activation supports the
        in-place path (GELU's tanh chain is not expressible as one in-place
        ufunc), so GELU configurations fall back to :meth:`forward` for the
        activation while keeping the buffered matmuls.  Bit-identical to
        :meth:`forward` either way.
        """
        self.linear1.forward_into(x, hidden)
        if isinstance(self.activation, ReLU):
            np.maximum(hidden, 0.0, out=hidden)
        else:
            hidden = self.activation(hidden)
        return self.linear2.forward_into(hidden, out)

    def forward_rows(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Run the FFN only on ``x[rows]`` of a ``(N, D)`` input.

        Row-compacted entry point of the block-sparse encoder: both linears
        and the activation are per-row, so the returned ``(N_kept, D)`` rows
        are bit-identical to ``forward(x[rows])`` and agree with
        ``forward(x)[rows]`` to float32 matmul precision (BLAS may pick a
        different kernel for the compacted row count, which can move the last
        ulp of the matmul accumulations — the dense/sparse encoder paths are
        therefore held to the repo-standard 1e-5, not bit-equality).
        """
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if x.ndim != 2:
            raise ValueError("forward_rows expects a (N, D) input")
        return self.forward(x[rows])

    def forward_rows_batched(self, x: np.ndarray, flat_rows: np.ndarray) -> np.ndarray:
        """Run the FFN on selected rows of a ``(B, N, D)`` batch.

        ``flat_rows`` indexes the flattened ``(B * N)`` row axis; the kept
        rows of every image share one compacted matmul.  The FFN is unquantized
        and per-row, so no per-image state needs preserving (contrast
        :meth:`repro.quant.qmodules.QuantizedLinear.forward_rows_batched`).
        """
        x = np.asarray(x, dtype=FLOAT_DTYPE)
        if x.ndim != 3:
            raise ValueError("forward_rows_batched expects a (B, N, D) input")
        return self.forward(x.reshape(-1, x.shape[-1])[flat_rows])

    def flops(self, num_rows: int) -> int:
        """FLOPs of both projections for *num_rows* tokens."""
        return self.linear1.flops(num_rows) + self.linear2.flops(num_rows)
