"""Elementary tensor operations shared across the NN substrate.

All functions work on ``float32`` NumPy arrays and are written to be
numerically stable (softmax subtracts the row max, layer norm uses an epsilon).
"""

from __future__ import annotations

import numpy as np

FLOAT_DTYPE = np.float32


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along *axis*."""
    x = np.asarray(x, dtype=FLOAT_DTYPE)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def layer_norm(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    eps: float = 1e-5,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Layer normalization over the last dimension.

    With ``out`` (a float32 array of ``x.shape``, distinct from ``x``) the
    big elementwise passes run in-place into it — bit-identical to the
    allocating path (same operations in the same order; only the per-row
    mean/variance reductions still allocate, and those are ``D`` times
    smaller than the data).
    """
    x = np.asarray(x, dtype=FLOAT_DTYPE)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    if out is None:
        normalized = (x - mean) / np.sqrt(var + eps)
        return normalized * weight + bias
    np.subtract(x, mean, out=out)
    denom = np.sqrt(var + eps)
    np.divide(out, denom, out=out)
    np.multiply(out, weight, out=out)
    np.add(out, bias, out=out)
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=FLOAT_DTYPE), 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    x = np.asarray(x, dtype=FLOAT_DTYPE)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int, gain: float = 1.0) -> np.ndarray:
    """Xavier/Glorot uniform initialization for a ``(fan_in, fan_out)`` weight."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(FLOAT_DTYPE)


def normal_init(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Gaussian initialization with the given standard deviation."""
    return (rng.standard_normal(size=shape) * std).astype(FLOAT_DTYPE)


def cosine_similarity(a: np.ndarray, b: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity between *a* and *b* along *axis*."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    num = np.sum(a * b, axis=axis)
    den = np.linalg.norm(a, axis=axis) * np.linalg.norm(b, axis=axis)
    return num / np.maximum(den, eps)
