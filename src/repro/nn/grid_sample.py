"""Bilinear grid-sampling kernels for multi-scale deformable attention.

Three code paths are provided:

* a vectorized NumPy path used by the NN substrate
  (:func:`bilinear_sample_level`, :func:`ms_deform_attn_core`),
* an index-level path (:func:`bilinear_neighbors`,
  :func:`multi_scale_neighbors`) that exposes the integer neighbour pixels and
  interpolation weights of every sampling point.  The index-level path is what
  FWP frequency counting, the bank-conflict simulator and the fmap-reuse
  tracker consume — it corresponds to the memory accesses the accelerator
  actually performs, and
* a *sparse* path (:func:`ms_deform_attn_core_sparse`,
  :func:`ms_deform_attn_sparse_from_trace` and their batched variants) that
  compacts the PAP point mask **before** the bilinear gather: surviving
  points are gathered into a dense ``(N_kept, ...)`` work set, only their
  neighbours are fetched from the value array, and the contributions are
  accumulated back into the per-(query, head) outputs with a segment sum.
  This is the software analogue of the accelerator skipping pruned points
  entirely — it turns the pruning ratio into wall-clock speedup instead of
  multiplying gathered values by zero, and
* a *compacted trace* (:class:`CompactSamplingTrace`, built by
  :func:`multi_scale_neighbors_sparse` / :func:`
  multi_scale_neighbors_sparse_batched` and consumed by
  :func:`ms_deform_attn_from_compact_trace`): the index-level trace of only
  the mask-surviving points.  Unlike the sparse kernels above, which compact
  an already-built dense trace, the compacted trace never computes bilinear
  neighbours, weights or level offsets for pruned points, so trace
  construction itself scales with the keep ratio (sparse execution v2).

Coordinate convention: sampling locations are normalized to ``[0, 1]`` in
``(x, y)`` order (as in Deformable DETR).  They are mapped to pixel
coordinates with the ``align_corners=False`` convention
(``x_pix = x * W - 0.5``) and sampled with zero padding outside the map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.backends import _SPARSE_CONTRIB_BUDGET_BYTES, segment_sum_into
from repro.kernels.calibration import DispatchThresholds, get_active_profile
from repro.kernels.plan import ExecutionPlan
from repro.kernels.registry import resolve_backend
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.shapes import LevelShape, level_start_indices
from repro.utils.timing import kernel_section


def bilinear_neighbors(
    loc_xy: np.ndarray, height: int, width: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Neighbour pixels and weights of normalized sampling locations.

    Parameters
    ----------
    loc_xy:
        Array of shape ``(..., 2)`` with normalized ``(x, y)`` coordinates.
    height, width:
        Spatial size of the sampled feature map level.

    Returns
    -------
    rows, cols:
        Integer arrays of shape ``(..., 4)`` with the row/column of the four
        neighbours in the order ``N0`` (top-left), ``N1`` (top-right),
        ``N2`` (bottom-left), ``N3`` (bottom-right).  Out-of-bounds neighbours
        keep their (out-of-range) coordinates so callers can detect them.
    weights:
        Float array of shape ``(..., 4)`` with the bilinear weights; weights of
        out-of-bounds neighbours are *not* zeroed here.
    valid:
        Boolean array of shape ``(..., 4)``; ``True`` where the neighbour lies
        inside the feature map.
    """
    loc_xy = np.asarray(loc_xy, dtype=FLOAT_DTYPE)
    if loc_xy.shape[-1] != 2:
        raise ValueError("loc_xy must have a trailing dimension of size 2 (x, y)")
    if height <= 0 or width <= 0:
        raise ValueError("height and width must be positive")

    x = loc_xy[..., 0] * width - 0.5
    y = loc_xy[..., 1] * height - 0.5
    x0 = np.floor(x).astype(np.int64)
    y0 = np.floor(y).astype(np.int64)
    t1 = (x - x0).astype(FLOAT_DTYPE)  # fraction along x
    t0 = (y - y0).astype(FLOAT_DTYPE)  # fraction along y

    rows = np.stack([y0, y0, y0 + 1, y0 + 1], axis=-1)
    cols = np.stack([x0, x0 + 1, x0, x0 + 1], axis=-1)
    w0 = (1.0 - t1) * (1.0 - t0)
    w1 = t1 * (1.0 - t0)
    w2 = (1.0 - t1) * t0
    w3 = t1 * t0
    weights = np.stack([w0, w1, w2, w3], axis=-1).astype(FLOAT_DTYPE)
    valid = (rows >= 0) & (rows < height) & (cols >= 0) & (cols < width)
    return rows, cols, weights, valid


def bilinear_sample_level(value_level: np.ndarray, loc_xy: np.ndarray) -> np.ndarray:
    """Bilinearly sample a single feature-map level.

    Parameters
    ----------
    value_level:
        Feature map of shape ``(H, W, C)``.
    loc_xy:
        Normalized sampling locations of shape ``(..., 2)``.

    Returns
    -------
    Sampled features of shape ``(..., C)`` with zero padding outside the map.
    """
    value_level = np.asarray(value_level, dtype=FLOAT_DTYPE)
    if value_level.ndim != 3:
        raise ValueError("value_level must have shape (H, W, C)")
    height, width, channels = value_level.shape
    rows, cols, weights, valid = bilinear_neighbors(loc_xy, height, width)
    rows_c = np.clip(rows, 0, height - 1)
    cols_c = np.clip(cols, 0, width - 1)
    gathered = value_level[rows_c, cols_c]  # (..., 4, C)
    effective = weights * valid.astype(FLOAT_DTYPE)
    return np.einsum("...nc,...n->...c", gathered, effective).astype(FLOAT_DTYPE)


def bilinear_sample_level_reference(value_level: np.ndarray, loc_xy: np.ndarray) -> np.ndarray:
    """Scalar (loop-based) reference implementation of :func:`bilinear_sample_level`.

    Slow but simple; used only in tests to validate the vectorized kernel.
    """
    value_level = np.asarray(value_level, dtype=FLOAT_DTYPE)
    height, width, channels = value_level.shape
    loc = np.asarray(loc_xy, dtype=FLOAT_DTYPE).reshape(-1, 2)
    out = np.zeros((loc.shape[0], channels), dtype=FLOAT_DTYPE)
    for i, (x_norm, y_norm) in enumerate(loc):
        x = x_norm * width - 0.5
        y = y_norm * height - 0.5
        x0 = int(np.floor(x))
        y0 = int(np.floor(y))
        t1 = x - x0
        t0 = y - y0
        acc = np.zeros(channels, dtype=np.float64)
        for (r, c, w) in [
            (y0, x0, (1 - t1) * (1 - t0)),
            (y0, x0 + 1, t1 * (1 - t0)),
            (y0 + 1, x0, (1 - t1) * t0),
            (y0 + 1, x0 + 1, t1 * t0),
        ]:
            if 0 <= r < height and 0 <= c < width:
                acc += w * value_level[r, c]
        out[i] = acc.astype(FLOAT_DTYPE)
    return out.reshape(np.asarray(loc_xy).shape[:-1] + (channels,))


@dataclass
class SamplingTrace:
    """Integer-level description of every memory access performed by MSGS.

    Attributes
    ----------
    levels:
        ``(N_q, N_h, N_l, N_p)`` level index of every sampling point (equal to
        the broadcasted level axis; kept explicit for convenience).
    rows, cols:
        ``(N_q, N_h, N_l, N_p, 4)`` neighbour coordinates inside their level.
    flat_indices:
        ``(N_q, N_h, N_l, N_p, 4)`` neighbour indices in the flattened
        multi-scale token axis; invalid (out-of-bounds) neighbours are ``-1``.
    weights:
        ``(N_q, N_h, N_l, N_p, 4)`` bilinear weights.
    valid:
        ``(N_q, N_h, N_l, N_p, 4)`` in-bounds flags.
    spatial_shapes:
        The pyramid level shapes the trace was generated for.
    """

    levels: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    flat_indices: np.ndarray
    weights: np.ndarray
    valid: np.ndarray
    spatial_shapes: list[LevelShape]

    @property
    def num_queries(self) -> int:
        return self.rows.shape[0]

    @property
    def num_heads(self) -> int:
        return self.rows.shape[1]

    @property
    def num_levels(self) -> int:
        return self.rows.shape[2]

    @property
    def num_points(self) -> int:
        return self.rows.shape[3]


@dataclass
class BatchedSamplingTrace:
    """A :class:`SamplingTrace` with a leading batch axis.

    All index/weight arrays have shape ``(B, N_q, N_h, N_l, N_p, 4)`` (levels:
    ``(B, N_q, N_h, N_l, N_p)``).  :meth:`image` returns a zero-copy
    single-image :class:`SamplingTrace` view, which is what the per-image
    statistics (FWP frequency counting, bank conflicts) consume.
    """

    levels: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    flat_indices: np.ndarray
    weights: np.ndarray
    valid: np.ndarray
    spatial_shapes: list[LevelShape]

    @property
    def batch_size(self) -> int:
        return self.rows.shape[0]

    @property
    def num_queries(self) -> int:
        return self.rows.shape[1]

    @property
    def num_heads(self) -> int:
        return self.rows.shape[2]

    def image(self, b: int) -> SamplingTrace:
        """Single-image view (no copies) of batch element *b*."""
        return SamplingTrace(
            levels=self.levels[b],
            rows=self.rows[b],
            cols=self.cols[b],
            flat_indices=self.flat_indices[b],
            weights=self.weights[b],
            valid=self.valid[b],
            spatial_shapes=self.spatial_shapes,
        )

    def images(self) -> list[SamplingTrace]:
        """Per-image views for the whole batch."""
        return [self.image(b) for b in range(self.batch_size)]


def _neighbors_arrays(
    spatial_shapes: list[LevelShape], sampling_locations: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared neighbour computation over arbitrary leading axes.

    ``sampling_locations`` has shape ``(..., N_l, N_p, 2)`` with the level
    axis third from the right; returns ``(levels, rows, cols, flat, weights,
    valid)`` arrays with leading shape ``sampling_locations.shape[:-1]``.
    Thin wrapper over :func:`_batched_neighbors` (one implementation of the
    bilinear formulas serves the single-image and batched paths alike).
    """
    n_l = sampling_locations.shape[-3]
    rows, cols, weights, valid, safe_flat = _batched_neighbors(
        spatial_shapes, sampling_locations
    )
    # Mark invalid neighbours in place: safe_flat is freshly allocated here,
    # and scattering -1 into the (few) out-of-bounds slots is cheaper than a
    # full np.where copy of the ~N_q*N_h*N_l*N_p*4 index array.
    safe_flat[~valid] = -1
    flat = safe_flat
    # Read-only broadcast view: every consumer only indexes/compares levels,
    # and skipping the materialised copy keeps trace construction lean.
    levels = np.broadcast_to(
        np.arange(n_l, dtype=np.int64)[:, None], sampling_locations.shape[:-1]
    )
    return levels, rows, cols, flat, weights, valid


def multi_scale_neighbors(
    spatial_shapes: list[LevelShape], sampling_locations: np.ndarray
) -> SamplingTrace:
    """Compute the :class:`SamplingTrace` of multi-scale sampling locations.

    Parameters
    ----------
    spatial_shapes:
        Pyramid level shapes.
    sampling_locations:
        Normalized locations of shape ``(N_q, N_h, N_l, N_p, 2)``.
    """
    sampling_locations = np.asarray(sampling_locations, dtype=FLOAT_DTYPE)
    if sampling_locations.ndim != 5 or sampling_locations.shape[-1] != 2:
        raise ValueError("sampling_locations must have shape (N_q, N_h, N_l, N_p, 2)")
    n_l = sampling_locations.shape[2]
    if n_l != len(spatial_shapes):
        raise ValueError(
            f"sampling_locations has {n_l} levels but {len(spatial_shapes)} shapes given"
        )
    levels, rows, cols, flat, weights, valid = _neighbors_arrays(
        spatial_shapes, sampling_locations
    )
    return SamplingTrace(
        levels=levels,
        rows=rows,
        cols=cols,
        flat_indices=flat,
        weights=weights,
        valid=valid,
        spatial_shapes=list(spatial_shapes),
    )


def _neighbor_grid(
    x: np.ndarray,
    y: np.ndarray,
    heights: np.ndarray,
    widths: np.ndarray,
    starts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared bilinear neighbour/weight/index math of the dense and sparse paths.

    ``x``/``y`` are pixel-space coordinates of arbitrary shape ``S``;
    ``heights``/``widths``/``starts`` are ``int64`` arrays broadcastable
    against the ``S + (4,)`` neighbour stacks (per-level rows in the dense
    trace path, per-point columns in the compacted path).  The float32
    expressions match :func:`bilinear_neighbors` exactly, so results are
    bit-identical however the leading axes are organised.

    Returns ``(rows, cols, weights, valid, safe_flat)`` where ``safe_flat``
    holds in-bounds *global* token indices (out-of-bounds neighbours are
    clamped, not ``-1`` — pair with ``valid`` to mask them).
    """
    x0 = np.floor(x).astype(np.int64)
    y0 = np.floor(y).astype(np.int64)
    t1 = (x - x0).astype(FLOAT_DTYPE)
    t0 = (y - y0).astype(FLOAT_DTYPE)

    rows = np.stack([y0, y0, y0 + 1, y0 + 1], axis=-1)
    cols = np.stack([x0, x0 + 1, x0, x0 + 1], axis=-1)
    w0 = (1.0 - t1) * (1.0 - t0)
    w1 = t1 * (1.0 - t0)
    w2 = (1.0 - t1) * t0
    w3 = t1 * t0
    weights = np.stack([w0, w1, w2, w3], axis=-1).astype(FLOAT_DTYPE)

    valid = (rows >= 0) & (rows < heights) & (cols >= 0) & (cols < widths)
    # minimum/maximum instead of np.clip — identical results, lower overhead.
    rows_c = np.minimum(np.maximum(rows, 0), heights - 1)
    cols_c = np.minimum(np.maximum(cols, 0), widths - 1)
    safe_flat = starts + rows_c * widths + cols_c
    return rows, cols, weights, valid, safe_flat


def _batched_neighbors(
    spatial_shapes: list[LevelShape], sampling_locations: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Level-vectorized neighbour computation over arbitrary leading axes.

    ``sampling_locations`` has shape ``(..., N_l, N_p, 2)``.  There is no
    per-level Python loop: the level sizes enter as broadcast arrays, so one
    pass of elementwise ops covers the whole batch and the results are
    bit-identical to sampling each level separately.

    Returns ``(rows, cols, weights, valid, safe_flat)`` — see
    :func:`_neighbor_grid`.
    """
    n_l = len(spatial_shapes)
    widths = np.array([s.width for s in spatial_shapes], dtype=FLOAT_DTYPE).reshape(n_l, 1)
    heights = np.array([s.height for s in spatial_shapes], dtype=FLOAT_DTYPE).reshape(n_l, 1)
    x = sampling_locations[..., 0] * widths - 0.5  # (..., N_l, N_p)
    y = sampling_locations[..., 1] * heights - 0.5
    hi = np.array([s.height for s in spatial_shapes], dtype=np.int64).reshape(n_l, 1, 1)
    wi = np.array([s.width for s in spatial_shapes], dtype=np.int64).reshape(n_l, 1, 1)
    starts = np.array(level_start_indices(spatial_shapes), dtype=np.int64).reshape(n_l, 1, 1)
    return _neighbor_grid(x, y, hi, wi, starts)


def multi_scale_neighbors_batched(
    spatial_shapes: list[LevelShape], sampling_locations: np.ndarray
) -> BatchedSamplingTrace:
    """Batched variant of :func:`multi_scale_neighbors`.

    ``sampling_locations`` has shape ``(B, N_q, N_h, N_l, N_p, 2)``; the
    resulting trace matches the per-image traces exactly (same neighbour
    order, weights and validity flags), but is computed with fully
    level-vectorized kernels — no per-image or per-level Python loop.
    """
    sampling_locations = np.asarray(sampling_locations, dtype=FLOAT_DTYPE)
    if sampling_locations.ndim != 6 or sampling_locations.shape[-1] != 2:
        raise ValueError("sampling_locations must have shape (B, N_q, N_h, N_l, N_p, 2)")
    n_l = sampling_locations.shape[3]
    if n_l != len(spatial_shapes):
        raise ValueError(
            f"sampling_locations has {n_l} levels but {len(spatial_shapes)} shapes given"
        )
    levels, rows, cols, flat, weights, valid = _neighbors_arrays(
        spatial_shapes, sampling_locations
    )
    return BatchedSamplingTrace(
        levels=levels,
        rows=rows,
        cols=cols,
        flat_indices=flat,
        weights=weights,
        valid=valid,
        spatial_shapes=list(spatial_shapes),
    )


def ms_deform_attn_core(
    value: np.ndarray,
    spatial_shapes: list[LevelShape],
    sampling_locations: np.ndarray,
    attention_weights: np.ndarray,
    point_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Core multi-scale deformable attention computation (MSGS + aggregation).

    Parameters
    ----------
    value:
        Projected values of shape ``(N_in, N_h, D_h)`` on the flattened
        multi-scale token axis.
    spatial_shapes:
        Pyramid level shapes; their pixel counts must sum to ``N_in``.
    sampling_locations:
        Normalized ``(x, y)`` locations of shape ``(N_q, N_h, N_l, N_p, 2)``.
    attention_weights:
        Attention probabilities of shape ``(N_q, N_h, N_l, N_p)`` (already
        softmax-normalized across the last two axes).
    point_mask:
        Optional boolean array of shape ``(N_q, N_h, N_l, N_p)``; ``False``
        entries are skipped entirely (their contribution is zero).  This is
        how PAP removes pruned sampling points.

    Returns
    -------
    Output of shape ``(N_q, N_h * D_h)``.
    """
    value = np.asarray(value, dtype=FLOAT_DTYPE)
    if value.ndim != 3:
        raise ValueError("value must have shape (N_in, N_h, D_h)")
    n_in, n_h, d_h = value.shape
    expected = sum(s.num_pixels for s in spatial_shapes)
    if n_in != expected:
        raise ValueError(f"value has {n_in} tokens but spatial shapes sum to {expected}")
    attention_weights = np.asarray(attention_weights, dtype=FLOAT_DTYPE)
    n_q = sampling_locations.shape[0]
    if attention_weights.shape != sampling_locations.shape[:-1]:
        raise ValueError("attention_weights shape must match sampling_locations[:-1]")

    effective_weights = attention_weights
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != attention_weights.shape:
            raise ValueError("point_mask shape must match attention_weights")
        effective_weights = attention_weights * point_mask.astype(FLOAT_DTYPE)

    starts = level_start_indices(spatial_shapes)
    output = np.zeros((n_q, n_h, d_h), dtype=FLOAT_DTYPE)
    for lvl, shape in enumerate(spatial_shapes):
        level_value = value[starts[lvl] : starts[lvl] + shape.num_pixels]
        level_value = level_value.reshape(shape.height, shape.width, n_h, d_h)
        # Sample each head with its own locations.
        for h in range(n_h):
            locs = sampling_locations[:, h, lvl]  # (N_q, N_p, 2)
            w = effective_weights[:, h, lvl]  # (N_q, N_p)
            if point_mask is not None and not np.any(point_mask[:, h, lvl]):
                continue
            sampled = bilinear_sample_level(level_value[:, :, h], locs)  # (N_q, N_p, D_h)
            output[:, h] += np.einsum("qpc,qp->qc", sampled, w)
    return output.reshape(n_q, n_h * d_h)


def ms_deform_attn_from_trace(
    value: np.ndarray,
    trace: SamplingTrace,
    attention_weights: np.ndarray,
    point_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Compute MSGS + aggregation from a precomputed :class:`SamplingTrace`.

    Functionally equivalent to :func:`ms_deform_attn_core`; used by the DEFA
    pipeline so that the same trace drives both the numerics and the
    frequency/conflict statistics.
    """
    value = np.asarray(value, dtype=FLOAT_DTYPE)
    n_in, n_h, d_h = value.shape
    n_q = trace.num_queries
    weights = trace.weights * trace.valid.astype(FLOAT_DTYPE)  # (N_q, N_h, N_l, N_p, 4)
    attn = np.asarray(attention_weights, dtype=FLOAT_DTYPE)
    if point_mask is not None:
        attn = attn * np.asarray(point_mask, dtype=bool).astype(FLOAT_DTYPE)
    combined = weights * attn[..., None]  # fold attention prob into neighbour weights
    flat = np.clip(trace.flat_indices, 0, n_in - 1)

    output = np.zeros((n_q, n_h, d_h), dtype=FLOAT_DTYPE)
    for h in range(n_h):
        idx = flat[:, h].reshape(n_q, -1)  # (N_q, N_l*N_p*4)
        w = combined[:, h].reshape(n_q, -1)
        with kernel_section("gather"):
            gathered = value[idx, h]  # (N_q, N_l*N_p*4, D_h)
        with kernel_section("aggregate"):
            output[:, h] = np.einsum("qkc,qk->qc", gathered, w)
    return output.reshape(n_q, n_h * d_h)


def ms_deform_attn_core_batched(
    value: np.ndarray,
    spatial_shapes: list[LevelShape],
    sampling_locations: np.ndarray,
    attention_weights: np.ndarray,
    point_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Batched MSGS + aggregation: vectorized over the whole image batch.

    Parameters
    ----------
    value:
        Projected values of shape ``(B, N_in, N_h, D_h)``.
    spatial_shapes:
        Pyramid level shapes; their pixel counts must sum to ``N_in``.
    sampling_locations:
        Normalized locations of shape ``(B, N_q, N_h, N_l, N_p, 2)``.
    attention_weights:
        Attention probabilities of shape ``(B, N_q, N_h, N_l, N_p)``.
    point_mask:
        Optional boolean array of shape ``(B, N_q, N_h, N_l, N_p)``.

    Returns
    -------
    Output of shape ``(B, N_q, N_h * D_h)``; image ``b`` equals
    ``ms_deform_attn_core(value[b], ..., sampling_locations[b], ...)`` up to
    float32 rounding.  The hot path has no per-image, per-head or per-level
    Python loop: neighbours of all levels are computed in one vectorized
    pass, one flat ``np.take`` per query chunk gathers every neighbour, and
    two einsums perform the weighted reductions.  The query chunking bounds
    the gathered intermediate to a cache-friendly size — without it, large
    workloads thrash the cache and batching loses its advantage.
    """
    value = np.asarray(value, dtype=FLOAT_DTYPE)
    if value.ndim != 4:
        raise ValueError("value must have shape (B, N_in, N_h, D_h)")
    batch, n_in, n_h, d_h = value.shape
    expected = sum(s.num_pixels for s in spatial_shapes)
    if n_in != expected:
        raise ValueError(f"value has {n_in} tokens but spatial shapes sum to {expected}")
    attention_weights = np.asarray(attention_weights, dtype=FLOAT_DTYPE)
    sampling_locations = np.asarray(sampling_locations, dtype=FLOAT_DTYPE)
    if sampling_locations.shape[0] != batch:
        raise ValueError("sampling_locations batch axis must match value")
    n_q = sampling_locations.shape[1]
    n_l, n_p = sampling_locations.shape[3], sampling_locations.shape[4]
    if attention_weights.shape != sampling_locations.shape[:-1]:
        raise ValueError("attention_weights shape must match sampling_locations[:-1]")

    effective_weights = attention_weights
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != attention_weights.shape:
            raise ValueError("point_mask shape must match attention_weights")
        effective_weights = attention_weights * point_mask.astype(FLOAT_DTYPE)

    _, _, weights, valid, safe_flat = _batched_neighbors(spatial_shapes, sampling_locations)
    effective = weights * valid.astype(FLOAT_DTYPE)  # (B, N_q, N_h, N_l, N_p, 4)
    # One flat gather axis over (batch, token, head): a single np.take per
    # query chunk beats multi-array advanced indexing by a wide margin.
    value_flat = np.ascontiguousarray(value).reshape(batch * n_in * n_h, d_h)
    b_off = (np.arange(batch, dtype=np.int64) * n_in).reshape(batch, 1, 1, 1, 1, 1)
    h_off = np.arange(n_h, dtype=np.int64).reshape(1, 1, n_h, 1, 1, 1)
    # Bound the gathered (B, chunk, N_h, N_l, N_p, 4, D_h) block to ~4 MB.
    per_query = batch * n_h * n_l * n_p * 4 * d_h
    chunk = max(1, min(n_q, (1024 * 1024) // max(per_query, 1)))

    output = np.empty((batch, n_q, n_h, d_h), dtype=FLOAT_DTYPE)
    for start in range(0, n_q, chunk):
        sl = slice(start, start + chunk)
        with kernel_section("gather"):
            idx = (b_off + safe_flat[:, sl]) * n_h + h_off
            gathered = np.take(value_flat, idx, axis=0)  # (B, q, N_h, N_l, N_p, 4, D_h)
        with kernel_section("aggregate"):
            sampled = np.einsum("bqhlpnc,bqhlpn->bqhlpc", gathered, effective[:, sl])
            output[:, sl] = np.einsum("bqhlpc,bqhlp->bqhc", sampled, effective_weights[:, sl])
    return output.reshape(batch, n_q, n_h * d_h)


def ms_deform_attn_from_trace_batched(
    value: np.ndarray,
    trace: BatchedSamplingTrace,
    attention_weights: np.ndarray,
    point_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Batched variant of :func:`ms_deform_attn_from_trace`.

    ``value`` has shape ``(B, N_in, N_h, D_h)``, ``attention_weights`` and
    ``point_mask`` shape ``(B, N_q, N_h, N_l, N_p)``.  Image ``b`` of the
    result equals ``ms_deform_attn_from_trace(value[b], trace.image(b), ...)``
    up to float32 rounding.
    """
    value = np.asarray(value, dtype=FLOAT_DTYPE)
    if value.ndim != 4:
        raise ValueError("value must have shape (B, N_in, N_h, D_h)")
    batch, n_in, n_h, d_h = value.shape
    if trace.batch_size != batch:
        raise ValueError("trace batch size must match value")
    n_q = trace.num_queries
    weights = trace.weights * trace.valid.astype(FLOAT_DTYPE)
    attn = np.asarray(attention_weights, dtype=FLOAT_DTYPE)
    if point_mask is not None:
        attn = attn * np.asarray(point_mask, dtype=bool).astype(FLOAT_DTYPE)
    combined = (weights * attn[..., None]).reshape(batch, n_q, n_h, -1)
    # Invalid neighbours are -1 (their weight is zero); max with 0 is enough
    # and cheaper than a full clip.
    flat = np.maximum(trace.flat_indices, 0).reshape(batch, n_q, n_h, -1)
    n_k = flat.shape[-1]  # N_l * N_p * 4 neighbours per (query, head)

    # One flat gather axis over (batch, token, head); chunk queries to keep
    # the gathered (B, chunk, N_h, K, D_h) block cache-friendly.
    value_flat = np.ascontiguousarray(value).reshape(batch * n_in * n_h, d_h)
    b_off = (np.arange(batch, dtype=np.int64) * n_in).reshape(batch, 1, 1, 1)
    h_off = np.arange(n_h, dtype=np.int64).reshape(1, 1, n_h, 1)
    per_query = batch * n_h * n_k * d_h
    chunk = max(1, min(n_q, (512 * 1024) // max(per_query, 1)))

    output = np.empty((batch, n_q, n_h, d_h), dtype=FLOAT_DTYPE)
    for start in range(0, n_q, chunk):
        sl = slice(start, start + chunk)
        with kernel_section("gather"):
            idx = (b_off + flat[:, sl]) * n_h + h_off
            gathered = np.take(value_flat, idx, axis=0)  # (B, q, N_h, K, D_h)
        with kernel_section("aggregate"):
            output[:, sl] = np.einsum("bqhkc,bqhk->bqhc", gathered, combined[:, sl])
    return output.reshape(batch, n_q, n_h * d_h)


# --------------------------------------------------------------------------
# Sparse (compacted gather/scatter) execution path
#
# The dense kernels above *simulate* PAP pruning by multiplying attention
# weights with the point mask — every pruned point is still gathered and
# multiplied by zero.  The kernels below drop pruned points before any memory
# traffic happens: surviving points are compacted into a flat work set, one
# gather fetches exactly their neighbour value rows, an einsum folds the four
# bilinear neighbours of each point, and a segment sum scatters the per-point
# contributions back into the (query, head) output slots.  Results match the
# dense kernels to float32 rounding (the same terms are summed, minus exact
# zeros), which the equivalence tests pin at 1e-5.

SPARSE_MODES = ("auto", "dense", "sparse")
"""Valid values of the ``sparse_mode`` execution switch, shared by every
layer that exposes it (kernels here, :class:`repro.core.pipeline.
DEFAAttention`, the encoder runner and the engine adapters).

* ``"dense"`` — the original masked-dense kernels: pruned value rows are
  zeroed after a full projection and pruned points are multiplied by zero in
  the gather.  Pruning changes numerics only, never wall clock.
* ``"sparse"`` — always run the compacted gather/scatter kernels whenever a
  mask is available (useful for tests and benchmarks).
* ``"auto"`` — pick sparse per stage when the measured reduction ratio and
  the problem size clear the thresholds below (dense wins at low reduction
  and on tiny inputs, where compaction overhead dominates).
"""

_REFERENCE_THRESHOLDS = DispatchThresholds()

SPARSE_AUTO_POINT_KEEP_MAX = _REFERENCE_THRESHOLDS.point_keep_max
"""``auto`` sparse dispatch: use the sparse gather when at most this fraction
of sampling points survives the PAP mask.  Above it, the compaction overhead
(flatnonzero + segment bookkeeping) outweighs the avoided gather traffic.

Since PR 9 this is an alias of the reference
:class:`~repro.kernels.DispatchThresholds` — the committed hand-tuned value,
kept for external readers; dispatch itself consults the active
:class:`~repro.kernels.MachineProfile`."""

SPARSE_AUTO_MIN_SLOTS = _REFERENCE_THRESHOLDS.min_slots
"""``auto`` sparse dispatch: minimum number of *per-image* gather slots
(``N_q * N_h * N_l * N_p * 4``) before the sparse path can win — below it,
fixed per-call overhead dominates and dense is faster.  Deliberately counted
per image, not per batch: batched and single-image execution must make the
same dense/sparse decision, otherwise quantized configs could amplify the
float32 rounding difference between the two kernels into a full quantization
step and break batched-vs-serial equivalence.

Alias of the reference :class:`~repro.kernels.DispatchThresholds` value
since PR 9 (see :data:`SPARSE_AUTO_POINT_KEEP_MAX`)."""



def use_sparse_gather(
    point_mask: np.ndarray | None,
    slots_per_image: int,
    sparse_mode: str,
    batched: bool = False,
    thresholds: DispatchThresholds | None = None,
) -> bool:
    """Shared dispatch rule of the ``sparse_mode`` switch for point gathering.

    ``sparse_mode`` is one of ``"dense"``, ``"sparse"`` or ``"auto"``; the
    auto rule compares the point keep-fraction against
    ``thresholds.point_keep_max`` and requires at least
    ``thresholds.min_slots`` *per-image* gather slots (``slots_per_image``
    must not include the batch axis).  ``thresholds`` defaults to the active
    :class:`~repro.kernels.MachineProfile`'s machine-wide thresholds — the
    committed reference constants unless a calibrated profile was installed.

    Boundary semantics (pinned by the PR 9 boundary-value tests, shared with
    :meth:`repro.core.pipeline.DEFAAttention` row dispatch): the minimum-size
    comparison is *strict* (``slots_per_image < min_slots`` rejects, so a
    problem exactly at ``min_slots`` is sparse-eligible) while the keep-ratio
    comparison is *inclusive* (``keep_fraction <= point_keep_max`` accepts,
    so a keep fraction exactly at the crossover goes sparse).  A calibrated
    profile whose crossovers land exactly on a measured grid point therefore
    dispatches deterministically, and batched vs single-image runs agree at
    the boundary.

    With ``batched=True`` the leading axis of ``point_mask`` is the image
    axis and the keep-fraction test applies to the *maximum* per-image
    fraction: a batch goes sparse only when every image alone would.  This
    mirrors the per-image slot counting — the batched and single-image runs
    must make the same decision wherever possible, otherwise quantized
    configs amplify the float32 rounding difference between the two kernels
    into a quantization step and break batched-vs-serial equivalence.
    """
    if sparse_mode not in SPARSE_MODES:
        raise ValueError(f"sparse_mode must be one of {SPARSE_MODES}, got {sparse_mode!r}")
    if sparse_mode == "dense":
        return False
    if sparse_mode == "sparse":
        return True
    if thresholds is None:
        thresholds = get_active_profile().thresholds_for(None)
    if point_mask is None or slots_per_image < thresholds.min_slots:
        return False
    if batched:
        batch = point_mask.shape[0]
        per_image = np.count_nonzero(point_mask.reshape(batch, -1), axis=1)
        keep_fraction = float(per_image.max()) / max(point_mask[0].size, 1)
    else:
        keep_fraction = np.count_nonzero(point_mask) / max(point_mask.size, 1)
    return keep_fraction <= thresholds.point_keep_max


@dataclass
class CompactSamplingTrace:
    """Sampling trace restricted to the points kept by a PAP/query mask.

    Where :class:`SamplingTrace` stores neighbour data for *every* point of
    the ``(N_q, N_h, N_l, N_p)`` grid, this record stores one row per
    surviving point, identified by its flat index on the
    ``(B * N_q * N_h * N_l * N_p)`` point axis (``B = 1`` for single images).
    Rows appear in ascending ``kept`` order, i.e. per-image, per-query,
    per-head contiguous — the order the segment-sum kernels rely on.

    The per-point data matches the dense trace bit for bit (same bilinear
    formulas via :func:`_neighbor_grid`), which the property tests assert:
    ``flat_indices[i] == dense.flat_indices.reshape(-1, 4)[kept[i]]`` and
    likewise for ``weights``/``valid``/``levels``.

    Attributes
    ----------
    kept:
        ``(K,)`` sorted ``int64`` flat point indices of the survivors.
    levels:
        ``(K,)`` pyramid level of each kept point.
    flat_indices:
        ``(K, 4)`` neighbour indices on the flattened multi-scale token axis
        (per image); out-of-bounds neighbours are ``-1``.
    weights:
        ``(K, 4)`` bilinear weights (out-of-bounds neighbours not zeroed —
        pair with ``valid``, as in the dense trace).
    valid:
        ``(K, 4)`` in-bounds flags.
    spatial_shapes:
        Pyramid level shapes the trace was generated for.
    batch_size, num_queries, num_heads, num_levels, num_points:
        Geometry of the (uncompacted) point grid; ``batch_size`` is 1 for
        traces built from single-image sampling locations.
    """

    kept: np.ndarray
    levels: np.ndarray
    flat_indices: np.ndarray
    weights: np.ndarray
    valid: np.ndarray
    spatial_shapes: list[LevelShape]
    batch_size: int
    num_queries: int
    num_heads: int
    num_levels: int
    num_points: int

    @property
    def num_kept(self) -> int:
        """Number of surviving sampling points."""
        return int(self.kept.size)

    @property
    def points_per_image(self) -> int:
        return self.num_queries * self.num_heads * self.num_levels * self.num_points

    @property
    def total_points(self) -> int:
        """Grid size before compaction (``B * N_q * N_h * N_l * N_p``)."""
        return self.batch_size * self.points_per_image

    @property
    def keep_fraction(self) -> float:
        total = self.total_points
        return self.num_kept / total if total else 1.0

    def segments(self) -> np.ndarray:
        """``(K,)`` output-slot id ``(image * N_q + query) * N_h + head`` of
        every kept point (non-decreasing, since ``kept`` is sorted)."""
        return self.kept // (self.num_levels * self.num_points)

    def image(self, b: int) -> "CompactSamplingTrace":
        """Zero-copy single-image view of batch element *b*.

        ``kept`` is sorted, so the rows of image *b* form one contiguous
        slice located with two binary searches.
        """
        ppi = self.points_per_image
        lo = int(np.searchsorted(self.kept, b * ppi))
        hi = int(np.searchsorted(self.kept, (b + 1) * ppi))
        return CompactSamplingTrace(
            kept=self.kept[lo:hi] - b * ppi,
            levels=self.levels[lo:hi],
            flat_indices=self.flat_indices[lo:hi],
            weights=self.weights[lo:hi],
            valid=self.valid[lo:hi],
            spatial_shapes=self.spatial_shapes,
            batch_size=1,
            num_queries=self.num_queries,
            num_heads=self.num_heads,
            num_levels=self.num_levels,
            num_points=self.num_points,
        )

    def images(self) -> list["CompactSamplingTrace"]:
        """Per-image views for the whole batch."""
        return [self.image(b) for b in range(self.batch_size)]


def _compact_trace_impl(
    spatial_shapes: list[LevelShape],
    sampling_locations: np.ndarray,
    point_mask: np.ndarray | None,
    plan: ExecutionPlan | None = None,
) -> CompactSamplingTrace:
    """Shared body of the compacted-trace constructors.

    ``sampling_locations`` carries a leading batch axis
    (``(B, N_q, N_h, N_l, N_p, 2)``, ``B = 1`` for single images); the
    bilinear neighbour/weight/index math runs on the mask survivors only, so
    the cost is proportional to the keep ratio rather than the grid size.

    With a ``plan`` every per-point array (levels, neighbour rows/cols,
    weights, validity, flat indices) is built in-place inside reused arena
    buffers — bit-identical to the allocating path (same float expressions in
    the same order, with the ``np.stack`` copies replaced by column stores).
    The trace arrays then *are* plan buffers: valid until the plan's next
    forward, per the :class:`~repro.kernels.plan.ExecutionPlan` lifetime
    rules.
    """
    batch, n_q, n_h, n_l, n_p, _ = sampling_locations.shape
    total_points = batch * n_q * n_h * n_l * n_p
    if point_mask is None:
        kept = np.arange(total_points, dtype=np.int64)
    else:
        kept = np.flatnonzero(np.asarray(point_mask, dtype=bool).reshape(-1))

    widths = np.array([s.width for s in spatial_shapes], dtype=FLOAT_DTYPE)
    heights = np.array([s.height for s in spatial_shapes], dtype=FLOAT_DTYPE)
    hi = np.array([s.height for s in spatial_shapes], dtype=np.int64)
    wi = np.array([s.width for s in spatial_shapes], dtype=np.int64)
    starts = np.array(level_start_indices(spatial_shapes), dtype=np.int64)

    if plan is not None:
        lvl, weights, valid, safe_flat = _compact_trace_arrays_fused(
            sampling_locations, kept, n_p, n_l, widths, heights, hi, wi, starts, plan
        )
    else:
        lvl = (kept // n_p) % n_l
        loc = np.ascontiguousarray(sampling_locations).reshape(total_points, 2)[kept]
        # Identical float32 expressions as the dense trace path (via
        # _neighbor_grid), so per-point results are bit-identical to the dense
        # trace restricted to the kept points.
        x = loc[:, 0] * widths[lvl] - 0.5
        y = loc[:, 1] * heights[lvl] - 0.5
        _, _, weights, valid, safe_flat = _neighbor_grid(
            x, y, hi[lvl][:, None], wi[lvl][:, None], starts[lvl][:, None]
        )
        safe_flat[~valid] = -1  # freshly allocated: in-place scatter, no copy
    return CompactSamplingTrace(
        kept=kept,
        levels=lvl,
        flat_indices=safe_flat,
        weights=weights,
        valid=valid,
        spatial_shapes=list(spatial_shapes),
        batch_size=batch,
        num_queries=n_q,
        num_heads=n_h,
        num_levels=n_l,
        num_points=n_p,
    )


def _compact_trace_arrays_fused(
    sampling_locations: np.ndarray,
    kept: np.ndarray,
    n_p: int,
    n_l: int,
    widths: np.ndarray,
    heights: np.ndarray,
    hi: np.ndarray,
    wi: np.ndarray,
    starts: np.ndarray,
    plan: ExecutionPlan,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Buffer-reusing per-point trace arrays: ``(levels, weights, valid, flat)``.

    Bit-identical to the allocating branch of :func:`_compact_trace_impl`:
    every float expression matches :func:`_neighbor_grid` (the int64 operand
    promotions included), the stacks become column stores, and the integer
    flat-index arithmetic is exact in any order.
    """
    k = int(kept.size)
    loc_flat = np.ascontiguousarray(sampling_locations).reshape(-1, 2)
    loc = plan.take("trace.loc", loc_flat, kept, axis=0)  # (K, 2)
    lvl = plan.buffer("trace.levels", (k,), np.int64)
    np.floor_divide(kept, n_p, out=lvl)
    np.mod(lvl, n_l, out=lvl)

    # x = loc_x * widths[lvl] - 0.5 (and likewise y), all float32.
    size_l = plan.take("trace.size_l", widths, lvl)
    x = plan.buffer("trace.x", (k,), FLOAT_DTYPE)
    np.multiply(loc[:, 0], size_l, out=x)
    np.subtract(x, 0.5, out=x)
    np.take(heights, lvl, out=size_l)
    y = plan.buffer("trace.y", (k,), FLOAT_DTYPE)
    np.multiply(loc[:, 1], size_l, out=y)
    np.subtract(y, 0.5, out=y)

    # Integer corners and float32 fractions, as in _neighbor_grid: x0/y0 are
    # the floors, t = (coord - corner) computed through the float64 promotion
    # and stored back to float32.
    frac = plan.buffer("trace.frac", (k,), FLOAT_DTYPE)
    x0 = plan.buffer("trace.x0", (k,), np.int64)
    y0 = plan.buffer("trace.y0", (k,), np.int64)
    np.floor(x, out=frac)
    np.copyto(x0, frac, casting="unsafe")
    t1 = plan.buffer("trace.t1", (k,), FLOAT_DTYPE)
    np.subtract(x, x0, out=t1, casting="unsafe")
    np.floor(y, out=frac)
    np.copyto(y0, frac, casting="unsafe")
    t0 = plan.buffer("trace.t0", (k,), FLOAT_DTYPE)
    np.subtract(y, y0, out=t0, casting="unsafe")

    rows = plan.buffer("trace.rows", (k, 4), np.int64)
    rows[:, 0] = y0
    rows[:, 1] = y0
    np.add(y0, 1, out=rows[:, 2])
    rows[:, 3] = rows[:, 2]
    cols = plan.buffer("trace.cols", (k, 4), np.int64)
    cols[:, 0] = x0
    np.add(x0, 1, out=cols[:, 1])
    cols[:, 2] = x0
    cols[:, 3] = cols[:, 1]

    weights = plan.buffer("trace.weights", (k, 4), FLOAT_DTYPE)
    one_m_t1 = x  # reuse: x/y are no longer needed past this point
    one_m_t0 = y
    np.subtract(1.0, t1, out=one_m_t1)
    np.subtract(1.0, t0, out=one_m_t0)
    np.multiply(one_m_t1, one_m_t0, out=weights[:, 0])
    np.multiply(t1, one_m_t0, out=weights[:, 1])
    np.multiply(one_m_t1, t0, out=weights[:, 2])
    np.multiply(t1, t0, out=weights[:, 3])

    h_col = plan.take("trace.h", hi, lvl)[:, None]
    w_col = plan.take("trace.w", wi, lvl)[:, None]
    valid = plan.buffer("trace.valid", (k, 4), np.bool_)
    tmp = plan.buffer("trace.valid_tmp", (k, 4), np.bool_)
    np.greater_equal(rows, 0, out=valid)
    np.less(rows, h_col, out=tmp)
    valid &= tmp
    np.greater_equal(cols, 0, out=tmp)
    valid &= tmp
    np.less(cols, w_col, out=tmp)
    valid &= tmp

    # Clamp in place (rows/cols are not part of the compact trace) and build
    # the flat token indices; invalid neighbours are marked -1.  h_col/w_col
    # are only needed as size-1 bounds from here on, so the decrement reuses
    # them.
    np.maximum(rows, 0, out=rows)
    np.subtract(h_col, 1, out=h_col)
    np.minimum(rows, h_col, out=rows)
    np.maximum(cols, 0, out=cols)
    np.subtract(w_col, 1, out=w_col)
    np.minimum(cols, w_col, out=cols)
    np.add(w_col, 1, out=w_col)  # restore: the flat index needs the true width
    flat = plan.buffer("trace.flat", (k, 4), np.int64)
    np.multiply(rows, w_col, out=flat)
    flat += cols
    flat += plan.take("trace.starts", starts, lvl)[:, None]
    np.logical_not(valid, out=tmp)
    np.copyto(flat, -1, where=tmp)
    return lvl, weights, valid, flat


def multi_scale_neighbors_sparse(
    spatial_shapes: list[LevelShape],
    sampling_locations: np.ndarray,
    point_mask: np.ndarray | None = None,
    plan: ExecutionPlan | None = None,
) -> CompactSamplingTrace:
    """Compacted-trace variant of :func:`multi_scale_neighbors`.

    Computes sampling pixel coordinates, bilinear neighbour indices/weights
    and level offsets **only for the points kept** by ``point_mask`` (shape
    ``(N_q, N_h, N_l, N_p)``; ``None`` keeps every point).  The per-point
    results are bit-identical to the dense trace restricted to the kept
    points; construction cost scales with the keep ratio.  With a ``plan``
    the per-point arrays live in reused arena buffers (fused execution) —
    the returned trace is then only valid until the plan's next forward.
    """
    sampling_locations = np.asarray(sampling_locations, dtype=FLOAT_DTYPE)
    if sampling_locations.ndim != 5 or sampling_locations.shape[-1] != 2:
        raise ValueError("sampling_locations must have shape (N_q, N_h, N_l, N_p, 2)")
    if sampling_locations.shape[2] != len(spatial_shapes):
        raise ValueError(
            f"sampling_locations has {sampling_locations.shape[2]} levels "
            f"but {len(spatial_shapes)} shapes given"
        )
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != sampling_locations.shape[:-1]:
            raise ValueError("point_mask shape must match sampling_locations[:-1]")
    return _compact_trace_impl(
        spatial_shapes,
        sampling_locations[None],
        None if point_mask is None else point_mask[None],
        plan=plan,
    )


def multi_scale_neighbors_sparse_batched(
    spatial_shapes: list[LevelShape],
    sampling_locations: np.ndarray,
    point_mask: np.ndarray | None = None,
    plan: ExecutionPlan | None = None,
) -> CompactSamplingTrace:
    """Batched variant of :func:`multi_scale_neighbors_sparse`.

    ``sampling_locations`` has shape ``(B, N_q, N_h, N_l, N_p, 2)`` and
    ``point_mask`` (if given) ``(B, N_q, N_h, N_l, N_p)``.  The batch folds
    into the compacted point axis, so one pass serves every image;
    :meth:`CompactSamplingTrace.image` recovers zero-copy per-image views.
    """
    sampling_locations = np.asarray(sampling_locations, dtype=FLOAT_DTYPE)
    if sampling_locations.ndim != 6 or sampling_locations.shape[-1] != 2:
        raise ValueError("sampling_locations must have shape (B, N_q, N_h, N_l, N_p, 2)")
    if sampling_locations.shape[3] != len(spatial_shapes):
        raise ValueError(
            f"sampling_locations has {sampling_locations.shape[3]} levels "
            f"but {len(spatial_shapes)} shapes given"
        )
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != sampling_locations.shape[:-1]:
            raise ValueError("point_mask shape must match sampling_locations[:-1]")
    return _compact_trace_impl(spatial_shapes, sampling_locations, point_mask, plan=plan)


# Shared by the sparse kernels below and re-exported for backward
# compatibility; the implementation lives with the kernel backends.
_segment_sum_into = segment_sum_into


def _sparse_gather_aggregate(
    value_flat: np.ndarray,
    flat_indices: np.ndarray,
    effective_weights: np.ndarray,
    point_mask: np.ndarray | None,
    attn: np.ndarray,
    *,
    batch: int,
    n_q: int,
    n_in: int,
) -> np.ndarray:
    """Compacted gather + segment-sum aggregation over kept sampling points.

    Compaction happens at *point* granularity: the four neighbours of a kept
    point are gathered as one ``(4, D_h)`` block and reduced with an einsum,
    so the segment sum only sees one row per surviving point (4x fewer rows
    than per-neighbour compaction — the segment sum is the serial part of the
    kernel, the einsum is vectorized).

    Parameters
    ----------
    value_flat:
        ``(B * N_in * N_h, D_h)`` value rows on the flat (batch, token, head)
        axis.
    flat_indices:
        ``(B, N_q, N_h, N_l, N_p, 4)`` neighbour token indices (``-1`` where
        out of bounds; clamped before the gather, their weight is zero).
    effective_weights:
        ``(B, N_q, N_h, N_l, N_p, 4)`` bilinear weights with out-of-bounds
        neighbours already zeroed (``weights * valid``).
    point_mask:
        ``(B, N_q, N_h, N_l, N_p)`` keep flags, or ``None`` for all points.
    attn:
        ``(B, N_q, N_h, N_l, N_p)`` attention probabilities.

    Returns
    -------
    ``(B * N_q * N_h, D_h)`` aggregated head outputs.
    """
    d_h = value_flat.shape[1]
    n_h = flat_indices.shape[2]
    points_per_head = flat_indices.shape[3] * flat_indices.shape[4]  # N_l * N_p
    rows = batch * n_q
    points_per_row = n_h * points_per_head
    flat2 = np.ascontiguousarray(flat_indices).reshape(rows * points_per_row, 4)
    w2 = np.ascontiguousarray(effective_weights).reshape(rows * points_per_row, 4)
    attn2 = np.ascontiguousarray(attn).reshape(rows * points_per_row)
    keep2 = None if point_mask is None else point_mask.reshape(rows * points_per_row)

    output = np.zeros((rows * n_h, d_h), dtype=FLOAT_DTYPE)
    budget_points = max(_SPARSE_CONTRIB_BUDGET_BYTES // (4 * 4 * max(d_h, 1)), 1)
    chunk = max(1, min(rows, budget_points // max(points_per_row, 1)))
    for start in range(0, rows, chunk):
        stop = min(start + chunk, rows)
        lo, hi = start * points_per_row, stop * points_per_row
        with kernel_section("gather"):
            if keep2 is None:
                kept = np.arange(hi - lo, dtype=np.int64)
            else:
                kept = np.flatnonzero(keep2[lo:hi])
            if kept.size == 0:
                continue
            seg = kept // points_per_head  # local (row * N_h + head) segment id
            head = seg % n_h
            token = flat2[lo:hi][kept]  # (N_kept, 4)
            np.maximum(token, 0, out=token)  # clamp -1 slots (weight is zero)
            if batch > 1:
                image = (start + seg // n_h) // n_q
                gather_idx = ((image[:, None] * n_in) + token) * n_h + head[:, None]
            else:
                gather_idx = token * n_h + head[:, None]
            gathered = value_flat[gather_idx]  # (N_kept, 4, D_h)
        with kernel_section("aggregate"):
            w_kept = w2[lo:hi][kept] * attn2[lo:hi][kept][:, None]  # (N_kept, 4)
            contrib = np.einsum("kfc,kf->kc", gathered, w_kept)
            _segment_sum_into(output[start * n_h : stop * n_h], contrib, seg)
    return output


def _compact_gather_aggregate(
    value_flat: np.ndarray,
    trace: CompactSamplingTrace,
    attn_flat: np.ndarray,
    n_in: int,
    backend=None,
    plan: ExecutionPlan | None = None,
) -> np.ndarray:
    """Gather + segment-sum aggregation over an already-compacted trace.

    The implementation is selected by the kernel-backend registry (see
    :mod:`repro.kernels`): ``"reference"`` is the original chunked
    gather-einsum-reduceat kernel, ``"fused"`` the bit-identical single-pass
    variant that precomputes the flattened gather indices once per trace and
    reuses ``plan`` buffers for every intermediate.
    """
    return resolve_backend(backend).compact_gather_aggregate(
        value_flat, trace, attn_flat, n_in, plan=plan
    )


def ms_deform_attn_from_compact_trace(
    value: np.ndarray,
    trace: CompactSamplingTrace,
    attention_weights: np.ndarray,
    backend=None,
    plan: ExecutionPlan | None = None,
) -> np.ndarray:
    """MSGS + aggregation from a precomputed :class:`CompactSamplingTrace`.

    The pruning mask is already folded into the trace (only kept points have
    rows), so no ``point_mask`` argument exists: pruned points contribute
    exact zeros, as in the masked-dense kernels.  ``value`` has shape
    ``(N_in, N_h, D_h)`` for a ``batch_size == 1`` trace or
    ``(B, N_in, N_h, D_h)`` for a batched one; ``attention_weights`` is the
    full ``([B,] N_q, N_h, N_l, N_p)`` array (only kept entries are read).
    Matches the dense from-trace kernel to float32 rounding (and the two
    kernel backends match each other bit for bit).

    ``backend`` overrides the kernel backend for this call (``None`` follows
    the process default); ``plan`` supplies the buffer arena of the fused
    backend (``None`` allocates scratch per call).  The returned array may be
    a plan buffer — callers that retain it across forwards must copy.
    """
    value = np.asarray(value, dtype=FLOAT_DTYPE)
    batched = trace.batch_size > 1 or value.ndim == 4
    if batched:
        if value.ndim != 4:
            raise ValueError("value must have shape (B, N_in, N_h, D_h) for a batched trace")
        if value.shape[0] != trace.batch_size:
            raise ValueError("value batch axis must match the trace batch size")
        batch, n_in, n_h, d_h = value.shape
    else:
        if value.ndim != 3:
            raise ValueError("value must have shape (N_in, N_h, D_h)")
        batch, (n_in, n_h, d_h) = 1, value.shape
    if n_h != trace.num_heads:
        raise ValueError("value head axis must match the trace")
    expected = sum(s.num_pixels for s in trace.spatial_shapes)
    if n_in != expected:
        raise ValueError(f"value has {n_in} tokens but spatial shapes sum to {expected}")
    attn_all = np.ascontiguousarray(np.asarray(attention_weights, dtype=FLOAT_DTYPE))
    if plan is not None:
        attn_flat = plan.take("msgs.attn", attn_all.reshape(-1), trace.kept)
    else:
        attn_flat = attn_all.reshape(-1)[trace.kept]
    value_flat = np.ascontiguousarray(value).reshape(batch * n_in * n_h, d_h)
    output = _compact_gather_aggregate(
        value_flat, trace, attn_flat, n_in, backend=backend, plan=plan
    )
    if batched:
        return output.reshape(batch, trace.num_queries, n_h * d_h)
    return output.reshape(trace.num_queries, n_h * d_h)


def ms_deform_attn_sparse_from_trace(
    value: np.ndarray,
    trace: SamplingTrace,
    attention_weights: np.ndarray,
    point_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Sparse equivalent of :func:`ms_deform_attn_from_trace`.

    PAP-pruned points (and out-of-bounds neighbours) are dropped *before* the
    value gather: only surviving neighbour slots touch memory, and their
    weighted contributions are accumulated with a segment sum.  Matches the
    dense kernel to float32 rounding; the speedup grows with the pruned
    fraction.
    """
    value = np.asarray(value, dtype=FLOAT_DTYPE)
    if value.ndim != 3:
        raise ValueError("value must have shape (N_in, N_h, D_h)")
    n_in, n_h, d_h = value.shape
    n_q = trace.num_queries
    attn = np.asarray(attention_weights, dtype=FLOAT_DTYPE)
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != attn.shape:
            raise ValueError("point_mask shape must match attention_weights")
    effective = trace.weights * trace.valid.astype(FLOAT_DTYPE)
    value_flat = np.ascontiguousarray(value).reshape(n_in * n_h, d_h)
    output = _sparse_gather_aggregate(
        value_flat,
        trace.flat_indices[None],
        effective[None],
        None if point_mask is None else point_mask[None],
        attn[None],
        batch=1,
        n_q=n_q,
        n_in=n_in,
    )
    return output.reshape(n_q, n_h * d_h)


def ms_deform_attn_sparse_from_trace_batched(
    value: np.ndarray,
    trace: BatchedSamplingTrace,
    attention_weights: np.ndarray,
    point_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Batched variant of :func:`ms_deform_attn_sparse_from_trace`.

    ``value`` has shape ``(B, N_in, N_h, D_h)``; image ``b`` of the result
    equals the single-image sparse kernel on ``trace.image(b)`` exactly (the
    compaction order is per-image contiguous).
    """
    value = np.asarray(value, dtype=FLOAT_DTYPE)
    if value.ndim != 4:
        raise ValueError("value must have shape (B, N_in, N_h, D_h)")
    batch, n_in, n_h, d_h = value.shape
    if trace.batch_size != batch:
        raise ValueError("trace batch size must match value")
    n_q = trace.num_queries
    attn = np.asarray(attention_weights, dtype=FLOAT_DTYPE)
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != attn.shape:
            raise ValueError("point_mask shape must match attention_weights")
    effective = trace.weights * trace.valid.astype(FLOAT_DTYPE)
    value_flat = np.ascontiguousarray(value).reshape(batch * n_in * n_h, d_h)
    output = _sparse_gather_aggregate(
        value_flat,
        trace.flat_indices,
        effective,
        point_mask,
        attn,
        batch=batch,
        n_q=n_q,
        n_in=n_in,
    )
    return output.reshape(batch, n_q, n_h * d_h)


def _core_sparse_impl(
    value: np.ndarray,
    spatial_shapes: list[LevelShape],
    sampling_locations: np.ndarray,
    attention_weights: np.ndarray,
    point_mask: np.ndarray | None,
    backend=None,
    plan: ExecutionPlan | None = None,
) -> np.ndarray:
    """Compact-before-neighbours sparse core shared by single/batched entry points.

    All arrays carry a leading batch axis (size 1 for single images).
    Unlike the from-trace sparse kernels, pruned points here skip even the
    bilinear *neighbour computation*: sampling locations are compacted first,
    neighbour/weight math runs on the ``(N_kept, ...)`` survivors only.
    """
    b, n_in, n_h, d_h = value.shape
    backend = resolve_backend(backend)
    with kernel_section("neighbors"):
        trace = _compact_trace_impl(
            spatial_shapes, sampling_locations, point_mask, plan=plan
        )
    attn_all = np.ascontiguousarray(attention_weights).reshape(-1)
    if plan is not None:
        attn_flat = plan.take("msgs.attn", attn_all, trace.kept)
    else:
        attn_flat = attn_all[trace.kept]
    value_flat = np.ascontiguousarray(value).reshape(b * n_in * n_h, d_h)
    return _compact_gather_aggregate(
        value_flat, trace, attn_flat, n_in, backend=backend, plan=plan
    )


def ms_deform_attn_core_sparse(
    value: np.ndarray,
    spatial_shapes: list[LevelShape],
    sampling_locations: np.ndarray,
    attention_weights: np.ndarray,
    point_mask: np.ndarray | None = None,
    backend=None,
) -> np.ndarray:
    """Sparse equivalent of :func:`ms_deform_attn_core`.

    The ``(N_q, N_h, N_l, N_p)`` point set is compacted with the PAP mask
    before any per-point work: pruned points skip the bilinear neighbour
    computation *and* the value gather entirely.  Matches the dense kernel to
    float32 rounding.  ``backend`` selects the kernel backend for this call
    (``None`` follows the process default; the backends are bit-identical).
    """
    value = np.asarray(value, dtype=FLOAT_DTYPE)
    if value.ndim != 3:
        raise ValueError("value must have shape (N_in, N_h, D_h)")
    sampling_locations = np.asarray(sampling_locations, dtype=FLOAT_DTYPE)
    if sampling_locations.ndim != 5 or sampling_locations.shape[-1] != 2:
        raise ValueError("sampling_locations must have shape (N_q, N_h, N_l, N_p, 2)")
    attention_weights = np.asarray(attention_weights, dtype=FLOAT_DTYPE)
    if attention_weights.shape != sampling_locations.shape[:-1]:
        raise ValueError("attention_weights shape must match sampling_locations[:-1]")
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != attention_weights.shape:
            raise ValueError("point_mask shape must match attention_weights")
    n_in = value.shape[0]
    expected = sum(s.num_pixels for s in spatial_shapes)
    if n_in != expected:
        raise ValueError(f"value has {n_in} tokens but spatial shapes sum to {expected}")
    n_q, n_h = sampling_locations.shape[0], sampling_locations.shape[1]
    output = _core_sparse_impl(
        value[None],
        spatial_shapes,
        sampling_locations[None],
        attention_weights[None],
        None if point_mask is None else point_mask[None],
        backend=backend,
    )
    return output.reshape(n_q, n_h * value.shape[2])


def ms_deform_attn_core_sparse_batched(
    value: np.ndarray,
    spatial_shapes: list[LevelShape],
    sampling_locations: np.ndarray,
    attention_weights: np.ndarray,
    point_mask: np.ndarray | None = None,
    backend=None,
) -> np.ndarray:
    """Batched variant of :func:`ms_deform_attn_core_sparse`.

    Shapes follow :func:`ms_deform_attn_core_batched` (leading batch axis);
    the batch folds into the compacted point axis, so one kernel pass serves
    the whole batch.
    """
    value = np.asarray(value, dtype=FLOAT_DTYPE)
    if value.ndim != 4:
        raise ValueError("value must have shape (B, N_in, N_h, D_h)")
    sampling_locations = np.asarray(sampling_locations, dtype=FLOAT_DTYPE)
    if sampling_locations.ndim != 6 or sampling_locations.shape[-1] != 2:
        raise ValueError("sampling_locations must have shape (B, N_q, N_h, N_l, N_p, 2)")
    attention_weights = np.asarray(attention_weights, dtype=FLOAT_DTYPE)
    if attention_weights.shape != sampling_locations.shape[:-1]:
        raise ValueError("attention_weights shape must match sampling_locations[:-1]")
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != attention_weights.shape:
            raise ValueError("point_mask shape must match attention_weights")
    batch, n_in = value.shape[0], value.shape[1]
    expected = sum(s.num_pixels for s in spatial_shapes)
    if n_in != expected:
        raise ValueError(f"value has {n_in} tokens but spatial shapes sum to {expected}")
    if sampling_locations.shape[0] != batch:
        raise ValueError("sampling_locations batch axis must match value")
    n_q, n_h = sampling_locations.shape[1], sampling_locations.shape[2]
    output = _core_sparse_impl(
        value,
        spatial_shapes,
        sampling_locations,
        attention_weights,
        point_mask,
        backend=backend,
    )
    return output.reshape(batch, n_q, n_h * value.shape[3])
