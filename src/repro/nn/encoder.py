"""Deformable transformer encoder layers and encoder stacks.

The paper evaluates DEFA on the MSDeformAttn layers inside the encoders of
Deformable DETR, DN-DETR and DINO.  An encoder layer is the usual
pre-/post-norm transformer block with MSDeformAttn as the token mixer:

    src = LayerNorm(src + MSDeformAttn(src + pos, ref_points, src))
    src = LayerNorm(src + FFN(src))

The stack exposes detailed per-layer intermediates (attention probabilities
and sampling traces) because the DEFA algorithm propagates a feature-map mask
from one MSDeformAttn block to the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.modules import FeedForward, LayerNorm, Module
from repro.nn.msdeform_attn import MSDeformAttn, MSDeformAttnOutput
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.shapes import LevelShape
from repro.utils.timing import kernel_section


@dataclass
class EncoderLayerOutput:
    """Intermediates of one encoder layer forward pass."""

    output: np.ndarray
    """Layer output of shape ``(N_in, D)`` (``(B, N_in, D)`` when batched)."""

    attention: MSDeformAttnOutput
    """Detailed MSDeformAttn intermediates for this layer."""


@dataclass
class EncoderOutput:
    """Result of a full encoder forward pass."""

    memory: np.ndarray
    """Final encoder output (``(N_in, D)``, or ``(B, N_in, D)`` when batched)."""

    layers: list[EncoderLayerOutput] = field(default_factory=list)
    """Per-layer intermediates (present when ``collect_details=True``)."""


class DeformableEncoderLayer(Module):
    """One deformable transformer encoder layer (MSDeformAttn + FFN)."""

    def __init__(
        self,
        d_model: int = 256,
        num_heads: int = 8,
        num_levels: int = 4,
        num_points: int = 4,
        ffn_dim: int = 1024,
        activation: str = "relu",
        attention_sharpness: float = 2.5,
        offset_scale: float = 2.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        rng = as_rng(rng)
        self.d_model = d_model
        self.self_attn = MSDeformAttn(
            d_model=d_model,
            num_heads=num_heads,
            num_levels=num_levels,
            num_points=num_points,
            attention_sharpness=attention_sharpness,
            offset_scale=offset_scale,
            rng=rng,
        )
        self.norm1 = LayerNorm(d_model)
        self.ffn = FeedForward(d_model, ffn_dim, activation=activation, rng=rng)
        self.norm2 = LayerNorm(d_model)

    def forward_detailed(
        self,
        src: np.ndarray,
        pos: np.ndarray,
        reference_points: np.ndarray,
        spatial_shapes: list[LevelShape],
        with_trace: bool = False,
    ) -> EncoderLayerOutput:
        """Forward pass returning intermediates.

        ``src`` has shape ``(N_in, D)`` or ``(B, N_in, D)``; ``pos`` has shape
        ``(N_in, D)`` and is shared across the batch (positional encodings
        only depend on the pyramid shapes).  The query of the attention block
        is ``src + pos`` while the value is ``src`` itself.
        """
        src = np.asarray(src, dtype=FLOAT_DTYPE)
        pos = np.asarray(pos, dtype=FLOAT_DTYPE)
        query = src + pos
        attn = self.self_attn.forward_detailed(
            query, reference_points, src, spatial_shapes, with_trace=with_trace
        )
        out = self.forward_ffn_stage(src, attn.output)
        return EncoderLayerOutput(output=out, attention=attn)

    def forward_ffn_stage(
        self,
        src: np.ndarray,
        attn_output: np.ndarray,
        keep_mask: np.ndarray | None = None,
        compact: bool = False,
        plan=None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """The inter-block stage ``norm2(z + ffn(z))``, ``z = norm1(src + attn)``.

        Parameters
        ----------
        src:
            Block input of shape ``(N, D)`` or ``(B, N, D)``.
        attn_output:
            Same-shape output of the attention block.
        keep_mask:
            Optional boolean keep-mask over the rows (``(N,)``, or ``(B, N)``
            when batched).  Pruned rows skip the residual adds, ``norm1``, the
            FFN and ``norm2`` entirely and *carry the block input unchanged*
            (the frozen-value convention of the block-sparse encoder: a pixel
            the FWP mask pruned from the query side contributes nothing to
            this block, so its residual stream is frozen at the block input).
            ``None`` runs the ordinary dense stage.
        compact:
            With a mask: ``True`` gathers the kept rows and runs the stage
            row-compacted (the wall-clock savings; the residual adds run on
            the gathered rows, then :class:`LayerNorm`/:class:`FeedForward`
            row-local forwards — the hoisted-gather form of their
            ``forward_rows`` entry points); ``False`` computes the stage
            densely and masks, which implements identical semantics (kept
            rows agree to float32 matmul precision, frozen rows exactly).
        plan:
            Optional :class:`~repro.kernels.ExecutionPlan`.  When given,
            every stage intermediate (residual adds, the FFN hidden buffer —
            the largest temporary of the whole block — and the norm outputs)
            lives in reused arena buffers, bit-identically to the allocating
            path.
        out:
            Optional destination for the stage output (same shape as ``src``,
            must not alias it) — the encoder runner passes alternating stream
            buffers so consecutive blocks ping-pong between two arrays.
            Requires ``plan``; without a plan the stage always allocates.

        Returns the stage output in the shape of ``src``.
        """
        src = np.asarray(src, dtype=FLOAT_DTYPE)
        attn_output = np.asarray(attn_output, dtype=FLOAT_DTYPE)
        if out is not None and plan is None:
            raise ValueError("forward_ffn_stage: out= requires a plan")
        if keep_mask is None:
            if plan is not None:
                mixed = plan.buffer("ffn.mixed", src.shape)
                src2 = plan.buffer("ffn.src2", src.shape)
                hidden = plan.buffer("ffn.hidden", src.shape[:-1] + (self.ffn.d_ffn,))
                with kernel_section("norm"):
                    np.add(src, attn_output, out=mixed)
                    self.norm1.forward_into(mixed, src2)
                with kernel_section("ffn"):
                    self.ffn.forward_into(src2, mixed, hidden)  # mixed = ffn_out
                with kernel_section("norm"):
                    np.add(src2, mixed, out=mixed)
                    result = out if out is not None else plan.buffer("ffn.out", src.shape)
                    self.norm2.forward_into(mixed, result)
                return result
            with kernel_section("norm"):
                src2 = self.norm1(src + attn_output)
            with kernel_section("ffn"):
                ffn_out = self.ffn(src2)
            with kernel_section("norm"):
                out_dense = self.norm2(src2 + ffn_out)
            return out_dense.astype(FLOAT_DTYPE)
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape != src.shape[:-1]:
            raise ValueError("keep_mask must match the row shape of src")
        if not compact:
            dense = self.forward_ffn_stage(src, attn_output, plan=plan)
            if plan is not None:
                result = out if out is not None else plan.buffer("ffn.masked_out", src.shape)
                np.copyto(result, src)
                result[keep_mask] = dense[keep_mask]
                return result
            out_masked = src.copy()
            out_masked[keep_mask] = dense[keep_mask]
            return out_masked
        d_model = src.shape[-1]
        flat_src = src.reshape(-1, d_model)
        flat_attn = attn_output.reshape(-1, d_model)
        kept = np.flatnonzero(keep_mask.reshape(-1))
        if plan is not None:
            result = out if out is not None else plan.buffer("ffn.compact_out", src.shape)
            np.copyto(result, src)
            if kept.size:
                with kernel_section("norm"):
                    mixed = plan.take("ffn.rows_mixed", flat_src, kept)
                    rows_attn = plan.take("ffn.rows_attn", flat_attn, kept)
                    np.add(mixed, rows_attn, out=mixed)
                    src2 = plan.buffer("ffn.rows_src2", mixed.shape)
                    self.norm1.forward_into(mixed, src2)
                with kernel_section("ffn"):
                    hidden = plan.buffer("ffn.hidden", (kept.size, self.ffn.d_ffn))
                    self.ffn.forward_into(src2, mixed, hidden)  # mixed = ffn_out
                with kernel_section("norm"):
                    np.add(src2, mixed, out=mixed)
                    self.norm2.forward_into(mixed, src2)  # src2 = output rows
                result.reshape(-1, d_model)[kept] = src2
            return result
        out_compact = src.copy()
        if kept.size:
            with kernel_section("norm"):
                src2 = self.norm1(flat_src[kept] + flat_attn[kept])
            with kernel_section("ffn"):
                ffn_out = self.ffn(src2)
            with kernel_section("norm"):
                rows = self.norm2(src2 + ffn_out)
            out_compact.reshape(-1, d_model)[kept] = rows
        return out_compact

    def forward(
        self,
        src: np.ndarray,
        pos: np.ndarray,
        reference_points: np.ndarray,
        spatial_shapes: list[LevelShape],
    ) -> np.ndarray:
        """Layer output of shape ``(N_in, D)`` (``(B, N_in, D)`` when batched)."""
        return self.forward_detailed(src, pos, reference_points, spatial_shapes).output

    def flops(self, num_tokens: int) -> dict[str, int]:
        """FLOP breakdown of the layer: attention operators + FFN."""
        breakdown = self.self_attn.flops(num_tokens, num_tokens)
        breakdown["ffn"] = self.ffn.flops(num_tokens)
        return breakdown


class DeformableEncoder(Module):
    """A stack of :class:`DeformableEncoderLayer` blocks."""

    def __init__(
        self,
        num_layers: int = 6,
        d_model: int = 256,
        num_heads: int = 8,
        num_levels: int = 4,
        num_points: int = 4,
        ffn_dim: int = 1024,
        activation: str = "relu",
        attention_sharpness: float = 2.5,
        offset_scale: float = 2.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        rngs = spawn_rngs(rng, num_layers)
        self.d_model = d_model
        self.num_layers = num_layers
        self.layers = [
            DeformableEncoderLayer(
                d_model=d_model,
                num_heads=num_heads,
                num_levels=num_levels,
                num_points=num_points,
                ffn_dim=ffn_dim,
                activation=activation,
                attention_sharpness=attention_sharpness,
                offset_scale=offset_scale,
                rng=rngs[i],
            )
            for i in range(num_layers)
        ]

    def forward_detailed(
        self,
        src: np.ndarray,
        pos: np.ndarray,
        reference_points: np.ndarray,
        spatial_shapes: list[LevelShape],
        with_trace: bool = False,
    ) -> EncoderOutput:
        """Run all layers, collecting per-layer intermediates.

        ``src`` may be a single image ``(N_in, D)`` or a batch ``(B, N_in, D)``;
        batched runs execute every layer on the whole batch at once.
        """
        outputs: list[EncoderLayerOutput] = []
        x = np.asarray(src, dtype=FLOAT_DTYPE)
        for layer in self.layers:
            layer_out = layer.forward_detailed(
                x, pos, reference_points, spatial_shapes, with_trace=with_trace
            )
            outputs.append(layer_out)
            x = layer_out.output
        return EncoderOutput(memory=x, layers=outputs)

    def forward(
        self,
        src: np.ndarray,
        pos: np.ndarray,
        reference_points: np.ndarray,
        spatial_shapes: list[LevelShape],
    ) -> np.ndarray:
        """Final encoder memory of shape ``(N_in, D)`` (``(B, N_in, D)`` batched)."""
        x = np.asarray(src, dtype=FLOAT_DTYPE)
        for layer in self.layers:
            x = layer(x, pos, reference_points, spatial_shapes)
        return x

    def flops(self, num_tokens: int) -> dict[str, int]:
        """Aggregate FLOP breakdown over all layers."""
        total: dict[str, int] = {}
        for layer in self.layers:
            for key, val in layer.flops(num_tokens).items():
                total[key] = total.get(key, 0) + val
        return total
