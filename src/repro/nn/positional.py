"""Reference points and positional encodings for deformable encoders.

In the Deformable DETR encoder every query corresponds to a pixel of the
flattened multi-scale feature pyramid.  Its *reference point* is the
normalized centre of that pixel, replicated for every level it samples from.
The sine positional encoding follows the DETR convention (independent sine /
cosine embedding of the normalized x and y coordinates plus a learnable
level embedding is approximated here by a deterministic level offset).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.shapes import LevelShape, total_pixels


def make_reference_points(spatial_shapes: list[LevelShape]) -> np.ndarray:
    """Normalized reference points for every encoder query.

    Returns an array of shape ``(N_in, N_l, 2)`` in ``(x, y)`` order, where the
    reference point of a query (a pixel in level ``l``) is the normalized
    centre of that pixel, broadcast to all ``N_l`` sampled levels (the
    Deformable DETR convention).
    """
    n_levels = len(spatial_shapes)
    if n_levels == 0:
        raise ValueError("spatial_shapes must not be empty")
    points = []
    for shape in spatial_shapes:
        ys = (np.arange(shape.height, dtype=FLOAT_DTYPE) + 0.5) / shape.height
        xs = (np.arange(shape.width, dtype=FLOAT_DTYPE) + 0.5) / shape.width
        grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
        pts = np.stack([grid_x.ravel(), grid_y.ravel()], axis=-1)  # (H*W, 2)
        points.append(pts)
    all_points = np.concatenate(points, axis=0)  # (N_in, 2)
    n_in = total_pixels(spatial_shapes)
    if all_points.shape[0] != n_in:
        raise AssertionError("reference point count mismatch")
    return np.broadcast_to(all_points[:, None, :], (n_in, n_levels, 2)).astype(FLOAT_DTYPE).copy()


def sine_positional_encoding(
    spatial_shapes: list[LevelShape], d_model: int, temperature: float = 10000.0
) -> np.ndarray:
    """Sine/cosine positional encoding of shape ``(N_in, d_model)``.

    Half of the channels encode the normalized y coordinate and half the x
    coordinate, each with alternating sine and cosine at geometrically spaced
    frequencies.  A small deterministic per-level offset stands in for the
    learnable level embedding of the reference implementation.
    """
    if d_model % 4 != 0:
        raise ValueError("d_model must be divisible by 4 for sine positional encoding")
    num_pos_feats = d_model // 2
    dim_t = np.arange(num_pos_feats, dtype=FLOAT_DTYPE)
    dim_t = temperature ** (2 * (dim_t // 2) / num_pos_feats)

    chunks = []
    for lvl, shape in enumerate(spatial_shapes):
        ys = (np.arange(shape.height, dtype=FLOAT_DTYPE) + 0.5) / shape.height
        xs = (np.arange(shape.width, dtype=FLOAT_DTYPE) + 0.5) / shape.width
        grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
        pos_x = grid_x.ravel()[:, None] * 2 * np.pi / dim_t
        pos_y = grid_y.ravel()[:, None] * 2 * np.pi / dim_t
        pos_x = np.stack([np.sin(pos_x[:, 0::2]), np.cos(pos_x[:, 1::2])], axis=-1).reshape(
            -1, num_pos_feats
        )
        pos_y = np.stack([np.sin(pos_y[:, 0::2]), np.cos(pos_y[:, 1::2])], axis=-1).reshape(
            -1, num_pos_feats
        )
        pos = np.concatenate([pos_y, pos_x], axis=-1)
        # Deterministic stand-in for the learnable level embedding.
        pos = pos + 0.1 * lvl
        chunks.append(pos.astype(FLOAT_DTYPE))
    return np.concatenate(chunks, axis=0)
