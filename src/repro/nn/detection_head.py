"""Analytic prototype-matching detection head for the synthetic task.

The paper measures COCO AP with the trained detection heads of Deformable
DETR / DN-DETR / DINO.  Offline we cannot train a head, so the reproduction
uses a calibration-based matched filter instead:

1. **Calibration** — run the *baseline* (unpruned, full-precision) encoder on
   a handful of synthetic scenes and record the encoder output vector at the
   centre pixel of every ground-truth object.  The per-class average of those
   vectors becomes the class *prototype*.
2. **Detection** — for a new scene, compute the cosine similarity between the
   encoder memory and each class prototype at every pyramid pixel, find local
   maxima above a score threshold, and grow each peak into a box by taking the
   bounding box of the connected region whose score exceeds a fraction of the
   peak value.  Class-wise non-maximum suppression merges duplicates across
   pyramid levels.

Because the prototypes are calibrated on the unmodified encoder, any
perturbation introduced by pruning or quantization lowers similarity scores
and box quality exactly the way a fixed trained head would degrade — this is
the behaviour Fig. 6(a) measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.shapes import LevelShape, level_start_indices


@dataclass
class DetectionResult:
    """Detections for one scene.

    ``boxes`` are ``(N, 4)`` arrays of normalized ``(x1, y1, x2, y2)``
    coordinates, ``scores`` are confidence values in ``[0, 1]`` and ``labels``
    are integer class ids.
    """

    boxes: np.ndarray
    scores: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.boxes = np.asarray(self.boxes, dtype=FLOAT_DTYPE).reshape(-1, 4)
        self.scores = np.asarray(self.scores, dtype=FLOAT_DTYPE).reshape(-1)
        self.labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        if not (len(self.boxes) == len(self.scores) == len(self.labels)):
            raise ValueError("boxes, scores and labels must have the same length")

    @property
    def num_detections(self) -> int:
        return len(self.scores)

    @staticmethod
    def empty() -> "DetectionResult":
        """A result with no detections."""
        return DetectionResult(
            boxes=np.zeros((0, 4), dtype=FLOAT_DTYPE),
            scores=np.zeros(0, dtype=FLOAT_DTYPE),
            labels=np.zeros(0, dtype=np.int64),
        )


def box_iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between two sets of ``(x1, y1, x2, y2)`` boxes."""
    boxes_a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    boxes_b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    if len(boxes_a) == 0 or len(boxes_b) == 0:
        return np.zeros((len(boxes_a), len(boxes_b)))
    x1 = np.maximum(boxes_a[:, None, 0], boxes_b[None, :, 0])
    y1 = np.maximum(boxes_a[:, None, 1], boxes_b[None, :, 1])
    x2 = np.minimum(boxes_a[:, None, 2], boxes_b[None, :, 2])
    y2 = np.minimum(boxes_a[:, None, 3], boxes_b[None, :, 3])
    inter = np.clip(x2 - x1, 0, None) * np.clip(y2 - y1, 0, None)
    area_a = np.clip(boxes_a[:, 2] - boxes_a[:, 0], 0, None) * np.clip(
        boxes_a[:, 3] - boxes_a[:, 1], 0, None
    )
    area_b = np.clip(boxes_b[:, 2] - boxes_b[:, 0], 0, None) * np.clip(
        boxes_b[:, 3] - boxes_b[:, 1], 0, None
    )
    union = area_a[:, None] + area_b[None, :] - inter
    return np.where(union > 0, inter / union, 0.0)


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5) -> np.ndarray:
    """Greedy non-maximum suppression; returns the indices of kept boxes."""
    order = np.argsort(-np.asarray(scores))
    keep: list[int] = []
    suppressed = np.zeros(len(order), dtype=bool)
    iou = box_iou_matrix(boxes, boxes)
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(int(idx))
        suppressed |= iou[idx] > iou_threshold
        suppressed[idx] = True
    return np.array(keep, dtype=np.int64)


@dataclass
class PrototypeDetectionHead:
    """Matched-filter detection head operating on encoder memory.

    Parameters
    ----------
    num_classes:
        Number of object classes in the synthetic task.
    score_threshold:
        Minimum cosine-similarity score for a peak to become a detection.
    region_threshold:
        Fraction of the peak score used to grow the detection box.
    nms_iou:
        IoU threshold of the class-wise non-maximum suppression.
    max_detections:
        Maximum number of detections kept per scene (COCO uses 100).
    """

    num_classes: int
    score_threshold: float = 0.25
    region_threshold: float = 0.55
    nms_iou: float = 0.5
    max_detections: int = 100
    prototypes: np.ndarray | None = field(default=None, repr=False)

    # ----------------------------------------------------------- calibration

    def calibrate(
        self,
        memories: list[np.ndarray],
        spatial_shapes: list[LevelShape],
        gt_boxes: list[np.ndarray],
        gt_labels: list[np.ndarray],
    ) -> None:
        """Build class prototypes from baseline encoder memories.

        Parameters
        ----------
        memories:
            One ``(N_in, D)`` encoder output per calibration scene.
        spatial_shapes:
            Pyramid level shapes (shared by all scenes).
        gt_boxes, gt_labels:
            Ground-truth boxes (normalized ``(x1, y1, x2, y2)``) and class ids
            of every calibration scene.
        """
        if not memories:
            raise ValueError("at least one calibration scene is required")
        d_model = memories[0].shape[1]
        sums = np.zeros((self.num_classes, d_model), dtype=np.float64)
        counts = np.zeros(self.num_classes, dtype=np.int64)
        for memory, boxes, labels in zip(memories, gt_boxes, gt_labels):
            for box, label in zip(np.asarray(boxes).reshape(-1, 4), np.asarray(labels).reshape(-1)):
                label = int(label)
                if not 0 <= label < self.num_classes:
                    raise ValueError(f"label {label} out of range")
                vec = self._center_vector(memory, spatial_shapes, box)
                sums[label] += vec
                counts[label] += 1
        prototypes = np.zeros_like(sums)
        for cls in range(self.num_classes):
            if counts[cls] > 0:
                prototypes[cls] = sums[cls] / counts[cls]
        norms = np.linalg.norm(prototypes, axis=1, keepdims=True)
        self.prototypes = (prototypes / np.maximum(norms, 1e-12)).astype(FLOAT_DTYPE)

    def _center_vector(
        self, memory: np.ndarray, spatial_shapes: list[LevelShape], box: np.ndarray
    ) -> np.ndarray:
        """Encoder output at the centre pixel of *box*, on the best-matching level."""
        level = self._level_for_box(box, spatial_shapes)
        shape = spatial_shapes[level]
        start = level_start_indices(spatial_shapes)[level]
        cx = (box[0] + box[2]) / 2.0
        cy = (box[1] + box[3]) / 2.0
        col = int(np.clip(cx * shape.width, 0, shape.width - 1))
        row = int(np.clip(cy * shape.height, 0, shape.height - 1))
        return np.asarray(memory[start + row * shape.width + col], dtype=np.float64)

    @staticmethod
    def _level_for_box(box: np.ndarray, spatial_shapes: list[LevelShape]) -> int:
        """Assign a box to the pyramid level whose pixels roughly match its size."""
        width = max(float(box[2] - box[0]), 1e-6)
        height = max(float(box[3] - box[1]), 1e-6)
        # Aim for boxes covering roughly 4-8 pixels on the chosen level.
        best_level = 0
        best_err = np.inf
        for lvl, shape in enumerate(spatial_shapes):
            pixels = width * shape.width * height * shape.height
            err = abs(np.log(max(pixels, 1e-6) / 16.0))
            if err < best_err:
                best_err = err
                best_level = lvl
        return best_level

    # ------------------------------------------------------------- detection

    def detect(self, memory: np.ndarray, spatial_shapes: list[LevelShape]) -> DetectionResult:
        """Detect objects in one scene from its encoder memory."""
        if self.prototypes is None:
            raise RuntimeError("detection head must be calibrated before use")
        memory = np.asarray(memory, dtype=FLOAT_DTYPE)
        norms = np.linalg.norm(memory, axis=1, keepdims=True)
        normalized = memory / np.maximum(norms, 1e-12)
        starts = level_start_indices(spatial_shapes)

        all_boxes: list[np.ndarray] = []
        all_scores: list[float] = []
        all_labels: list[int] = []
        for lvl, shape in enumerate(spatial_shapes):
            chunk = normalized[starts[lvl] : starts[lvl] + shape.num_pixels]
            score_maps = (chunk @ self.prototypes.T).reshape(shape.height, shape.width, -1)
            for cls in range(self.num_classes):
                score_map = score_maps[:, :, cls]
                boxes, scores = self._peaks_to_boxes(score_map)
                all_boxes.extend(boxes)
                all_scores.extend(scores)
                all_labels.extend([cls] * len(scores))

        if not all_scores:
            return DetectionResult.empty()
        boxes = np.asarray(all_boxes, dtype=FLOAT_DTYPE)
        scores = np.asarray(all_scores, dtype=FLOAT_DTYPE)
        labels = np.asarray(all_labels, dtype=np.int64)

        # Class-wise NMS.
        kept_idx: list[int] = []
        for cls in np.unique(labels):
            cls_idx = np.flatnonzero(labels == cls)
            keep = nms(boxes[cls_idx], scores[cls_idx], self.nms_iou)
            kept_idx.extend(cls_idx[keep].tolist())
        kept_idx = sorted(kept_idx, key=lambda i: -scores[i])[: self.max_detections]
        return DetectionResult(boxes=boxes[kept_idx], scores=scores[kept_idx], labels=labels[kept_idx])

    def _peaks_to_boxes(self, score_map: np.ndarray) -> tuple[list[np.ndarray], list[float]]:
        """Convert a per-class similarity map into boxes via peak + region growing."""
        height, width = score_map.shape
        local_max = ndimage.maximum_filter(score_map, size=3, mode="nearest")
        peaks = (score_map >= local_max - 1e-9) & (score_map >= self.score_threshold)
        boxes: list[np.ndarray] = []
        scores: list[float] = []
        if not np.any(peaks):
            return boxes, scores
        peak_rows, peak_cols = np.nonzero(peaks)
        order = np.argsort(-score_map[peak_rows, peak_cols])
        used = np.zeros_like(score_map, dtype=bool)
        for idx in order:
            row, col = int(peak_rows[idx]), int(peak_cols[idx])
            if used[row, col]:
                continue
            peak_score = float(score_map[row, col])
            region_mask = score_map >= self.region_threshold * peak_score
            labeled, _ = ndimage.label(region_mask)
            region_id = labeled[row, col]
            region = labeled == region_id
            used |= region
            rows, cols = np.nonzero(region)
            x1 = cols.min() / width
            x2 = (cols.max() + 1) / width
            y1 = rows.min() / height
            y2 = (rows.max() + 1) / height
            boxes.append(np.array([x1, y1, x2, y2], dtype=FLOAT_DTYPE))
            scores.append(peak_score)
        return boxes, scores
