"""Standard (dense) multi-head self-attention.

Used as the reference point for the paper's complexity argument: traditional
attention traverses all ``N_in`` tokens per query (``O(N^2)`` via
``Q K^T``), which is what MSDeformAttn avoids by sampling only
``N_l * N_p`` points per query.  The module is also used by tests to sanity
check the FLOP accounting of the baselines.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Linear, Module
from repro.nn.tensor_utils import FLOAT_DTYPE, softmax
from repro.utils.rng import as_rng


class MultiHeadAttention(Module):
    """Dense multi-head self-attention over a single sequence.

    Parameters
    ----------
    d_model:
        Hidden dimension.
    num_heads:
        Number of attention heads.
    rng:
        Seed or generator for weight initialization.
    """

    def __init__(
        self,
        d_model: int = 256,
        num_heads: int = 8,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if d_model % num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        rng = as_rng(rng)
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)

    def forward(self, query: np.ndarray, key: np.ndarray | None = None, value: np.ndarray | None = None) -> np.ndarray:
        """Attention output of shape ``(N_q, D)``.

        ``key``/``value`` default to ``query`` (self-attention).
        """
        query = np.asarray(query, dtype=FLOAT_DTYPE)
        key = query if key is None else np.asarray(key, dtype=FLOAT_DTYPE)
        value = key if value is None else np.asarray(value, dtype=FLOAT_DTYPE)
        n_q, n_k = query.shape[0], key.shape[0]

        q = self.q_proj(query).reshape(n_q, self.num_heads, self.d_head)
        k = self.k_proj(key).reshape(n_k, self.num_heads, self.d_head)
        v = self.v_proj(value).reshape(n_k, self.num_heads, self.d_head)

        scale = 1.0 / np.sqrt(self.d_head)
        scores = np.einsum("qhd,khd->hqk", q, k) * scale
        probs = softmax(scores, axis=-1)
        context = np.einsum("hqk,khd->qhd", probs, v).reshape(n_q, self.d_model)
        return self.out_proj(context)

    def flops(self, num_queries: int, num_keys: int) -> dict[str, int]:
        """FLOP breakdown of one dense attention pass (used for comparisons)."""
        return {
            "q_proj": self.q_proj.flops(num_queries),
            "k_proj": self.k_proj.flops(num_keys),
            "v_proj": self.v_proj.flops(num_keys),
            "out_proj": self.out_proj.flops(num_queries),
            "qk": int(2 * num_queries * num_keys * self.d_model),
            "softmax": int(5 * num_queries * num_keys * self.num_heads),
            "pv": int(2 * num_queries * num_keys * self.d_model),
        }
