"""Closed-form fitting of the deformable-attention heads to object-seeking targets.

Trained Deformable-DETR models exhibit two statistical properties that the
DEFA algorithm exploits:

* the softmax attention probabilities of each (query, head) are strongly
  peaked — over 80 % of the ``N_l * N_p`` points carry near-zero probability
  (what PAP prunes), and
* the high-probability sampling points concentrate on a small set of
  informative fmap pixels around objects, so the sampled-frequency
  distribution is highly non-uniform (what FWP prunes).

Randomly initialized heads do not have these properties, and no checkpoints or
training are available offline.  This module therefore *constructs* the
sampling-offset head ``W^S`` and the attention-weight head ``W^A`` in closed
form: desired offsets/logits are defined analytically from the known object
layout of the synthetic workload (points near an object aim at it and receive
high logits; background queries keep a small default point set), and the
linear heads are fitted to those targets with ridge regression.  The fit is a
linear probe solved exactly — no iterative training — and the resulting module
is still an ordinary :class:`~repro.nn.msdeform_attn.MSDeformAttn` whose
behaviour (peaked attention, object-concentrated sampling) mirrors a trained
model.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.encoder import DeformableEncoder
from repro.nn.msdeform_attn import MSDeformAttn
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.rng import as_rng
from repro.utils.shapes import LevelShape


@dataclass(frozen=True)
class ObjectLayout:
    """Positions and sizes of the salient objects of one workload input.

    ``centers`` is ``(K, 2)`` in normalized ``(x, y)`` coordinates and
    ``radii`` is ``(K,)`` in normalized units (roughly half the object size).
    """

    centers: np.ndarray
    radii: np.ndarray

    def __post_init__(self) -> None:
        centers = np.asarray(self.centers, dtype=FLOAT_DTYPE).reshape(-1, 2)
        radii = np.asarray(self.radii, dtype=FLOAT_DTYPE).reshape(-1)
        if len(centers) != len(radii):
            raise ValueError("centers and radii must have the same length")
        if len(centers) == 0:
            raise ValueError("object layout must contain at least one object")
        object.__setattr__(self, "centers", centers)
        object.__setattr__(self, "radii", radii)

    @property
    def num_objects(self) -> int:
        return len(self.radii)

    @staticmethod
    def from_boxes(boxes: np.ndarray) -> "ObjectLayout":
        """Build a layout from normalized ``(x1, y1, x2, y2)`` boxes."""
        boxes = np.asarray(boxes, dtype=FLOAT_DTYPE).reshape(-1, 4)
        centers = np.stack(
            [(boxes[:, 0] + boxes[:, 2]) / 2.0, (boxes[:, 1] + boxes[:, 3]) / 2.0], axis=-1
        )
        radii = ((boxes[:, 2] - boxes[:, 0]) + (boxes[:, 3] - boxes[:, 1])) / 4.0
        return ObjectLayout(centers=centers, radii=np.maximum(radii, 1e-3))


@dataclass(frozen=True)
class FittingConfig:
    """Hyper-parameters of the target construction and the ridge fit."""

    locality: float = 0.22
    """Length scale (normalized) of the Gaussian attractor field around objects."""

    logit_high: float = 4.0
    """Desired logit of the points aimed at an object (or of the default points)."""

    logit_low: float = -4.0
    """Desired logit of all other points."""

    num_background_points: int = 2
    """Number of default high-logit points of queries without a nearby object."""

    ring_fraction: float = 0.5
    """Sampling points are placed on a ring of this fraction of the object radius."""

    target_pixels: float = 3.0
    """Preferred level is the one where the object radius spans about this many pixels."""

    ridge_lambda: float = 1e-2
    """L2 regularization of the ridge regression."""

    target_noise: float = 0.15
    """Relative noise added to the desired offsets (keeps the fit realistic)."""


def _level_affinity(
    radii: np.ndarray, spatial_shapes: list[LevelShape], target_pixels: float
) -> np.ndarray:
    """Soft assignment of object radii to pyramid levels.

    Returns ``(N_q, N_l)`` affinities in ``[0, 1]`` that peak on the level
    where an object of the given radius spans roughly ``target_pixels``
    pixels.  Using a soft assignment (rather than a hard argmin) keeps the
    desired targets a smooth function of position, which the sine positional
    encoding can represent well in a linear fit.
    """
    radii = np.asarray(radii, dtype=np.float64).reshape(-1, 1)
    spans = np.array(
        [max(1e-6, min(s.width, s.height)) for s in spatial_shapes], dtype=np.float64
    )[None, :]
    log_err = np.log(np.maximum(radii * spans, 1e-6) / target_pixels)
    affinity = np.exp(-(log_err**2) / (2.0 * 0.5**2))
    affinity /= np.maximum(affinity.max(axis=1, keepdims=True), 1e-12)
    return affinity


def build_desired_targets(
    reference_points: np.ndarray,
    spatial_shapes: list[LevelShape],
    layout: ObjectLayout,
    num_heads: int,
    num_points: int,
    config: FittingConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Construct desired sampling offsets and attention logits.

    The targets are *smooth* functions of the query position so that a linear
    head over content + sine positional features can fit them:

    * every query is softly attracted to the nearby objects (a Gaussian
      attractor field over the object layout),
    * on the levels matching the attracting object's size, the sampling points
      form a small ring inside the object and receive high (graded) logits,
    * away from objects the points fall back to a local ring around the
      reference point and only a small fixed subset keeps a high logit.

    Returns
    -------
    desired_offsets:
        ``(N_q, N_h, N_l, N_p, 2)`` offsets in pixel units of the sampled
        level (the raw output convention of the offset head).
    desired_logits:
        ``(N_q, N_h, N_l * N_p)`` target logits of the attention head.
    """
    config = config or FittingConfig()
    rng = as_rng(rng)
    ref = np.asarray(reference_points, dtype=FLOAT_DTYPE)[:, 0, :]  # (N_q, 2), shared per level
    n_q = ref.shape[0]
    n_l = len(spatial_shapes)

    # Soft attractor field over the object layout.
    diffs = layout.centers[None, :, :] - ref[:, None, :]  # (N_q, K, 2)
    dists = np.linalg.norm(diffs, axis=-1)  # (N_q, K)
    sigma = config.locality
    weights = np.exp(-(dists**2) / (2.0 * sigma**2))  # (N_q, K)
    weight_sum = weights.sum(axis=1, keepdims=True)
    soft_weights = weights / np.maximum(weight_sum, 1e-12)
    attract_center = soft_weights @ layout.centers  # (N_q, 2)
    attract_radius = soft_weights @ layout.radii  # (N_q,)
    objectness = np.clip(weights.max(axis=1), 0.0, 1.0)  # (N_q,)

    level_affinity = _level_affinity(attract_radius, spatial_shapes, config.target_pixels)
    level_sizes = np.array([[s.width, s.height] for s in spatial_shapes], dtype=FLOAT_DTYPE)

    angles = (
        2.0
        * np.pi
        * (
            np.arange(num_points, dtype=FLOAT_DTYPE)[None, :] / num_points
            + np.arange(num_heads, dtype=FLOAT_DTYPE)[:, None] / (num_heads * num_points)
        )
    )  # (N_h, N_p)
    unit = np.stack([np.cos(angles), np.sin(angles)], axis=-1)  # (N_h, N_p, 2)

    desired_offsets = np.zeros((n_q, num_heads, n_l, num_points, 2), dtype=FLOAT_DTYPE)
    desired_logits = np.zeros((n_q, num_heads, n_l, num_points), dtype=FLOAT_DTYPE)

    # Graded high logits for the object-directed points of a head and the fixed
    # default pattern of background queries.
    grading = np.linspace(1.0, 0.2, num_points, dtype=FLOAT_DTYPE)
    background_pattern = np.zeros((n_l, num_points), dtype=FLOAT_DTYPE)
    background_pattern[: min(2, n_l), : config.num_background_points] = 1.0

    for lvl in range(n_l):
        size = level_sizes[lvl]  # (width, height)
        ring = config.ring_fraction * attract_radius[:, None, None, None]
        loc_obj = attract_center[:, None, None, :] + ring * unit[None, :, :, :]
        local_radius = (np.arange(num_points, dtype=FLOAT_DTYPE) + 1.0) / float(size.min())
        loc_local = ref[:, None, None, :] + local_radius[None, None, :, None] * unit[None, :, :, :]

        blend = (objectness * level_affinity[:, lvl])[:, None, None, None]  # (N_q,1,1,1)
        loc = (1.0 - blend) * loc_local + blend * loc_obj
        offsets = (loc - ref[:, None, None, :]) * size[None, None, None, :]
        noise = rng.normal(0.0, config.target_noise, size=offsets.shape).astype(FLOAT_DTYPE)
        desired_offsets[:, :, lvl] = offsets * (1.0 + noise)

        obj_score = blend[..., 0] * grading[None, None, :]  # (N_q, N_h, N_p)
        bg_score = (1.0 - objectness)[:, None, None] * background_pattern[lvl][None, None, :]
        score = np.clip(obj_score + bg_score, 0.0, 1.0)
        desired_logits[:, :, lvl] = config.logit_low + (config.logit_high - config.logit_low) * score

    desired_logits = desired_logits.reshape(n_q, num_heads, n_l * num_points)
    return desired_offsets, desired_logits


def ridge_fit(features: np.ndarray, targets: np.ndarray, ridge_lambda: float) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``min ||F W + b - T||^2 + lambda ||W||^2`` in closed form.

    Returns ``(weight, bias)`` with shapes ``(D, T_dim)`` and ``(T_dim,)``.
    """
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64).reshape(features.shape[0], -1)
    mean_f = features.mean(axis=0)
    mean_t = targets.mean(axis=0)
    fc = features - mean_f
    tc = targets - mean_t
    d = features.shape[1]
    gram = fc.T @ fc + ridge_lambda * features.shape[0] * np.eye(d)
    weight = np.linalg.solve(gram, fc.T @ tc)
    bias = mean_t - mean_f @ weight
    return weight.astype(FLOAT_DTYPE), bias.astype(FLOAT_DTYPE)


def fit_attention_heads(
    attn: MSDeformAttn,
    query_features: np.ndarray,
    reference_points: np.ndarray,
    spatial_shapes: list[LevelShape],
    layout: ObjectLayout,
    config: FittingConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> None:
    """Fit ``W^S`` / ``W^A`` of one attention module in place."""
    config = config or FittingConfig()
    desired_offsets, desired_logits = build_desired_targets(
        reference_points,
        spatial_shapes,
        layout,
        num_heads=attn.num_heads,
        num_points=attn.num_points,
        config=config,
        rng=rng,
    )
    n_q = query_features.shape[0]
    weight, bias = ridge_fit(
        query_features, desired_offsets.reshape(n_q, -1), config.ridge_lambda
    )
    attn.sampling_offsets.weight = weight
    attn.sampling_offsets.bias = bias
    weight, bias = ridge_fit(query_features, desired_logits.reshape(n_q, -1), config.ridge_lambda)
    attn.attention_weights.weight = weight
    attn.attention_weights.bias = bias


def fit_encoder_heads(
    encoder: DeformableEncoder,
    features: np.ndarray,
    pos: np.ndarray,
    reference_points: np.ndarray,
    spatial_shapes: list[LevelShape],
    layout: ObjectLayout,
    config: FittingConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> None:
    """Fit the offset/attention heads of every encoder layer in place.

    Layers are fitted sequentially: layer *i* is fitted against the targets
    evaluated on its actual input (the output of the already-fitted layer
    *i-1*), mirroring how a trained network adapts each layer to the previous
    one.
    """
    rng = as_rng(rng)
    x = np.asarray(features, dtype=FLOAT_DTYPE)
    for layer in encoder.layers:
        query = x + pos
        fit_attention_heads(
            layer.self_attn, query, reference_points, spatial_shapes, layout, config=config, rng=rng
        )
        x = layer.forward(x, pos, reference_points, spatial_shapes)
