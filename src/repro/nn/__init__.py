"""NumPy neural-network substrate for the DEFA reproduction.

This subpackage provides everything the paper's workloads need, implemented
from scratch on top of NumPy:

* basic modules (:class:`~repro.nn.modules.Linear`,
  :class:`~repro.nn.modules.LayerNorm`, activations, feed-forward blocks),
* standard multi-head attention (the DETR baseline operator),
* bilinear grid-sampling kernels (:mod:`repro.nn.grid_sample`),
* the multi-scale deformable attention operator
  (:class:`~repro.nn.msdeform_attn.MSDeformAttn`),
* deformable transformer encoder layers and encoders,
* a synthetic FPN backbone and the encoder configurations of
  Deformable DETR / DN-DETR / DINO,
* an analytic detection head for the synthetic detection task.
"""

from repro.nn.modules import GELU, LayerNorm, Linear, Module, ReLU, Sequential
from repro.nn.msdeform_attn import MSDeformAttn, MSDeformAttnOutput
from repro.nn.grid_sample import (
    bilinear_neighbors,
    bilinear_sample_level,
    ms_deform_attn_core,
)
from repro.nn.encoder import DeformableEncoder, DeformableEncoderLayer
from repro.nn.models import ModelConfig, build_encoder, get_model_config

__all__ = [
    "Module",
    "Linear",
    "LayerNorm",
    "ReLU",
    "GELU",
    "Sequential",
    "MSDeformAttn",
    "MSDeformAttnOutput",
    "bilinear_neighbors",
    "bilinear_sample_level",
    "ms_deform_attn_core",
    "DeformableEncoder",
    "DeformableEncoderLayer",
    "ModelConfig",
    "build_encoder",
    "get_model_config",
]
