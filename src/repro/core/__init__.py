"""DEFA algorithm level: pruning-assisted grid sampling (the paper's core contribution)."""

from repro.core.config import DEFAConfig
from repro.core.fwp import FWPResult, compute_fmap_mask
from repro.core.pap import PAPResult, compute_point_mask
from repro.core.range_narrowing import RangeNarrowing
from repro.core.sampling_stats import sampled_frequency
from repro.core.flops import FlopsBreakdown, msdeform_attn_flops
from repro.core.pipeline import (
    SPARSE_MODES,
    DEFAAttention,
    DEFAAttentionOutput,
    DEFALayerStats,
)
from repro.core.encoder_runner import DEFAEncoderResult, DEFAEncoderRunner

__all__ = [
    "SPARSE_MODES",
    "DEFAConfig",
    "FWPResult",
    "compute_fmap_mask",
    "PAPResult",
    "compute_point_mask",
    "RangeNarrowing",
    "sampled_frequency",
    "FlopsBreakdown",
    "msdeform_attn_flops",
    "DEFAAttention",
    "DEFAAttentionOutput",
    "DEFALayerStats",
    "DEFAEncoderResult",
    "DEFAEncoderRunner",
]
