"""The DEFA attention pipeline: MSDeformAttn with pruning-assisted grid sampling.

:class:`DEFAAttention` wraps a full-precision :class:`~repro.nn.msdeform_attn.
MSDeformAttn` module and executes it with the paper's rearranged dataflow
(Sec. 4.1):

1. attention probabilities are computed first and PAP derives the point mask;
2. the sampling offsets of the surviving points are generated and clamped by
   level-wise range narrowing;
3. the value projection ``V = X W^V`` is performed only for the fmap pixels
   kept by the FWP mask received from the *previous* block;
4. MSGS + aggregation run fused with the point mask applied, while the sampled
   frequency of every pixel is counted and the FWP mask for the *next* block is
   generated;
5. the output projection produces the block output.

All four linear projections are (optionally) fake-quantized to the configured
bit width.  The pipeline returns detailed statistics (kept points/pixels,
FLOP breakdown) that feed the Fig. 6 experiments and the hardware simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DEFAConfig
from repro.core.flops import FlopsBreakdown, msdeform_attn_flops
from repro.core.fwp import (
    FWPResult,
    apply_fmap_mask,
    compute_fmap_mask,
    compute_fmap_mask_batched,
)
from repro.core.pap import PAPResult, compute_point_mask
from repro.core.range_narrowing import RangeNarrowing
from repro.core.sampling_stats import sampled_frequency, sampled_frequency_batched
from repro.nn.grid_sample import (
    SamplingTrace,
    ms_deform_attn_from_trace,
    ms_deform_attn_from_trace_batched,
    multi_scale_neighbors,
    multi_scale_neighbors_batched,
)
from repro.nn.modules import Linear
from repro.nn.msdeform_attn import MSDeformAttn
from repro.nn.tensor_utils import FLOAT_DTYPE, softmax
from repro.quant.qmodules import QuantizedLinear, quantize_linear
from repro.utils.shapes import LevelShape, total_pixels


@dataclass
class DEFALayerStats:
    """Pruning statistics of one DEFA attention block."""

    num_queries: int
    num_tokens: int
    points_total: int
    points_kept: int
    pixels_total: int
    pixels_kept: int
    """Pixels kept by the FWP mask applied to *this* block (from the previous block).

    First-block convention: FWP masks always come from the *previous* block,
    so the first block of an encoder (``fmap_mask is None``) has no mask to
    apply and ``pixels_kept == pixels_total`` — even when ``enable_fwp=True``
    and the block *generates* a mask for its successor.  The generated mask is
    accounted separately in :attr:`pixels_kept_next`.  Check
    :attr:`mask_applied` to distinguish "no mask received" from "a mask that
    happened to keep everything".
    """

    pixels_kept_next: int
    """Pixels kept by the mask generated for the *next* block."""

    offset_clipping_fraction: float
    """Fraction of offset components clamped by range narrowing."""

    flops: FlopsBreakdown

    mask_applied: bool = False
    """Whether an incoming FWP mask was applied to this block.

    ``False`` for the first block of an encoder run (``fmap_mask is None``),
    in which case :attr:`pixels_kept` equals :attr:`pixels_total` by
    convention rather than by measurement.
    """

    @property
    def point_reduction(self) -> float:
        """Fraction of sampling points removed by PAP."""
        return 1.0 - self.points_kept / self.points_total if self.points_total else 0.0

    @property
    def pixel_reduction(self) -> float:
        """Fraction of fmap pixels removed by the FWP mask applied to this block."""
        return 1.0 - self.pixels_kept / self.pixels_total if self.pixels_total else 0.0

    @property
    def pixel_reduction_next(self) -> float:
        """Fraction of fmap pixels the generated mask removes for the next block."""
        return 1.0 - self.pixels_kept_next / self.pixels_total if self.pixels_total else 0.0

    @property
    def flops_reduction(self) -> float:
        """Fractional FLOP reduction of the prunable operators (Fig. 6b metric)."""
        return self.flops.reduction()


@dataclass
class DEFAAttentionOutput:
    """Result of one DEFA attention block."""

    output: np.ndarray
    """Block output of shape ``(N_q, D)``."""

    stats: DEFALayerStats
    """Pruning / FLOP statistics."""

    fmap_mask_next: np.ndarray
    """FWP keep-mask generated for the next block (length ``N_in``)."""

    point_mask: np.ndarray
    """PAP keep-mask, shape ``(N_q, N_h, N_l, N_p)``."""

    attention_weights: np.ndarray
    """Attention probabilities after PAP (pruned entries zeroed)."""

    sampling_locations: np.ndarray
    """Normalized sampling locations after range narrowing."""

    trace: SamplingTrace
    """Integer sampling trace (consumed by the hardware simulator)."""

    fwp: FWPResult
    pap: PAPResult


@dataclass
class DEFAAttentionBatchOutput:
    """Result of one DEFA attention block executed on an image batch.

    The heavy tensor work (projections, fused MSGS + aggregation) runs once
    for the whole batch; the per-image record list carries the FWP/PAP masks,
    traces and :class:`DEFALayerStats` of every image, exactly as if the
    images had been processed one by one.
    """

    output: np.ndarray
    """Batched block output of shape ``(B, N_q, D)``."""

    images: list[DEFAAttentionOutput]
    """Per-image detailed outputs (views into the batched tensors)."""

    @property
    def batch_size(self) -> int:
        return len(self.images)

    @property
    def stats(self) -> list[DEFALayerStats]:
        """Per-image pruning statistics."""
        return [image.stats for image in self.images]

    @property
    def fmap_mask_next(self) -> np.ndarray:
        """Stacked per-image FWP keep-masks for the next block, ``(B, N_in)``."""
        return np.stack([image.fmap_mask_next for image in self.images], axis=0)

    @property
    def point_mask(self) -> np.ndarray:
        """Stacked per-image PAP keep-masks, ``(B, N_q, N_h, N_l, N_p)``."""
        return np.stack([image.point_mask for image in self.images], axis=0)


class DEFAAttention:
    """MSDeformAttn executed with the DEFA algorithm-level optimizations.

    Parameters
    ----------
    attn:
        The wrapped full-precision attention module (its weights are reused).
    config:
        The :class:`DEFAConfig` describing which techniques are enabled.
    """

    def __init__(self, attn: MSDeformAttn, config: DEFAConfig) -> None:
        self.attn = attn
        self.config = config
        self.range_narrowing: RangeNarrowing | None = None
        if config.enable_range_narrowing:
            self.range_narrowing = RangeNarrowing(config.effective_ranges(attn.num_levels))
        self._value_proj = self._maybe_quantize(attn.value_proj)
        self._output_proj = self._maybe_quantize(attn.output_proj)
        self._sampling_offsets = self._maybe_quantize(attn.sampling_offsets)
        self._attention_weights = self._maybe_quantize(attn.attention_weights)

    def _maybe_quantize(self, linear: Linear) -> Linear | QuantizedLinear:
        if self.config.quant_bits is None:
            return linear
        return quantize_linear(linear, self.config.quant_bits)

    @staticmethod
    def _project_batched(proj: Linear | QuantizedLinear, x: np.ndarray) -> np.ndarray:
        """Apply a projection to a batch, keeping quantization per-image.

        Dynamic activation quantization derives its scale from the array being
        quantized, so a quantized projection must not see the whole batch as
        one array — that would couple the images through a shared scale.
        """
        if isinstance(proj, QuantizedLinear):
            return proj.forward_batched(x)
        return proj(x)

    # ---------------------------------------------------------------- forward

    def forward_detailed(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
        fmap_mask: np.ndarray | None = None,
    ) -> DEFAAttentionOutput | DEFAAttentionBatchOutput:
        """Run one DEFA attention block.

        Parameters
        ----------
        query:
            ``(N_q, D)`` query features (content + positional embedding), or
            a same-shape batch ``(B, N_q, D)``.
        reference_points:
            ``(N_q, N_l, 2)`` normalized reference points (shared across a
            batch; ``(B, N_q, N_l, 2)`` per-image points also accepted).
        value_input:
            ``(N_in, D)`` flattened multi-scale feature maps, or ``(B, N_in,
            D)`` for a batch.
        spatial_shapes:
            Pyramid level shapes.
        fmap_mask:
            FWP keep-mask produced by the *previous* block (``None`` for the
            first block — all pixels are kept by convention and the returned
            stats report ``pixels_kept == pixels_total`` with
            ``mask_applied=False``, even when ``enable_fwp=True``).  For a
            batch, a ``(B, N_in)`` array of per-image masks.

        Batched inputs return a :class:`DEFAAttentionBatchOutput` whose
        per-image records match single-image execution.
        """
        query = np.asarray(query, dtype=FLOAT_DTYPE)
        value_input = np.asarray(value_input, dtype=FLOAT_DTYPE)
        if query.ndim == 3:
            return self._forward_detailed_batched(
                query, reference_points, value_input, spatial_shapes, fmap_mask
            )
        attn = self.attn
        n_q = query.shape[0]
        n_in = value_input.shape[0]
        if n_in != total_pixels(spatial_shapes):
            raise ValueError("value_input length does not match spatial_shapes")
        if fmap_mask is not None and fmap_mask.shape[0] != n_in:
            raise ValueError("fmap_mask length must equal the number of tokens")

        # Step 1: attention probabilities + PAP point mask.
        logits = self._attention_weights(query).reshape(
            n_q, attn.num_heads, attn.num_levels * attn.num_points
        )
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = (exp / exp.sum(axis=-1, keepdims=True)).reshape(
            n_q, attn.num_heads, attn.num_levels, attn.num_points
        )
        if self.config.enable_pap:
            pap = compute_point_mask(
                probs,
                threshold=self.config.pap_threshold,
                keep_top1=self.config.pap_keep_top1,
                renormalize=self.config.renormalize_after_pap,
            )
        else:
            pap = PAPResult(
                point_mask=np.ones_like(probs, dtype=bool),
                attention_weights=probs,
                threshold=0.0,
            )

        # Step 2: sampling offsets of the surviving points + range narrowing.
        offsets = self._sampling_offsets(query).reshape(
            n_q, attn.num_heads, attn.num_levels, attn.num_points, 2
        )
        clipping_fraction = 0.0
        if self.range_narrowing is not None:
            clipping_fraction = self.range_narrowing.clipping_fraction(offsets)
            offsets = self.range_narrowing.clamp_offsets(offsets)
        locations = attn.compute_sampling_locations(reference_points, offsets, spatial_shapes)

        # Step 3: value projection with the FWP mask from the previous block.
        value = self._value_proj(value_input).reshape(n_in, attn.num_heads, attn.d_head)
        value = apply_fmap_mask(value, fmap_mask)

        # Step 4: fused MSGS + aggregation, with frequency counting for FWP.
        trace = multi_scale_neighbors(spatial_shapes, locations)
        head_outputs = ms_deform_attn_from_trace(
            value, trace, pap.attention_weights, point_mask=pap.point_mask
        )
        if self.config.enable_fwp:
            frequency = sampled_frequency(trace, point_mask=pap.point_mask)
            fwp = compute_fmap_mask(frequency, spatial_shapes, self.config.fwp_k)
        else:
            fwp = FWPResult(
                fmap_mask=np.ones(n_in, dtype=bool),
                thresholds=np.zeros(len(spatial_shapes)),
                level_keep_fractions=np.ones(len(spatial_shapes)),
            )

        # Step 5: output projection.
        output = self._output_proj(head_outputs).astype(FLOAT_DTYPE)

        # First-block convention: with no incoming mask every pixel is kept,
        # so pixels_kept == n_in even when enable_fwp=True (the mask this
        # block *generates* is reported in pixels_kept_next).
        pixels_kept = int(np.count_nonzero(fmap_mask)) if fmap_mask is not None else n_in
        stats = DEFALayerStats(
            num_queries=n_q,
            num_tokens=n_in,
            points_total=pap.num_points,
            points_kept=pap.num_kept,
            pixels_total=n_in,
            pixels_kept=pixels_kept,
            pixels_kept_next=fwp.num_kept,
            offset_clipping_fraction=clipping_fraction,
            flops=msdeform_attn_flops(
                d_model=attn.d_model,
                num_heads=attn.num_heads,
                num_levels=attn.num_levels,
                num_points=attn.num_points,
                num_queries=n_q,
                num_tokens=n_in,
                points_kept=pap.num_kept,
                pixels_kept=pixels_kept,
            ),
            mask_applied=fmap_mask is not None,
        )
        return DEFAAttentionOutput(
            output=output,
            stats=stats,
            fmap_mask_next=fwp.fmap_mask,
            point_mask=pap.point_mask,
            attention_weights=pap.attention_weights,
            sampling_locations=locations,
            trace=trace,
            fwp=fwp,
            pap=pap,
        )

    def _forward_detailed_batched(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
        fmap_mask: np.ndarray | None,
    ) -> DEFAAttentionBatchOutput:
        """Batched DEFA block: vectorized tensors, per-image masks and stats."""
        attn = self.attn
        if value_input.ndim != 3 or value_input.shape[0] != query.shape[0]:
            raise ValueError("value_input must be (B, N_in, D) with the query's batch size")
        batch, n_q = query.shape[0], query.shape[1]
        n_in = value_input.shape[1]
        if n_in != total_pixels(spatial_shapes):
            raise ValueError("value_input length does not match spatial_shapes")
        if fmap_mask is not None:
            fmap_mask = np.asarray(fmap_mask, dtype=bool)
            if fmap_mask.shape != (batch, n_in):
                raise ValueError("batched fmap_mask must have shape (B, N_in)")

        # Step 1: attention probabilities (batched) + PAP masks.  PAP is a
        # per-(query, head) operation, so folding the batch axis into the
        # query axis gives per-image-identical masks from one vectorized call.
        logits = self._project_batched(self._attention_weights, query).reshape(
            batch, n_q, attn.num_heads, attn.num_levels * attn.num_points
        )
        probs = softmax(logits, axis=-1).reshape(
            batch, n_q, attn.num_heads, attn.num_levels, attn.num_points
        )
        if self.config.enable_pap:
            pap_all = compute_point_mask(
                probs.reshape(batch * n_q, attn.num_heads, attn.num_levels, attn.num_points),
                threshold=self.config.pap_threshold,
                keep_top1=self.config.pap_keep_top1,
                renormalize=self.config.renormalize_after_pap,
            )
            point_masks = pap_all.point_mask.reshape(probs.shape)
            attn_weights = pap_all.attention_weights.reshape(probs.shape)
            pap_threshold = pap_all.threshold
        else:
            point_masks = np.ones_like(probs, dtype=bool)
            attn_weights = probs
            pap_threshold = 0.0
        paps = [
            PAPResult(
                point_mask=point_masks[b],
                attention_weights=attn_weights[b],
                threshold=pap_threshold,
            )
            for b in range(batch)
        ]

        # Step 2: sampling offsets + range narrowing (batched clamp,
        # per-image clipping fractions).
        offsets = self._project_batched(self._sampling_offsets, query).reshape(
            batch, n_q, attn.num_heads, attn.num_levels, attn.num_points, 2
        )
        clipping_fractions = [0.0] * batch
        if self.range_narrowing is not None:
            clipping_fractions = [
                self.range_narrowing.clipping_fraction(offsets[b]) for b in range(batch)
            ]
            offsets = self.range_narrowing.clamp_offsets(offsets)
        locations = attn.compute_sampling_locations(reference_points, offsets, spatial_shapes)

        # Step 3: value projection with the per-image FWP masks.
        value = self._project_batched(self._value_proj, value_input).reshape(
            batch, n_in, attn.num_heads, attn.d_head
        )
        if fmap_mask is not None:
            value = value.copy()
            value[~fmap_mask] = 0

        # Step 4: fused MSGS + aggregation over the whole batch, then
        # vectorized frequency counting and per-image FWP mask generation.
        trace = multi_scale_neighbors_batched(spatial_shapes, locations)
        head_outputs = ms_deform_attn_from_trace_batched(
            value, trace, attn_weights, point_mask=point_masks
        )
        image_traces = trace.images()
        if self.config.enable_fwp:
            frequency = sampled_frequency_batched(trace, point_mask=point_masks)
            fwps = compute_fmap_mask_batched(frequency, spatial_shapes, self.config.fwp_k)
        else:
            fwps = [
                FWPResult(
                    fmap_mask=np.ones(n_in, dtype=bool),
                    thresholds=np.zeros(len(spatial_shapes)),
                    level_keep_fractions=np.ones(len(spatial_shapes)),
                )
                for _ in range(batch)
            ]

        # Step 5: output projection (batched).
        output = self._project_batched(self._output_proj, head_outputs).astype(FLOAT_DTYPE)

        images: list[DEFAAttentionOutput] = []
        for b in range(batch):
            mask_b = fmap_mask[b] if fmap_mask is not None else None
            pixels_kept = int(np.count_nonzero(mask_b)) if mask_b is not None else n_in
            stats = DEFALayerStats(
                num_queries=n_q,
                num_tokens=n_in,
                points_total=paps[b].num_points,
                points_kept=paps[b].num_kept,
                pixels_total=n_in,
                pixels_kept=pixels_kept,
                pixels_kept_next=fwps[b].num_kept,
                offset_clipping_fraction=clipping_fractions[b],
                flops=msdeform_attn_flops(
                    d_model=attn.d_model,
                    num_heads=attn.num_heads,
                    num_levels=attn.num_levels,
                    num_points=attn.num_points,
                    num_queries=n_q,
                    num_tokens=n_in,
                    points_kept=paps[b].num_kept,
                    pixels_kept=pixels_kept,
                ),
                mask_applied=mask_b is not None,
            )
            images.append(
                DEFAAttentionOutput(
                    output=output[b],
                    stats=stats,
                    fmap_mask_next=fwps[b].fmap_mask,
                    point_mask=paps[b].point_mask,
                    attention_weights=paps[b].attention_weights,
                    sampling_locations=locations[b],
                    trace=image_traces[b],
                    fwp=fwps[b],
                    pap=paps[b],
                )
            )
        return DEFAAttentionBatchOutput(output=output, images=images)

    def forward(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
        fmap_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Output-only wrapper: ``(N_q, D)``, or ``(B, N_q, D)`` for a batch."""
        return self.forward_detailed(
            query, reference_points, value_input, spatial_shapes, fmap_mask=fmap_mask
        ).output
