"""The DEFA attention pipeline: MSDeformAttn with pruning-assisted grid sampling.

:class:`DEFAAttention` wraps a full-precision :class:`~repro.nn.msdeform_attn.
MSDeformAttn` module and executes it with the paper's rearranged dataflow
(Sec. 4.1):

1. attention probabilities are computed first and PAP derives the point mask;
2. the sampling offsets of the surviving points are generated and clamped by
   level-wise range narrowing;
3. the value projection ``V = X W^V`` is performed only for the fmap pixels
   kept by the FWP mask received from the *previous* block;
4. MSGS + aggregation run fused with the point mask applied, while the sampled
   frequency of every pixel is counted and the FWP mask for the *next* block is
   generated;
5. the output projection produces the block output.

All four linear projections are (optionally) fake-quantized to the configured
bit width.  The pipeline returns detailed statistics (kept points/pixels,
FLOP breakdown) that feed the Fig. 6 experiments and the hardware simulator.

Pruning executes through one of two equivalence-tested paths, selected by the
``sparse_mode`` switch (see :data:`SPARSE_MODES`): the masked-dense kernels
(pruned work simulated by zeroing — the hardware-faithful *numerics* with
dense software cost) or the compacted gather/scatter kernels (pruned pixels
and points skipped before any memory traffic — the paper's compute savings
realised as wall-clock speedup; see ``benchmarks/bench_sparse_speedup.py``).

Sparse execution v2 extends the compaction to the remaining dense stages: the
sparse path builds a *compacted sampling trace* (bilinear neighbour math for
kept points only, so the ``neighbors`` cost scales with the keep ratio) and,
under :attr:`DEFAConfig.enable_query_pruning`, FWP-pruned pixels stop acting
as queries — their offset/attention-head and output projections are skipped
via row-compacted projections while the dense path zeroes the same rows, so
the two paths remain equivalent to 1e-5 in fp32.

The block-sparse encoder (PR 4) carries the same mask through the
*inter-block* stages: under query pruning the residual adds, ``norm1``, FFN
and ``norm2`` of a pruned pixel are skipped as well — its row is frozen at
the block input — with the row-compacted execution living in
:meth:`repro.nn.encoder.DeformableEncoderLayer.forward_ffn_stage` and the
dispatch thresholds (:data:`SPARSE_AUTO_FFN_KEEP_MAX` /
:data:`SPARSE_AUTO_FFN_MIN_TOKENS`) defined here next to the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DEFAConfig
from repro.core.flops import FlopsBreakdown, msdeform_attn_flops
from repro.core.fwp import (
    FWPResult,
    apply_fmap_mask,
    compute_fmap_mask,
    compute_fmap_mask_batched,
    normalize_mask,
)
from repro.kernels import (
    DispatchThresholds,
    ExecutionOptions,
    ExecutionPlan,
    normalize_execution_options,
    resolve_backend,
    resolve_profile,
)
from repro.kernels.options import _UNSET
from repro.kernels.fused_ops import (
    project_batched_into,
    project_into,
    project_rows_batched_into,
    project_rows_into,
)
from repro.core.pap import PAPResult, compute_point_mask
from repro.core.range_narrowing import RangeNarrowing
from repro.core.sampling_stats import (
    sampled_frequency,
    sampled_frequency_batched,
    sampled_frequency_compact,
    sampled_frequency_compact_batched,
)
from repro.nn.grid_sample import (
    SPARSE_MODES,
    CompactSamplingTrace,
    SamplingTrace,
    ms_deform_attn_from_compact_trace,
    ms_deform_attn_from_trace,
    ms_deform_attn_from_trace_batched,
    multi_scale_neighbors,
    multi_scale_neighbors_batched,
    multi_scale_neighbors_sparse,
    multi_scale_neighbors_sparse_batched,
    use_sparse_gather,
)
from repro.nn.modules import Linear
from repro.nn.msdeform_attn import MSDeformAttn
from repro.nn.tensor_utils import FLOAT_DTYPE, softmax
from repro.quant.qmodules import QuantizedLinear, quantize_linear
from repro.utils.shapes import LevelShape, total_pixels
from repro.utils.timing import kernel_section

# The hand-tuned reference-machine crossovers live as the field defaults of
# repro.kernels.calibration.DispatchThresholds (single source of truth since
# PR 9); these module constants are derived aliases kept for external callers
# and for the reference-profile parity gate.  Construction-time profiles
# (ExecutionOptions.machine_profile / REPRO_MACHINE_PROFILE) override them
# per host and per backend without touching this module.
_REFERENCE_THRESHOLDS = DispatchThresholds()

SPARSE_AUTO_PIXEL_KEEP_MAX = _REFERENCE_THRESHOLDS.pixel_keep_max
"""``auto``: use the compacted value projection when at most this fraction of
fmap pixels survives the incoming FWP mask."""

SPARSE_AUTO_MIN_TOKENS = _REFERENCE_THRESHOLDS.min_tokens
"""``auto``: minimum ``N_in`` (per image) before the compacted value
projection can pay for its gather/scatter overhead."""

SPARSE_AUTO_QUERY_KEEP_MAX = _REFERENCE_THRESHOLDS.query_keep_max
"""``auto``: use the row-compacted query-side projections (attention /
offset / output heads) when at most this fraction of queries survives the
incoming FWP mask under query pruning."""

SPARSE_AUTO_MIN_QUERIES = _REFERENCE_THRESHOLDS.min_queries
"""``auto``: minimum ``N_q`` (per image) before the row-compacted query-side
projections can pay for their gather/scatter overhead."""

SPARSE_AUTO_FFN_KEEP_MAX = _REFERENCE_THRESHOLDS.ffn_keep_max
"""``auto``: run the inter-block FFN/LayerNorm stage row-compacted when at
most this fraction of pixels survives the incoming FWP mask under query
pruning (see :meth:`repro.nn.encoder.DeformableEncoderLayer.
forward_ffn_stage`)."""

SPARSE_AUTO_FFN_MIN_TOKENS = _REFERENCE_THRESHOLDS.ffn_min_tokens
"""``auto``: minimum ``N_in`` (per image) before the row-compacted FFN stage
can pay for its gather/scatter overhead."""


def use_sparse_rows(
    mask: np.ndarray | None,
    rows_per_image: int,
    keep_max: float,
    min_rows: int,
    sparse_mode: str,
    batched: bool = False,
) -> bool:
    """Shared dispatch rule of every row-compacted stage.

    No mask ⇒ dense by convention (the first block of an encoder never
    receives one).  ``"dense"``/``"sparse"`` force one path; ``"auto"``
    additionally requires the image to be large enough and the mask to
    actually prune.  A batch uses the *maximum* per-image keep fraction
    (compact only when every image alone would go compact) so batched and
    single-image runs make the same decision wherever possible.

    Boundary semantics (pinned by boundary-value tests; must match
    :func:`~repro.nn.grid_sample.use_sparse_gather` so a calibrated profile
    with equal crossover values cannot flip the batched-vs-single path
    choice): the minimum size compares with ``<`` — ``rows_per_image ==
    min_rows`` is sparse-eligible — and the keep ratio with ``<=`` —
    ``keep_fraction == keep_max`` goes sparse.  The batched keep fraction of
    a size-one batch equals the single-image fraction exactly (same
    ``count / rows`` division), so equality at the threshold dispatches
    identically on both paths.
    """
    if mask is None or sparse_mode == "dense":
        return False
    if sparse_mode == "sparse":
        return True
    if rows_per_image < min_rows:
        return False
    if batched:
        per_image = np.count_nonzero(mask, axis=1)
        keep_fraction = float(per_image.max()) / max(rows_per_image, 1)
    else:
        keep_fraction = np.count_nonzero(mask) / max(mask.size, 1)
    return keep_fraction <= keep_max


@dataclass
class DEFALayerStats:
    """Pruning statistics of one DEFA attention block."""

    num_queries: int
    num_tokens: int
    points_total: int
    points_kept: int
    pixels_total: int
    pixels_kept: int
    """Pixels kept by the FWP mask applied to *this* block (from the previous block).

    First-block convention: FWP masks always come from the *previous* block,
    so the first block of an encoder (``fmap_mask is None``) has no mask to
    apply and ``pixels_kept == pixels_total`` — even when ``enable_fwp=True``
    and the block *generates* a mask for its successor.  The generated mask is
    accounted separately in :attr:`pixels_kept_next`.  Check
    :attr:`mask_applied` to distinguish "no mask received" from "a mask that
    happened to keep everything".
    """

    pixels_kept_next: int
    """Pixels kept by the mask generated for the *next* block."""

    offset_clipping_fraction: float
    """Fraction of offset components clamped by range narrowing."""

    flops: FlopsBreakdown

    mask_applied: bool = False
    """Whether an incoming FWP mask was applied to this block.

    ``False`` for the first block of an encoder run (``fmap_mask is None``),
    in which case :attr:`pixels_kept` equals :attr:`pixels_total` by
    convention rather than by measurement.
    """

    sparse_projection: bool = False
    """Whether the value projection ran on the compacted (kept-pixel) rows."""

    sparse_gather: bool = False
    """Whether MSGS + aggregation ran the compacted (kept-point) kernel."""

    sparse_neighbors: bool = False
    """Whether trace construction ran compacted (neighbour indices/weights
    computed for kept points only, :func:`~repro.nn.grid_sample.
    multi_scale_neighbors_sparse`); cost scales with the point keep ratio.
    The pipeline dispatches trace compaction and the compacted gather with
    one decision, so today this always equals :attr:`sparse_gather`; it is
    reported separately because consumers care about the *neighbors* stage
    (the PR 2 sparse path gathered sparsely from a dense trace)."""

    sparse_query: bool = False
    """Whether the query-side projections (attention / offset / output heads)
    ran row-compacted over the queries kept by query pruning."""

    sparse_ffn: bool = False
    """Whether the *inter-block* FFN/LayerNorm stage that consumed this
    block's output ran row-compacted over the FWP-kept pixels (block-sparse
    encoder, PR 4).  The attention block itself does not run that stage, so
    this flag is recorded by :class:`~repro.core.encoder_runner.
    DEFAEncoderRunner` after it executes the stage; it stays ``False`` for
    operator-level :class:`DEFAAttention` calls, for the first encoder block
    (no incoming mask), and whenever query pruning is off or the stage ran
    masked-dense."""

    @property
    def point_reduction(self) -> float:
        """Fraction of sampling points removed by PAP."""
        return 1.0 - self.points_kept / self.points_total if self.points_total else 0.0

    @property
    def pixel_reduction(self) -> float:
        """Fraction of fmap pixels removed by the FWP mask applied to this block."""
        return 1.0 - self.pixels_kept / self.pixels_total if self.pixels_total else 0.0

    @property
    def pixel_reduction_next(self) -> float:
        """Fraction of fmap pixels the generated mask removes for the next block."""
        return 1.0 - self.pixels_kept_next / self.pixels_total if self.pixels_total else 0.0

    @property
    def flops_reduction(self) -> float:
        """Fractional FLOP reduction of the prunable operators (Fig. 6b metric)."""
        return self.flops.reduction()


@dataclass
class DEFAAttentionOutput:
    """Result of one DEFA attention block."""

    output: np.ndarray
    """Block output of shape ``(N_q, D)``."""

    stats: DEFALayerStats
    """Pruning / FLOP statistics."""

    fmap_mask_next: np.ndarray
    """FWP keep-mask generated for the next block (length ``N_in``)."""

    point_mask: np.ndarray
    """PAP keep-mask, shape ``(N_q, N_h, N_l, N_p)``."""

    attention_weights: np.ndarray
    """Attention probabilities after PAP (pruned entries zeroed)."""

    sampling_locations: np.ndarray
    """Normalized sampling locations after range narrowing."""

    trace_executed: SamplingTrace | CompactSamplingTrace
    """The trace the kernels actually consumed: a full :class:`SamplingTrace`
    on the dense path, a :class:`CompactSamplingTrace` (kept points only) on
    the sparse path."""

    fwp: FWPResult
    pap: PAPResult

    _materialized_trace: SamplingTrace | None = field(default=None, repr=False)
    """Cache of the on-demand full trace (sparse-path outputs only)."""

    @property
    def trace(self) -> SamplingTrace:
        """Full integer sampling trace (consumed by the hardware simulator).

        Dense-path outputs return the executed trace directly.  Sparse-path
        outputs executed on a compacted trace, so the full trace is
        materialized from the recorded sampling locations on first access
        (and cached).  Either way the rows of pruned points are valid
        neighbour data for their (possibly zero-offset) locations; consumers
        must pair them with :attr:`point_mask`, exactly as before.
        """
        if isinstance(self.trace_executed, SamplingTrace):
            return self.trace_executed
        if self._materialized_trace is None:
            self._materialized_trace = multi_scale_neighbors(
                self.trace_executed.spatial_shapes, self.sampling_locations
            )
        return self._materialized_trace

    def dense_trace(self) -> SamplingTrace:
        """Explicit alias of :attr:`trace` for call sites that must stress
        they replay the *full* point stream (bank-conflict simulation)."""
        return self.trace


@dataclass
class DEFAAttentionBatchOutput:
    """Result of one DEFA attention block executed on an image batch.

    The heavy tensor work (projections, fused MSGS + aggregation) runs once
    for the whole batch; the per-image record list carries the FWP/PAP masks,
    traces and :class:`DEFALayerStats` of every image, exactly as if the
    images had been processed one by one.
    """

    output: np.ndarray
    """Batched block output of shape ``(B, N_q, D)``."""

    images: list[DEFAAttentionOutput]
    """Per-image detailed outputs (views into the batched tensors)."""

    @property
    def batch_size(self) -> int:
        return len(self.images)

    @property
    def stats(self) -> list[DEFALayerStats]:
        """Per-image pruning statistics."""
        return [image.stats for image in self.images]

    @property
    def fmap_mask_next(self) -> np.ndarray:
        """Stacked per-image FWP keep-masks for the next block, ``(B, N_in)``."""
        return np.stack([image.fmap_mask_next for image in self.images], axis=0)

    @property
    def point_mask(self) -> np.ndarray:
        """Stacked per-image PAP keep-masks, ``(B, N_q, N_h, N_l, N_p)``."""
        return np.stack([image.point_mask for image in self.images], axis=0)


class DEFAAttention:
    """MSDeformAttn executed with the DEFA algorithm-level optimizations.

    Parameters
    ----------
    attn:
        The wrapped full-precision attention module (its weights are reused).
    config:
        The :class:`DEFAConfig` describing which techniques are enabled.
    options:
        :class:`~repro.kernels.ExecutionOptions` bundling the execution
        knobs: ``sparse_mode`` (one of :data:`SPARSE_MODES`; ``None`` means
        ``"auto"``) controls whether FWP/PAP masks are executed with the
        compacted gather/scatter kernels (actual wall-clock savings) or the
        masked-dense kernels (pruning simulated by zeroing) — both paths are
        equivalence-tested to 1e-5; ``kernel_backend`` names the kernel
        backend for the compact-trace kernels (``None`` follows
        ``config.kernel_backend`` and then the process default — resolved
        per call, so :func:`repro.kernels.set_backend` takes effect
        immediately; the backends are bit-identical, ``"fused"``
        additionally consumes the ``plan`` buffer arena passed into
        :meth:`forward_detailed`); ``enable_query_pruning`` overrides the
        config's flag at construction.  The legacy ``sparse_mode=`` /
        ``backend=`` keywords still work via
        :func:`~repro.kernels.normalize_execution_options` but are
        deprecated.
    """

    def __init__(
        self,
        attn: MSDeformAttn,
        config: DEFAConfig,
        options: ExecutionOptions | None = None,
        *,
        sparse_mode=_UNSET,
        backend=_UNSET,
    ) -> None:
        options = normalize_execution_options(
            options, owner="DEFAAttention", sparse_mode=sparse_mode, backend=backend
        )
        mode = options.sparse_mode or "auto"
        if mode not in SPARSE_MODES:
            raise ValueError(f"sparse_mode must be one of {SPARSE_MODES}, got {mode!r}")
        if options.enable_query_pruning is not None:
            config = config.with_overrides(
                enable_query_pruning=options.enable_query_pruning
            )
        self.attn = attn
        self.config = config
        self.sparse_mode = mode
        self.kernel_backend = options.kernel_backend
        self.machine_profile = resolve_profile(options.machine_profile)
        """The host dispatch profile governing this block's ``auto``
        thresholds, resolved once at construction (``None`` followed the
        process-default active profile).  Per-backend overrides are looked
        up per forward, after backend resolution."""

        self.range_narrowing: RangeNarrowing | None = None
        if config.enable_range_narrowing:
            self.range_narrowing = RangeNarrowing(config.effective_ranges(attn.num_levels))
        self._value_proj = self._maybe_quantize(attn.value_proj)
        self._output_proj = self._maybe_quantize(attn.output_proj)
        self._sampling_offsets = self._maybe_quantize(attn.sampling_offsets)
        self._attention_weights = self._maybe_quantize(attn.attention_weights)

    def _maybe_quantize(self, linear: Linear) -> Linear | QuantizedLinear:
        if self.config.quant_bits is None:
            return linear
        return quantize_linear(linear, self.config.quant_bits)

    def _resolve_backend(self, backend=None):
        """Per-call > per-block > per-config > process-default resolution."""
        if backend is None:
            backend = self.kernel_backend
        if backend is None:
            backend = self.config.kernel_backend
        return resolve_backend(backend)

    @staticmethod
    def _project_batched(proj: Linear | QuantizedLinear, x: np.ndarray) -> np.ndarray:
        """Apply a projection to a batch, keeping quantization per-image.

        Dynamic activation quantization derives its scale from the array being
        quantized, so a quantized projection must not see the whole batch as
        one array — that would couple the images through a shared scale.
        """
        if isinstance(proj, QuantizedLinear):
            return proj.forward_batched(x)
        return proj(x)

    # ------------------------------------------------------------ sparse path

    def _thresholds(self, backend=None) -> DispatchThresholds:
        """This block's dispatch thresholds under the given (resolved)
        backend — the profile's per-backend override when one exists, the
        machine-wide default otherwise (also when no backend context is
        available)."""
        name = backend.name if backend is not None else None
        return self.machine_profile.thresholds_for(name)

    def _use_sparse_rows(
        self,
        mask: np.ndarray | None,
        rows_per_image: int,
        keep_max: float,
        min_rows: int,
        batched: bool = False,
    ) -> bool:
        """The shared :func:`use_sparse_rows` rule under this block's mode."""
        return use_sparse_rows(
            mask, rows_per_image, keep_max, min_rows, self.sparse_mode, batched=batched
        )

    def _use_sparse_projection(
        self,
        fmap_mask: np.ndarray | None,
        tokens_per_image: int,
        batched: bool = False,
        backend=None,
    ) -> bool:
        """Whether the value projection runs on compacted (kept-pixel) rows."""
        thresholds = self._thresholds(backend)
        return self._use_sparse_rows(
            fmap_mask,
            tokens_per_image,
            thresholds.pixel_keep_max,
            thresholds.min_tokens,
            batched=batched,
        )

    def _use_sparse_query(
        self,
        query_keep: np.ndarray | None,
        queries_per_image: int,
        batched: bool = False,
        backend=None,
    ) -> bool:
        """Whether the query-side projections run on compacted (kept-query) rows."""
        thresholds = self._thresholds(backend)
        return self._use_sparse_rows(
            query_keep,
            queries_per_image,
            thresholds.query_keep_max,
            thresholds.min_queries,
            batched=batched,
        )

    @staticmethod
    def _project_rows(
        proj: Linear | QuantizedLinear, x: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Project only ``x[rows]``; quantized projections keep the full-array
        dynamic activation scale so the result matches the dense rows exactly."""
        if isinstance(proj, QuantizedLinear):
            return proj.forward_rows(x, rows)
        return proj(x[rows])

    @staticmethod
    def _project_rows_batched(
        proj: Linear | QuantizedLinear, x: np.ndarray, flat_rows: np.ndarray
    ) -> np.ndarray:
        """Project selected rows of a ``(B, N, D)`` batch; quantized
        projections keep the per-image dynamic scales of the full batch."""
        if isinstance(proj, QuantizedLinear):
            return proj.forward_rows_batched(x, flat_rows)
        return proj(x.reshape(-1, x.shape[-1])[flat_rows])

    @staticmethod
    def _projection_bias(proj: Linear | QuantizedLinear) -> np.ndarray | None:
        """The additive bias of a (possibly quantized) projection.

        Skipped rows of a row-compacted projection receive exactly this value:
        a zero input row projects to the bias on both paths (zero quantizes to
        zero under symmetric fake quantization).
        """
        return proj.inner.bias if isinstance(proj, QuantizedLinear) else proj.bias

    @staticmethod
    def _fold_query_mask(
        row_pap: PAPResult,
        points_shape: tuple[int, ...],
        query_keep: np.ndarray | None,
        kept_q: np.ndarray | None,
        plan: ExecutionPlan | None = None,
    ) -> PAPResult:
        """Combine a PAP result with the query keep-mask of query pruning.

        Returns a :class:`PAPResult` over the full ``points_shape`` grid with
        pruned queries' points masked out and their attention weights zeroed.
        ``kept_q`` non-``None`` means *row_pap* was computed on the compacted
        kept rows (sparse query path) and is scattered back; otherwise it
        covers the full grid (dense path) and the pruned rows are zeroed.
        Either way the resulting masks, weights and counts are identical, so
        the two paths stay equivalent.  With a ``plan`` the folded mask and
        weights live in arena buffers (``fold.mask`` / ``fold.weights``) —
        note ``row_pap`` may itself alias the ``pap.*`` buffers, so the fold
        uses distinct names and only reads from the input.
        """
        if query_keep is None:
            return row_pap
        if kept_q is not None:
            if plan is not None:
                point_mask = plan.zeros("fold.mask", points_shape, bool)
                weights = plan.zeros("fold.weights", points_shape, FLOAT_DTYPE)
            else:
                point_mask = np.zeros(points_shape, dtype=bool)
                weights = np.zeros(points_shape, dtype=FLOAT_DTYPE)
            point_mask[kept_q] = row_pap.point_mask
            weights[kept_q] = row_pap.attention_weights
        elif plan is not None:
            keep_rows = query_keep.reshape(query_keep.size, 1, 1, 1)
            point_mask = np.logical_and(
                row_pap.point_mask,
                keep_rows,
                out=plan.buffer("fold.mask", points_shape, bool),
            )
            weights = np.multiply(
                row_pap.attention_weights,
                keep_rows,
                out=plan.buffer("fold.weights", points_shape, FLOAT_DTYPE),
            )
        else:
            keep_rows = query_keep.reshape(query_keep.size, 1, 1, 1)
            point_mask = row_pap.point_mask & keep_rows
            weights = (row_pap.attention_weights * keep_rows).astype(FLOAT_DTYPE)
        return PAPResult(
            point_mask=point_mask,
            attention_weights=weights,
            threshold=row_pap.threshold,
        )

    def _project_values(
        self,
        value_input: np.ndarray,
        fmap_mask: np.ndarray | None,
        plan: ExecutionPlan | None = None,
        backend=None,
    ) -> tuple[np.ndarray, bool]:
        """Single-image value projection ``V = X W^V`` under the FWP mask.

        Returns the ``(N_in, N_h, D_h)`` value tensor (pruned rows zero) and
        whether the compacted path ran.  The compacted path gathers the kept
        rows, projects the ``(N_kept, D)`` compact array only and scatters the
        result back; quantized projections derive their dynamic activation
        scale from the *full* input so both paths quantize identically.  With
        a ``plan`` the projection and the value tensor live in reused arena
        buffers (bit-identical values).
        """
        attn = self.attn
        n_in = value_input.shape[0]
        proj = self._value_proj
        if not self._use_sparse_projection(fmap_mask, n_in, backend=backend):
            if plan is not None:
                value = project_into(
                    proj, value_input, plan, "value_proj", backend=backend
                ).reshape(n_in, attn.num_heads, attn.d_head)
                if fmap_mask is not None and not fmap_mask.all():
                    value[~fmap_mask] = 0  # plan buffer: zero in place, no copy
                return value, False
            value = proj(value_input).reshape(n_in, attn.num_heads, attn.d_head)
            return apply_fmap_mask(value, fmap_mask), False
        kept = np.flatnonzero(fmap_mask)
        if plan is not None:
            value = plan.zeros("value", (n_in, attn.d_model))
            if kept.size:
                value[kept] = project_rows_into(
                    proj, value_input, kept, plan, "value_proj", backend=backend
                )
            return value.reshape(n_in, attn.num_heads, attn.d_head), True
        value = np.zeros((n_in, attn.d_model), dtype=FLOAT_DTYPE)
        if kept.size:
            if isinstance(proj, QuantizedLinear):
                value[kept] = proj.forward_rows(value_input, kept)
            else:
                value[kept] = proj(value_input[kept])
        return value.reshape(n_in, attn.num_heads, attn.d_head), True

    def _project_values_batched(
        self,
        value_input: np.ndarray,
        fmap_mask: np.ndarray | None,
        plan: ExecutionPlan | None = None,
        backend=None,
    ) -> tuple[np.ndarray, bool]:
        """Batched value projection under per-image FWP masks.

        The compacted path concatenates the kept rows of every image into one
        ``(sum_b N_kept_b, D)`` matmul (per-image quantization scales are
        preserved by :meth:`QuantizedLinear.forward_rows_batched`) and
        scatters the outputs back into the zero-initialised batch tensor.
        ``plan`` reuses arena buffers as in :meth:`_project_values`.
        """
        attn = self.attn
        batch, n_in = value_input.shape[0], value_input.shape[1]
        proj = self._value_proj
        if not self._use_sparse_projection(
            fmap_mask, n_in, batched=True, backend=backend
        ):
            if plan is not None:
                value = project_batched_into(
                    proj, value_input, plan, "value_proj", backend=backend
                ).reshape(batch, n_in, attn.num_heads, attn.d_head)
                if fmap_mask is not None and not fmap_mask.all():
                    value[~fmap_mask] = 0  # plan buffer: zero in place, no copy
                return value, False
            value = self._project_batched(proj, value_input).reshape(
                batch, n_in, attn.num_heads, attn.d_head
            )
            if fmap_mask is not None and not fmap_mask.all():
                value = value.copy()
                value[~fmap_mask] = 0
            return value, False
        kept = np.flatnonzero(fmap_mask.reshape(-1))
        if plan is not None:
            value = plan.zeros("value", (batch * n_in, attn.d_model))
            if kept.size:
                value[kept] = project_rows_batched_into(
                    proj, value_input, kept, plan, "value_proj", backend=backend
                )
            return value.reshape(batch, n_in, attn.num_heads, attn.d_head), True
        value = np.zeros((batch * n_in, attn.d_model), dtype=FLOAT_DTYPE)
        if kept.size:
            if isinstance(proj, QuantizedLinear):
                value[kept] = proj.forward_rows_batched(value_input, kept)
            else:
                value[kept] = proj(value_input.reshape(batch * n_in, -1)[kept])
        return value.reshape(batch, n_in, attn.num_heads, attn.d_head), True

    # ---------------------------------------------------------------- forward

    def forward_detailed(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
        fmap_mask: np.ndarray | None = None,
        options: ExecutionOptions | None = None,
        plan: ExecutionPlan | None = None,
        *,
        backend=_UNSET,
    ) -> DEFAAttentionOutput | DEFAAttentionBatchOutput:
        """Run one DEFA attention block.

        Parameters
        ----------
        query:
            ``(N_q, D)`` query features (content + positional embedding), or
            a same-shape batch ``(B, N_q, D)``.
        reference_points:
            ``(N_q, N_l, 2)`` normalized reference points (shared across a
            batch; ``(B, N_q, N_l, 2)`` per-image points also accepted).
        value_input:
            ``(N_in, D)`` flattened multi-scale feature maps, or ``(B, N_in,
            D)`` for a batch.
        spatial_shapes:
            Pyramid level shapes.
        fmap_mask:
            FWP keep-mask produced by the *previous* block (``None`` for the
            first block — all pixels are kept by convention and the returned
            stats report ``pixels_kept == pixels_total`` with
            ``mask_applied=False``, even when ``enable_fwp=True``).  For a
            batch, a ``(B, N_in)`` array of per-image masks.  Integer masks
            are normalized to boolean once, here at the pipeline boundary
            (non-zero means *keep*); every downstream stage sees ``bool``.
        options:
            Per-call :class:`~repro.kernels.ExecutionOptions`.  Only
            ``kernel_backend`` is meaningful per call (``None`` follows the
            block's options and then ``config.kernel_backend`` / the
            process default; the backends are bit-identical) — the other
            knobs are per-block/per-construction properties, so a non-
            ``None`` ``sparse_mode``, ``enable_query_pruning`` or
            ``machine_profile`` here is an error.  The legacy ``backend=``
            keyword is a deprecated shim.
        plan:
            Optional :class:`~repro.kernels.ExecutionPlan` buffer arena.
            When given (the encoder runner passes one per shape signature),
            every large per-block intermediate — projections, the value
            tensor, the compact trace, the gather/aggregate scratch and the
            block output — lives in reused arena buffers, so steady-state
            forwards allocate nothing large.  The returned arrays are then
            only valid until the plan's next forward (the runner copies what
            it keeps); callers that retain outputs must pass ``plan=None``.

        Batched inputs return a :class:`DEFAAttentionBatchOutput` whose
        per-image records match single-image execution.
        """
        options = normalize_execution_options(
            options, owner="DEFAAttention.forward_detailed", backend=backend
        )
        if options.sparse_mode is not None or options.enable_query_pruning is not None:
            raise ValueError(
                "sparse_mode and enable_query_pruning are per-block properties; "
                "set them when constructing the DEFAAttention, not per call"
            )
        if options.machine_profile is not None:
            raise ValueError(
                "machine_profile is a per-block property resolved at "
                "construction; set it when constructing the DEFAAttention, "
                "not per call"
            )
        query = np.asarray(query, dtype=FLOAT_DTYPE)
        value_input = np.asarray(value_input, dtype=FLOAT_DTYPE)
        if query.ndim == 3:
            return self._forward_detailed_batched(
                query,
                reference_points,
                value_input,
                spatial_shapes,
                fmap_mask,
                backend=options.kernel_backend,
                plan=plan,
            )
        attn = self.attn
        backend = self._resolve_backend(options.kernel_backend)
        if plan is not None and not backend.fused:
            plan = None  # the reference backend runs exactly the PR 4 path
        n_q = query.shape[0]
        n_in = value_input.shape[0]
        if n_in != total_pixels(spatial_shapes):
            raise ValueError("value_input length does not match spatial_shapes")
        if fmap_mask is not None:
            fmap_mask = normalize_mask(fmap_mask)  # once, at the boundary
            if fmap_mask.shape[0] != n_in:
                raise ValueError("fmap_mask length must equal the number of tokens")

        # Query pruning (sparse execution v2): when enabled and the query set
        # is the pixel set (encoder self-attention), pixels pruned by the
        # incoming FWP mask stop acting as queries — every point of a pruned
        # query is pruned and its block output is the output-projection bias.
        # Both paths implement the same semantics: the dense path computes
        # the projections for every query and zeroes the pruned rows, the
        # sparse path skips them via row-compacted projections.
        prune_queries = (
            self.config.enable_query_pruning and fmap_mask is not None and n_q == n_in
        )
        query_keep = fmap_mask if prune_queries else None
        sparse_query = prune_queries and self._use_sparse_query(
            query_keep, n_q, backend=backend
        )
        kept_q = np.flatnonzero(query_keep) if sparse_query else None

        # Step 1: attention probabilities + PAP point mask (row-compacted to
        # the kept queries when the sparse query path is active; PAP is
        # per-(query, head) local, so compact-row PAP equals full-grid PAP
        # restricted to the kept rows).
        points_shape = (n_q, attn.num_heads, attn.num_levels, attn.num_points)
        with kernel_section("query_proj"):
            if sparse_query:
                if plan is not None:
                    logits = project_rows_into(
                        self._attention_weights,
                        query,
                        kept_q,
                        plan,
                        "attn_logits",
                        backend=backend,
                    )
                else:
                    logits = self._project_rows(self._attention_weights, query, kept_q)
            elif plan is not None:
                logits = project_into(
                    self._attention_weights, query, plan, "attn_logits", backend=backend
                )
            else:
                logits = self._attention_weights(query)
            logits = logits.reshape(-1, attn.num_heads, attn.num_levels * attn.num_points)
        if plan is not None:
            # In-place softmax on the logits buffer: the same subtract / exp /
            # divide chain as below, so the probabilities are bit-identical.
            np.subtract(logits, logits.max(axis=-1, keepdims=True), out=logits)
            np.exp(logits, out=logits)
            probs = plan.buffer("probs", logits.shape)
            np.divide(logits, logits.sum(axis=-1, keepdims=True), out=probs)
            probs = probs.reshape(
                logits.shape[0], attn.num_heads, attn.num_levels, attn.num_points
            )
        else:
            shifted = logits - logits.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            probs = (exp / exp.sum(axis=-1, keepdims=True)).reshape(
                logits.shape[0], attn.num_heads, attn.num_levels, attn.num_points
            )
        if self.config.enable_pap:
            row_pap = compute_point_mask(
                probs,
                threshold=self.config.pap_threshold,
                keep_top1=self.config.pap_keep_top1,
                renormalize=self.config.renormalize_after_pap,
                plan=plan,
            )
        else:
            if plan is not None:
                all_kept = plan.buffer("pap.mask", probs.shape, bool)
                all_kept.fill(True)
            else:
                all_kept = np.ones_like(probs, dtype=bool)
            row_pap = PAPResult(
                point_mask=all_kept,
                attention_weights=probs,
                threshold=0.0,
            )
        pap = self._fold_query_mask(row_pap, points_shape, query_keep, kept_q, plan=plan)

        # Step 2: sampling offsets of the surviving points + range narrowing.
        with kernel_section("query_proj"):
            if sparse_query:
                if plan is not None:
                    offsets = plan.zeros("offsets", points_shape + (2,))
                    if kept_q.size:
                        offsets[kept_q] = project_rows_into(
                            self._sampling_offsets,
                            query,
                            kept_q,
                            plan,
                            "offsets_rows",
                            backend=backend,
                        ).reshape((kept_q.size,) + points_shape[1:] + (2,))
                else:
                    offsets = np.zeros(points_shape + (2,), dtype=FLOAT_DTYPE)
                    offsets[kept_q] = self._project_rows(
                        self._sampling_offsets, query, kept_q
                    ).reshape((kept_q.size,) + points_shape[1:] + (2,))
            else:
                if plan is not None:
                    offsets = project_into(
                        self._sampling_offsets, query, plan, "offsets", backend=backend
                    ).reshape(points_shape + (2,))
                    if query_keep is not None:
                        # Dense path under query pruning: zero the pruned rows
                        # so both paths record identical offsets/locations
                        # (in place — the offsets live in a plan buffer).
                        offsets *= query_keep[:, None, None, None, None]
                else:
                    offsets = self._sampling_offsets(query).reshape(points_shape + (2,))
                    if query_keep is not None:
                        # Dense path under query pruning: zero the pruned rows so
                        # both paths record identical offsets and locations.
                        offsets = offsets * query_keep[:, None, None, None, None]
        clipping_fraction = 0.0
        if self.range_narrowing is not None:
            measured = offsets if query_keep is None else offsets[query_keep]
            clipping_fraction = self.range_narrowing.clipping_fraction(measured)
            if plan is not None:
                offsets = self.range_narrowing.clamp_offsets_inplace(offsets)
            else:
                offsets = self.range_narrowing.clamp_offsets(offsets)
        if plan is not None:
            locations = attn.compute_sampling_locations(
                reference_points,
                offsets,
                spatial_shapes,
                out=plan.buffer("locations", offsets.shape),
            )
        else:
            locations = attn.compute_sampling_locations(
                reference_points, offsets, spatial_shapes
            )

        # Step 3: value projection with the FWP mask from the previous block
        # (compacted to the kept rows when the sparse path is active).
        with kernel_section("value_proj"):
            value, sparse_projection = self._project_values(
                value_input, fmap_mask, plan, backend=backend
            )

        # Step 4: fused MSGS + aggregation, with frequency counting for FWP.
        # The sparse path builds the compacted trace — neighbour indices,
        # weights and level offsets for kept points only — and feeds both the
        # kernel and the frequency counter from it, so the `neighbors` cost
        # scales with the keep ratio instead of the grid size.
        effective_mask = (
            pap.point_mask if (self.config.enable_pap or prune_queries) else None
        )
        sparse_gather = use_sparse_gather(
            effective_mask,
            pap.point_mask.size * 4,
            self.sparse_mode,
            thresholds=self._thresholds(backend),
        )
        trace: SamplingTrace | CompactSamplingTrace
        if sparse_gather:
            with kernel_section("neighbors"):
                trace = multi_scale_neighbors_sparse(
                    spatial_shapes, locations, point_mask=effective_mask, plan=plan
                )
            head_outputs = ms_deform_attn_from_compact_trace(
                value, trace, pap.attention_weights, backend=backend, plan=plan
            )
        else:
            with kernel_section("neighbors"):
                trace = multi_scale_neighbors(spatial_shapes, locations)
            head_outputs = ms_deform_attn_from_trace(
                value, trace, pap.attention_weights, point_mask=pap.point_mask
            )
        with kernel_section("fwp"):
            if self.config.enable_fwp:
                if sparse_gather:
                    frequency = sampled_frequency_compact(trace)
                else:
                    frequency = sampled_frequency(trace, point_mask=pap.point_mask)
                fwp = compute_fmap_mask(frequency, spatial_shapes, self.config.fwp_k)
            else:
                fwp = FWPResult(
                    fmap_mask=np.ones(n_in, dtype=bool),
                    thresholds=np.zeros(len(spatial_shapes)),
                    level_keep_fractions=np.ones(len(spatial_shapes)),
                )

        # Step 5: output projection (row-compacted under query pruning: the
        # head outputs of pruned queries are exactly zero, so their output
        # rows equal the projection bias on both paths).
        with kernel_section("output_proj"):
            if sparse_query:
                if plan is not None:
                    output = plan.zeros("output", (n_q, attn.d_model))
                    bias = self._projection_bias(self._output_proj)
                    if bias is not None:
                        output += bias
                    if kept_q.size:
                        output[kept_q] = project_rows_into(
                            self._output_proj,
                            head_outputs,
                            kept_q,
                            plan,
                            "output_rows",
                            backend=backend,
                        )
                else:
                    output = np.zeros((n_q, attn.d_model), dtype=FLOAT_DTYPE)
                    bias = self._projection_bias(self._output_proj)
                    if bias is not None:
                        output += bias
                    if kept_q.size:
                        output[kept_q] = self._project_rows(
                            self._output_proj, head_outputs, kept_q
                        )
                    output = output.astype(FLOAT_DTYPE)
            elif plan is not None:
                output = project_into(
                    self._output_proj, head_outputs, plan, "output", backend=backend
                )
            else:
                output = self._output_proj(head_outputs).astype(FLOAT_DTYPE)

        # First-block convention: with no incoming mask every pixel is kept,
        # so pixels_kept == n_in even when enable_fwp=True (the mask this
        # block *generates* is reported in pixels_kept_next).
        pixels_kept = int(np.count_nonzero(fmap_mask)) if fmap_mask is not None else n_in
        stats = DEFALayerStats(
            num_queries=n_q,
            num_tokens=n_in,
            points_total=pap.num_points,
            points_kept=pap.num_kept,
            pixels_total=n_in,
            pixels_kept=pixels_kept,
            pixels_kept_next=fwp.num_kept,
            offset_clipping_fraction=clipping_fraction,
            flops=msdeform_attn_flops(
                d_model=attn.d_model,
                num_heads=attn.num_heads,
                num_levels=attn.num_levels,
                num_points=attn.num_points,
                num_queries=n_q,
                num_tokens=n_in,
                points_kept=pap.num_kept,
                pixels_kept=pixels_kept,
            ),
            mask_applied=fmap_mask is not None,
            sparse_projection=sparse_projection,
            sparse_gather=sparse_gather,
            sparse_neighbors=sparse_gather,
            sparse_query=sparse_query,
        )
        return DEFAAttentionOutput(
            output=output,
            stats=stats,
            fmap_mask_next=fwp.fmap_mask,
            point_mask=pap.point_mask,
            attention_weights=pap.attention_weights,
            sampling_locations=locations,
            trace_executed=trace,
            fwp=fwp,
            pap=pap,
        )

    def _forward_detailed_batched(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
        fmap_mask: np.ndarray | None,
        backend=None,
        plan: ExecutionPlan | None = None,
    ) -> DEFAAttentionBatchOutput:
        """Batched DEFA block: vectorized tensors, per-image masks and stats."""
        attn = self.attn
        backend = self._resolve_backend(backend)
        if plan is not None and not backend.fused:
            plan = None  # the reference backend runs exactly the PR 4 path
        if value_input.ndim != 3 or value_input.shape[0] != query.shape[0]:
            raise ValueError("value_input must be (B, N_in, D) with the query's batch size")
        batch, n_q = query.shape[0], query.shape[1]
        n_in = value_input.shape[1]
        if n_in != total_pixels(spatial_shapes):
            raise ValueError("value_input length does not match spatial_shapes")
        if fmap_mask is not None:
            fmap_mask = normalize_mask(fmap_mask)  # once, at the boundary
            if fmap_mask.shape != (batch, n_in):
                raise ValueError("batched fmap_mask must have shape (B, N_in)")

        # Query pruning (sparse execution v2), batched: per-image query
        # keep-masks, one row-compacted projection across the whole batch
        # (per-image dynamic quantization scales preserved by
        # QuantizedLinear.forward_rows_batched).
        prune_queries = (
            self.config.enable_query_pruning and fmap_mask is not None and n_q == n_in
        )
        query_keep = fmap_mask if prune_queries else None  # (B, N_q)
        sparse_query = prune_queries and self._use_sparse_query(
            query_keep, n_q, batched=True, backend=backend
        )
        kept_q = np.flatnonzero(query_keep.reshape(-1)) if sparse_query else None

        # Step 1: attention probabilities (batched) + PAP masks.  PAP is a
        # per-(query, head) operation, so folding the batch axis into the
        # query axis gives per-image-identical masks from one vectorized call
        # (the row-compacted path folds the kept rows of every image the
        # same way).
        grid_shape = (batch * n_q, attn.num_heads, attn.num_levels, attn.num_points)
        with kernel_section("query_proj"):
            if sparse_query:
                if plan is not None:
                    logits = project_rows_batched_into(
                        self._attention_weights,
                        query,
                        kept_q,
                        plan,
                        "attn_logits",
                        backend=backend,
                    )
                else:
                    logits = self._project_rows_batched(
                        self._attention_weights, query, kept_q
                    )
            elif plan is not None:
                logits = project_batched_into(
                    self._attention_weights, query, plan, "attn_logits", backend=backend
                )
            else:
                logits = self._project_batched(self._attention_weights, query)
            logits = logits.reshape(-1, attn.num_heads, attn.num_levels * attn.num_points)
        if plan is not None:
            # In-place softmax on the logits buffer — the same subtract / exp /
            # divide chain as repro.nn.tensor_utils.softmax, bit-identically.
            np.subtract(logits, np.max(logits, axis=-1, keepdims=True), out=logits)
            np.exp(logits, out=logits)
            probs = plan.buffer("probs", logits.shape)
            np.divide(logits, np.sum(logits, axis=-1, keepdims=True), out=probs)
            probs = probs.reshape(
                logits.shape[0], attn.num_heads, attn.num_levels, attn.num_points
            )
        else:
            probs = softmax(logits, axis=-1).reshape(
                logits.shape[0], attn.num_heads, attn.num_levels, attn.num_points
            )
        if self.config.enable_pap:
            row_pap = compute_point_mask(
                probs,
                threshold=self.config.pap_threshold,
                keep_top1=self.config.pap_keep_top1,
                renormalize=self.config.renormalize_after_pap,
                plan=plan,
            )
        else:
            if plan is not None:
                all_kept = plan.buffer("pap.mask", probs.shape, bool)
                all_kept.fill(True)
            else:
                all_kept = np.ones_like(probs, dtype=bool)
            row_pap = PAPResult(
                point_mask=all_kept,
                attention_weights=probs,
                threshold=0.0,
            )
        pap_all = self._fold_query_mask(
            row_pap,
            grid_shape,
            None if query_keep is None else query_keep.reshape(-1),
            kept_q,
            plan=plan,
        )
        point_masks = pap_all.point_mask.reshape((batch, n_q) + grid_shape[1:])
        attn_weights = pap_all.attention_weights.reshape(point_masks.shape)
        paps = [
            PAPResult(
                point_mask=point_masks[b],
                attention_weights=attn_weights[b],
                threshold=pap_all.threshold,
            )
            for b in range(batch)
        ]

        # Step 2: sampling offsets + range narrowing (batched clamp,
        # per-image clipping fractions over the kept queries).
        with kernel_section("query_proj"):
            if sparse_query:
                if plan is not None:
                    offsets_flat = plan.zeros("offsets", grid_shape + (2,))
                    if kept_q.size:
                        offsets_flat[kept_q] = project_rows_batched_into(
                            self._sampling_offsets,
                            query,
                            kept_q,
                            plan,
                            "offsets_rows",
                            backend=backend,
                        ).reshape((kept_q.size,) + grid_shape[1:] + (2,))
                else:
                    offsets_flat = np.zeros(grid_shape + (2,), dtype=FLOAT_DTYPE)
                    offsets_flat[kept_q] = self._project_rows_batched(
                        self._sampling_offsets, query, kept_q
                    ).reshape((kept_q.size,) + grid_shape[1:] + (2,))
                offsets = offsets_flat.reshape((batch, n_q) + grid_shape[1:] + (2,))
            else:
                if plan is not None:
                    offsets = project_batched_into(
                        self._sampling_offsets, query, plan, "offsets", backend=backend
                    ).reshape((batch, n_q) + grid_shape[1:] + (2,))
                    if query_keep is not None:
                        # In place — the offsets live in a plan buffer.
                        offsets *= query_keep[:, :, None, None, None, None]
                else:
                    offsets = self._project_batched(self._sampling_offsets, query).reshape(
                        (batch, n_q) + grid_shape[1:] + (2,)
                    )
                    if query_keep is not None:
                        # Dense path under query pruning: zero the pruned rows so
                        # both paths record identical offsets and locations.
                        offsets = offsets * query_keep[:, :, None, None, None, None]
        clipping_fractions = [0.0] * batch
        if self.range_narrowing is not None:
            clipping_fractions = [
                self.range_narrowing.clipping_fraction(
                    offsets[b] if query_keep is None else offsets[b][query_keep[b]]
                )
                for b in range(batch)
            ]
            if plan is not None:
                offsets = self.range_narrowing.clamp_offsets_inplace(offsets)
            else:
                offsets = self.range_narrowing.clamp_offsets(offsets)
        if plan is not None:
            locations = attn.compute_sampling_locations(
                reference_points,
                offsets,
                spatial_shapes,
                out=plan.buffer("locations", offsets.shape),
            )
        else:
            locations = attn.compute_sampling_locations(
                reference_points, offsets, spatial_shapes
            )

        # Step 3: value projection with the per-image FWP masks (compacted
        # across the batch when the sparse path is active).
        with kernel_section("value_proj"):
            value, sparse_projection = self._project_values_batched(
                value_input, fmap_mask, plan, backend=backend
            )

        # Step 4: fused MSGS + aggregation over the whole batch, then
        # vectorized frequency counting and per-image FWP mask generation.
        # The sparse path builds the compacted trace (neighbour math for the
        # kept points of all images in one pass) and feeds both the kernel
        # and the frequency counter from it.
        effective_masks = (
            point_masks if (self.config.enable_pap or prune_queries) else None
        )
        sparse_gather = use_sparse_gather(
            effective_masks,
            point_masks[0].size * 4,  # per-image slots: keep batched == single
            self.sparse_mode,
            batched=True,
            thresholds=self._thresholds(backend),
        )
        if sparse_gather:
            with kernel_section("neighbors"):
                trace = multi_scale_neighbors_sparse_batched(
                    spatial_shapes, locations, point_mask=effective_masks, plan=plan
                )
            head_outputs = ms_deform_attn_from_compact_trace(
                value, trace, attn_weights, backend=backend, plan=plan
            )
        else:
            with kernel_section("neighbors"):
                trace = multi_scale_neighbors_batched(spatial_shapes, locations)
            head_outputs = ms_deform_attn_from_trace_batched(
                value, trace, attn_weights, point_mask=point_masks
            )
        image_traces = trace.images()
        with kernel_section("fwp"):
            if self.config.enable_fwp:
                if sparse_gather:
                    frequency = sampled_frequency_compact_batched(trace)
                else:
                    frequency = sampled_frequency_batched(trace, point_mask=point_masks)
                fwps = compute_fmap_mask_batched(frequency, spatial_shapes, self.config.fwp_k)
            else:
                fwps = [
                    FWPResult(
                        fmap_mask=np.ones(n_in, dtype=bool),
                        thresholds=np.zeros(len(spatial_shapes)),
                        level_keep_fractions=np.ones(len(spatial_shapes)),
                    )
                    for _ in range(batch)
                ]

        # Step 5: output projection (batched; row-compacted under query
        # pruning — pruned queries' rows equal the projection bias).
        with kernel_section("output_proj"):
            if sparse_query:
                if plan is not None:
                    out_flat = plan.zeros("output", (batch * n_q, attn.d_model))
                    bias = self._projection_bias(self._output_proj)
                    if bias is not None:
                        out_flat += bias
                    if kept_q.size:
                        out_flat[kept_q] = project_rows_batched_into(
                            self._output_proj,
                            head_outputs.reshape(batch, n_q, attn.d_model),
                            kept_q,
                            plan,
                            "output_rows",
                            backend=backend,
                        )
                    output = out_flat.reshape(batch, n_q, attn.d_model)
                else:
                    out_flat = np.zeros((batch * n_q, attn.d_model), dtype=FLOAT_DTYPE)
                    bias = self._projection_bias(self._output_proj)
                    if bias is not None:
                        out_flat += bias
                    if kept_q.size:
                        out_flat[kept_q] = self._project_rows_batched(
                            self._output_proj, head_outputs, kept_q
                        )
                    output = out_flat.reshape(batch, n_q, attn.d_model).astype(FLOAT_DTYPE)
            elif plan is not None:
                output = project_batched_into(
                    self._output_proj,
                    head_outputs.reshape(batch, n_q, attn.d_model),
                    plan,
                    "output",
                    backend=backend,
                )
            else:
                output = self._project_batched(self._output_proj, head_outputs).astype(
                    FLOAT_DTYPE
                )

        images: list[DEFAAttentionOutput] = []
        for b in range(batch):
            mask_b = fmap_mask[b] if fmap_mask is not None else None
            pixels_kept = int(np.count_nonzero(mask_b)) if mask_b is not None else n_in
            stats = DEFALayerStats(
                num_queries=n_q,
                num_tokens=n_in,
                points_total=paps[b].num_points,
                points_kept=paps[b].num_kept,
                pixels_total=n_in,
                pixels_kept=pixels_kept,
                pixels_kept_next=fwps[b].num_kept,
                offset_clipping_fraction=clipping_fractions[b],
                flops=msdeform_attn_flops(
                    d_model=attn.d_model,
                    num_heads=attn.num_heads,
                    num_levels=attn.num_levels,
                    num_points=attn.num_points,
                    num_queries=n_q,
                    num_tokens=n_in,
                    points_kept=paps[b].num_kept,
                    pixels_kept=pixels_kept,
                ),
                mask_applied=mask_b is not None,
                sparse_projection=sparse_projection,
                sparse_gather=sparse_gather,
                sparse_neighbors=sparse_gather,
                sparse_query=sparse_query,
            )
            images.append(
                DEFAAttentionOutput(
                    output=output[b],
                    stats=stats,
                    fmap_mask_next=fwps[b].fmap_mask,
                    point_mask=paps[b].point_mask,
                    attention_weights=paps[b].attention_weights,
                    sampling_locations=locations[b],
                    trace_executed=image_traces[b],
                    fwp=fwps[b],
                    pap=paps[b],
                )
            )
        return DEFAAttentionBatchOutput(output=output, images=images)

    def forward(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
        fmap_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Output-only wrapper: ``(N_q, D)``, or ``(B, N_q, D)`` for a batch."""
        return self.forward_detailed(
            query, reference_points, value_input, spatial_shapes, fmap_mask=fmap_mask
        ).output
