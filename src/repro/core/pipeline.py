"""The DEFA attention pipeline: MSDeformAttn with pruning-assisted grid sampling.

:class:`DEFAAttention` wraps a full-precision :class:`~repro.nn.msdeform_attn.
MSDeformAttn` module and executes it with the paper's rearranged dataflow
(Sec. 4.1):

1. attention probabilities are computed first and PAP derives the point mask;
2. the sampling offsets of the surviving points are generated and clamped by
   level-wise range narrowing;
3. the value projection ``V = X W^V`` is performed only for the fmap pixels
   kept by the FWP mask received from the *previous* block;
4. MSGS + aggregation run fused with the point mask applied, while the sampled
   frequency of every pixel is counted and the FWP mask for the *next* block is
   generated;
5. the output projection produces the block output.

All four linear projections are (optionally) fake-quantized to the configured
bit width.  The pipeline returns detailed statistics (kept points/pixels,
FLOP breakdown) that feed the Fig. 6 experiments and the hardware simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DEFAConfig
from repro.core.flops import FlopsBreakdown, msdeform_attn_flops
from repro.core.fwp import FWPResult, apply_fmap_mask, compute_fmap_mask
from repro.core.pap import PAPResult, compute_point_mask
from repro.core.range_narrowing import RangeNarrowing
from repro.core.sampling_stats import sampled_frequency
from repro.nn.grid_sample import SamplingTrace, ms_deform_attn_from_trace, multi_scale_neighbors
from repro.nn.modules import Linear
from repro.nn.msdeform_attn import MSDeformAttn
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.quant.qmodules import QuantizedLinear, quantize_linear
from repro.utils.shapes import LevelShape, total_pixels


@dataclass
class DEFALayerStats:
    """Pruning statistics of one DEFA attention block."""

    num_queries: int
    num_tokens: int
    points_total: int
    points_kept: int
    pixels_total: int
    pixels_kept: int
    """Pixels kept by the FWP mask applied to *this* block (from the previous block)."""

    pixels_kept_next: int
    """Pixels kept by the mask generated for the *next* block."""

    offset_clipping_fraction: float
    """Fraction of offset components clamped by range narrowing."""

    flops: FlopsBreakdown

    @property
    def point_reduction(self) -> float:
        """Fraction of sampling points removed by PAP."""
        return 1.0 - self.points_kept / self.points_total if self.points_total else 0.0

    @property
    def pixel_reduction(self) -> float:
        """Fraction of fmap pixels removed by the FWP mask applied to this block."""
        return 1.0 - self.pixels_kept / self.pixels_total if self.pixels_total else 0.0

    @property
    def pixel_reduction_next(self) -> float:
        """Fraction of fmap pixels the generated mask removes for the next block."""
        return 1.0 - self.pixels_kept_next / self.pixels_total if self.pixels_total else 0.0

    @property
    def flops_reduction(self) -> float:
        """Fractional FLOP reduction of the prunable operators (Fig. 6b metric)."""
        return self.flops.reduction()


@dataclass
class DEFAAttentionOutput:
    """Result of one DEFA attention block."""

    output: np.ndarray
    """Block output of shape ``(N_q, D)``."""

    stats: DEFALayerStats
    """Pruning / FLOP statistics."""

    fmap_mask_next: np.ndarray
    """FWP keep-mask generated for the next block (length ``N_in``)."""

    point_mask: np.ndarray
    """PAP keep-mask, shape ``(N_q, N_h, N_l, N_p)``."""

    attention_weights: np.ndarray
    """Attention probabilities after PAP (pruned entries zeroed)."""

    sampling_locations: np.ndarray
    """Normalized sampling locations after range narrowing."""

    trace: SamplingTrace
    """Integer sampling trace (consumed by the hardware simulator)."""

    fwp: FWPResult
    pap: PAPResult


class DEFAAttention:
    """MSDeformAttn executed with the DEFA algorithm-level optimizations.

    Parameters
    ----------
    attn:
        The wrapped full-precision attention module (its weights are reused).
    config:
        The :class:`DEFAConfig` describing which techniques are enabled.
    """

    def __init__(self, attn: MSDeformAttn, config: DEFAConfig) -> None:
        self.attn = attn
        self.config = config
        self.range_narrowing: RangeNarrowing | None = None
        if config.enable_range_narrowing:
            self.range_narrowing = RangeNarrowing(config.effective_ranges(attn.num_levels))
        self._value_proj = self._maybe_quantize(attn.value_proj)
        self._output_proj = self._maybe_quantize(attn.output_proj)
        self._sampling_offsets = self._maybe_quantize(attn.sampling_offsets)
        self._attention_weights = self._maybe_quantize(attn.attention_weights)

    def _maybe_quantize(self, linear: Linear) -> Linear | QuantizedLinear:
        if self.config.quant_bits is None:
            return linear
        return quantize_linear(linear, self.config.quant_bits)

    # ---------------------------------------------------------------- forward

    def forward_detailed(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
        fmap_mask: np.ndarray | None = None,
    ) -> DEFAAttentionOutput:
        """Run one DEFA attention block.

        Parameters
        ----------
        query:
            ``(N_q, D)`` query features (content + positional embedding).
        reference_points:
            ``(N_q, N_l, 2)`` normalized reference points.
        value_input:
            ``(N_in, D)`` flattened multi-scale feature maps.
        spatial_shapes:
            Pyramid level shapes.
        fmap_mask:
            FWP keep-mask produced by the *previous* block (``None`` for the
            first block — all pixels are kept).
        """
        query = np.asarray(query, dtype=FLOAT_DTYPE)
        value_input = np.asarray(value_input, dtype=FLOAT_DTYPE)
        attn = self.attn
        n_q = query.shape[0]
        n_in = value_input.shape[0]
        if n_in != total_pixels(spatial_shapes):
            raise ValueError("value_input length does not match spatial_shapes")
        if fmap_mask is not None and fmap_mask.shape[0] != n_in:
            raise ValueError("fmap_mask length must equal the number of tokens")

        # Step 1: attention probabilities + PAP point mask.
        logits = self._attention_weights(query).reshape(
            n_q, attn.num_heads, attn.num_levels * attn.num_points
        )
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = (exp / exp.sum(axis=-1, keepdims=True)).reshape(
            n_q, attn.num_heads, attn.num_levels, attn.num_points
        )
        if self.config.enable_pap:
            pap = compute_point_mask(
                probs,
                threshold=self.config.pap_threshold,
                keep_top1=self.config.pap_keep_top1,
                renormalize=self.config.renormalize_after_pap,
            )
        else:
            pap = PAPResult(
                point_mask=np.ones_like(probs, dtype=bool),
                attention_weights=probs,
                threshold=0.0,
            )

        # Step 2: sampling offsets of the surviving points + range narrowing.
        offsets = self._sampling_offsets(query).reshape(
            n_q, attn.num_heads, attn.num_levels, attn.num_points, 2
        )
        clipping_fraction = 0.0
        if self.range_narrowing is not None:
            clipping_fraction = self.range_narrowing.clipping_fraction(offsets)
            offsets = self.range_narrowing.clamp_offsets(offsets)
        locations = attn.compute_sampling_locations(reference_points, offsets, spatial_shapes)

        # Step 3: value projection with the FWP mask from the previous block.
        value = self._value_proj(value_input).reshape(n_in, attn.num_heads, attn.d_head)
        value = apply_fmap_mask(value, fmap_mask)

        # Step 4: fused MSGS + aggregation, with frequency counting for FWP.
        trace = multi_scale_neighbors(spatial_shapes, locations)
        head_outputs = ms_deform_attn_from_trace(
            value, trace, pap.attention_weights, point_mask=pap.point_mask
        )
        frequency = sampled_frequency(trace, point_mask=pap.point_mask)
        if self.config.enable_fwp:
            fwp = compute_fmap_mask(frequency, spatial_shapes, self.config.fwp_k)
        else:
            fwp = FWPResult(
                fmap_mask=np.ones(n_in, dtype=bool),
                thresholds=np.zeros(len(spatial_shapes)),
                level_keep_fractions=np.ones(len(spatial_shapes)),
            )

        # Step 5: output projection.
        output = self._output_proj(head_outputs).astype(FLOAT_DTYPE)

        pixels_kept = int(np.count_nonzero(fmap_mask)) if fmap_mask is not None else n_in
        stats = DEFALayerStats(
            num_queries=n_q,
            num_tokens=n_in,
            points_total=pap.num_points,
            points_kept=pap.num_kept,
            pixels_total=n_in,
            pixels_kept=pixels_kept,
            pixels_kept_next=fwp.num_kept,
            offset_clipping_fraction=clipping_fraction,
            flops=msdeform_attn_flops(
                d_model=attn.d_model,
                num_heads=attn.num_heads,
                num_levels=attn.num_levels,
                num_points=attn.num_points,
                num_queries=n_q,
                num_tokens=n_in,
                points_kept=pap.num_kept,
                pixels_kept=pixels_kept,
            ),
        )
        return DEFAAttentionOutput(
            output=output,
            stats=stats,
            fmap_mask_next=fwp.fmap_mask,
            point_mask=pap.point_mask,
            attention_weights=pap.attention_weights,
            sampling_locations=locations,
            trace=trace,
            fwp=fwp,
            pap=pap,
        )

    def forward(
        self,
        query: np.ndarray,
        reference_points: np.ndarray,
        value_input: np.ndarray,
        spatial_shapes: list[LevelShape],
        fmap_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Convenience wrapper returning only the ``(N_q, D)`` output."""
        return self.forward_detailed(
            query, reference_points, value_input, spatial_shapes, fmap_mask=fmap_mask
        ).output
