"""Level-wise range narrowing (Sec. 4.1).

The accelerator keeps only a *bounded range* of each pyramid level around the
current reference point in on-chip SRAM.  Sampling offsets are therefore
clamped into a per-level half-range (in pixels of the sampled level).  Two
aspects are modelled:

* the numerical effect of clamping the offsets (a small accuracy cost,
  0.26 AP on average in the paper), and
* the on-chip storage requirement of the bounded ranges, including the ~25 %
  extra storage a *unified* (single, maximal) range would need compared to the
  level-wise ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.shapes import LevelShape


@dataclass(frozen=True)
class RangeNarrowing:
    """Level-wise bounded ranges for sampling offsets.

    Parameters
    ----------
    level_ranges:
        Half-range per level, in pixels of that level.  An offset ``(dx, dy)``
        generated for level ``l`` is clamped to ``[-R_l, R_l]`` in both axes.
    """

    level_ranges: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.level_ranges:
            raise ValueError("level_ranges must not be empty")
        if any(r <= 0 for r in self.level_ranges):
            raise ValueError("all ranges must be positive")

    @property
    def num_levels(self) -> int:
        return len(self.level_ranges)

    def unified(self) -> "RangeNarrowing":
        """The unified-range variant: every level uses the maximum range."""
        max_range = max(self.level_ranges)
        return RangeNarrowing(tuple([max_range] * self.num_levels))

    # -------------------------------------------------------------- numerics

    def clamp_offsets(
        self, sampling_offsets: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Clamp raw sampling offsets into the per-level bounded ranges.

        ``sampling_offsets`` has shape ``(N_q, N_h, N_l, N_p, 2)`` — or
        ``(B, N_q, N_h, N_l, N_p, 2)`` for a batch — and is expressed in
        pixels of the sampled level (the Deformable DETR convention before
        dividing by the level size).  ``out`` (optionally the input itself)
        receives the clamped offsets without allocating.
        """
        offsets = np.asarray(sampling_offsets, dtype=FLOAT_DTYPE)
        if offsets.ndim not in (5, 6) or offsets.shape[-3] != self.num_levels:
            raise ValueError(
                f"offsets must have shape (..., N_q, N_h, {self.num_levels}, N_p, 2), "
                f"got {offsets.shape}"
            )
        ranges = np.asarray(self.level_ranges, dtype=FLOAT_DTYPE)[:, None, None]
        return np.clip(offsets, -ranges, ranges, out=out)

    def clamp_offsets_inplace(self, sampling_offsets: np.ndarray) -> np.ndarray:
        """:meth:`clamp_offsets` clamping the array in place (fused execution:
        the offsets live in a reusable plan buffer, so no copy is needed).
        Bit-identical to the allocating form."""
        return self.clamp_offsets(sampling_offsets, out=sampling_offsets)

    def clipping_fraction(self, sampling_offsets: np.ndarray) -> float:
        """Fraction of offset components altered by the clamp (a fidelity metric)."""
        offsets = np.asarray(sampling_offsets, dtype=FLOAT_DTYPE)
        ranges = np.asarray(self.level_ranges, dtype=FLOAT_DTYPE)[:, None, None]
        clipped = np.abs(offsets) > ranges
        return float(np.mean(clipped)) if offsets.size else 0.0

    # --------------------------------------------------------------- storage

    def window_pixels(self, level: int) -> int:
        """Number of pixels in the bounded-range window of *level*.

        The window is the ``(2R+1) x (2R+1)`` square of pixels around the
        reference point (plus the bilinear guard row/column).
        """
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} out of range")
        side = 2 * int(np.ceil(self.level_ranges[level])) + 2
        return side * side

    def storage_bits(
        self,
        d_model: int,
        bits_per_element: int = 12,
        spatial_shapes: list[LevelShape] | None = None,
    ) -> int:
        """On-chip storage (bits) needed for all bounded-range windows.

        If *spatial_shapes* is given, each level's window is additionally
        capped at the full level size (a bounded range larger than the level
        itself cannot require more storage than the level).
        """
        total = 0
        for lvl in range(self.num_levels):
            pixels = self.window_pixels(lvl)
            if spatial_shapes is not None:
                pixels = min(pixels, spatial_shapes[lvl].num_pixels)
            total += pixels * d_model * bits_per_element
        return int(total)

    def unified_storage_overhead(
        self, d_model: int, bits_per_element: int = 12, spatial_shapes: list[LevelShape] | None = None
    ) -> float:
        """Relative extra storage of the unified range vs. the level-wise ranges.

        The paper quotes ~25 % extra storage for the unified restriction
        (Sec. 4.1); this method reproduces that comparison for any range
        configuration.
        """
        own = self.storage_bits(d_model, bits_per_element, spatial_shapes)
        unified = self.unified().storage_bits(d_model, bits_per_element, spatial_shapes)
        if own == 0:
            return 0.0
        return unified / own - 1.0


def full_fmap_storage_bits(
    spatial_shapes: list[LevelShape], d_model: int, bits_per_element: int = 12
) -> int:
    """On-chip storage needed to hold the *entire* multi-scale fmap.

    This is the ~9.8 MB buffer requirement the paper attributes to attention
    accelerators without range narrowing (Sec. 2.2).
    """
    pixels = sum(s.num_pixels for s in spatial_shapes)
    return int(pixels * d_model * bits_per_element)
