"""FLOP accounting for MSDeformAttn with and without DEFA pruning.

The reduction reported in Fig. 6(b) covers the operators of the MSDeformAttn
dataflow that FWP/PAP touch: the value projection (rows of ``X W^V`` skipped by
FWP), the sampling-offset projection, the grid sampling and the aggregation
(points skipped by PAP), plus the attention-weight projection and softmax
(which always run, since PAP needs the probabilities).  The output projection
operates on queries and is unaffected by either pruning method; it is tracked
separately so both conventions can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field


PRUNABLE_OPERATORS = (
    "value_proj",
    "sampling_offsets",
    "attention_weights",
    "softmax",
    "msgs",
    "aggregation",
)
"""Operators included in the Fig. 6(b) computation-reduction figure."""


@dataclass
class FlopsBreakdown:
    """Dense and pruned FLOPs per operator of one MSDeformAttn layer."""

    dense: dict[str, int] = field(default_factory=dict)
    pruned: dict[str, int] = field(default_factory=dict)

    def total_dense(self, include_output_proj: bool = False) -> int:
        """Total dense FLOPs (optionally including the output projection)."""
        return self._total(self.dense, include_output_proj)

    def total_pruned(self, include_output_proj: bool = False) -> int:
        """Total FLOPs after FWP + PAP."""
        return self._total(self.pruned, include_output_proj)

    @staticmethod
    def _total(breakdown: dict[str, int], include_output_proj: bool) -> int:
        keys = set(PRUNABLE_OPERATORS)
        if include_output_proj:
            keys.add("output_proj")
        return int(sum(v for k, v in breakdown.items() if k in keys))

    def reduction(self, include_output_proj: bool = False) -> float:
        """Fractional FLOP reduction (the Fig. 6b metric)."""
        dense = self.total_dense(include_output_proj)
        if dense == 0:
            return 0.0
        return 1.0 - self.total_pruned(include_output_proj) / dense

    def merged_with(self, other: "FlopsBreakdown") -> "FlopsBreakdown":
        """Element-wise sum of two breakdowns (used to aggregate over layers)."""
        dense = dict(self.dense)
        pruned = dict(self.pruned)
        for key, value in other.dense.items():
            dense[key] = dense.get(key, 0) + value
        for key, value in other.pruned.items():
            pruned[key] = pruned.get(key, 0) + value
        return FlopsBreakdown(dense=dense, pruned=pruned)


def msdeform_attn_flops(
    d_model: int,
    num_heads: int,
    num_levels: int,
    num_points: int,
    num_queries: int,
    num_tokens: int,
    points_kept: int | None = None,
    pixels_kept: int | None = None,
) -> FlopsBreakdown:
    """FLOP breakdown of one MSDeformAttn layer.

    Parameters
    ----------
    d_model, num_heads, num_levels, num_points:
        Operator hyper-parameters.
    num_queries, num_tokens:
        ``N_q`` and ``N_in`` of the workload.
    points_kept:
        Number of sampling points kept by PAP over the whole layer (out of
        ``N_q * N_h * N_l * N_p``); ``None`` means no pruning.
    pixels_kept:
        Number of fmap pixels kept by the FWP mask applied to this layer (out
        of ``N_in``); ``None`` means no pruning.
    """
    if d_model % num_heads != 0:
        raise ValueError("d_model must be divisible by num_heads")
    d_head = d_model // num_heads
    points_per_query = num_heads * num_levels * num_points
    total_points = num_queries * points_per_query
    if points_kept is None:
        points_kept = total_points
    if pixels_kept is None:
        pixels_kept = num_tokens
    if not 0 <= points_kept <= total_points:
        raise ValueError("points_kept out of range")
    if not 0 <= pixels_kept <= num_tokens:
        raise ValueError("pixels_kept out of range")

    dense = {
        "value_proj": 2 * num_tokens * d_model * d_model,
        "sampling_offsets": 2 * num_queries * d_model * (2 * points_per_query),
        "attention_weights": 2 * num_queries * d_model * points_per_query,
        "output_proj": 2 * num_queries * d_model * d_model,
        "softmax": 5 * num_queries * points_per_query,
        "msgs": total_points * d_head * 10,
        "aggregation": 2 * total_points * d_head,
    }
    point_ratio = points_kept / total_points if total_points else 1.0
    pruned = {
        "value_proj": 2 * pixels_kept * d_model * d_model,
        "sampling_offsets": int(dense["sampling_offsets"] * point_ratio),
        "attention_weights": dense["attention_weights"],
        "output_proj": dense["output_proj"],
        "softmax": dense["softmax"],
        "msgs": points_kept * d_head * 10,
        "aggregation": 2 * points_kept * d_head,
    }
    return FlopsBreakdown(dense=dense, pruned=pruned)
