"""Frequency-weighted feature-map pruning (FWP, Sec. 3.1).

FWP removes fmap pixels with a low sampled frequency.  Within one
MSDeformAttn block the sampled frequency ``F_i`` of every pixel is counted
(see :mod:`repro.core.sampling_stats`); pixels with

.. math::  F_i < T_{FWP} = k \\cdot \\frac{1}{HW} \\sum_j F_j

are recorded in a bit mask (the *fmap mask*).  The mask is applied in the
**next** MSDeformAttn block, where the linear projection ``V = X W^V`` and the
memory accesses of the masked pixels are skipped.  The threshold is computed
per pyramid level (Eq. 2 is written for one ``H x W`` fmap).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.shapes import LevelShape, level_start_indices, total_pixels


@dataclass
class FWPResult:
    """Outcome of one FWP mask computation.

    Attributes
    ----------
    fmap_mask:
        Boolean array of length ``N_in``; ``True`` marks pixels that are
        *kept* for the next block.
    thresholds:
        Per-level threshold values ``T_FWP``.
    level_keep_fractions:
        Fraction of pixels kept in each level.
    """

    fmap_mask: np.ndarray
    thresholds: np.ndarray
    level_keep_fractions: np.ndarray

    @property
    def num_pixels(self) -> int:
        """Total number of fmap pixels."""
        return int(self.fmap_mask.size)

    @property
    def num_kept(self) -> int:
        """Number of pixels kept."""
        return int(np.count_nonzero(self.fmap_mask))

    @property
    def keep_fraction(self) -> float:
        """Overall fraction of pixels kept."""
        return self.num_kept / self.num_pixels if self.num_pixels else 1.0

    @property
    def pruned_fraction(self) -> float:
        """Overall fraction of pixels pruned (the quantity in Fig. 6b)."""
        return 1.0 - self.keep_fraction


def compute_fmap_mask(
    frequency: np.ndarray,
    spatial_shapes: list[LevelShape],
    k: float,
) -> FWPResult:
    """Compute the FWP fmap mask from a sampled-frequency array.

    Parameters
    ----------
    frequency:
        Flat ``(N_in,)`` sampled-frequency array of the current block.
    spatial_shapes:
        Pyramid level shapes.
    k:
        Threshold factor of Eq. 2.  ``k = 0`` keeps every pixel that was
        accessed at least once is *not* guaranteed — the threshold is
        ``k * mean`` so ``k = 0`` keeps all pixels.

    Returns
    -------
    :class:`FWPResult` with the keep-mask and per-level statistics.
    """
    frequency = np.asarray(frequency, dtype=np.float64)
    n_in = total_pixels(spatial_shapes)
    if frequency.shape != (n_in,):
        raise ValueError(f"frequency must have shape ({n_in},), got {frequency.shape}")
    if k < 0:
        raise ValueError("k must be non-negative")

    starts = level_start_indices(spatial_shapes)
    mask = np.ones(n_in, dtype=bool)
    thresholds = np.zeros(len(spatial_shapes), dtype=np.float64)
    keep_fractions = np.zeros(len(spatial_shapes), dtype=np.float64)
    for lvl, shape in enumerate(spatial_shapes):
        sl = slice(starts[lvl], starts[lvl] + shape.num_pixels)
        level_freq = frequency[sl]
        threshold = k * level_freq.mean()
        keep = level_freq >= threshold
        mask[sl] = keep
        thresholds[lvl] = threshold
        keep_fractions[lvl] = float(np.mean(keep))
    return FWPResult(fmap_mask=mask, thresholds=thresholds, level_keep_fractions=keep_fractions)


def compute_fmap_mask_batched(
    frequency: np.ndarray,
    spatial_shapes: list[LevelShape],
    k: float,
) -> list[FWPResult]:
    """Per-image FWP masks for a batch of frequency arrays.

    ``frequency`` has shape ``(B, N_in)``; the result list matches calling
    :func:`compute_fmap_mask` on every row (identical thresholds and masks),
    with the per-level statistics computed vectorized across the batch.
    """
    frequency = np.asarray(frequency, dtype=np.float64)
    if frequency.ndim != 2:
        raise ValueError("frequency must have shape (B, N_in)")
    batch = frequency.shape[0]
    n_in = total_pixels(spatial_shapes)
    if frequency.shape[1] != n_in:
        raise ValueError(f"frequency rows must have length {n_in}, got {frequency.shape[1]}")
    if k < 0:
        raise ValueError("k must be non-negative")

    starts = level_start_indices(spatial_shapes)
    n_l = len(spatial_shapes)
    masks = np.ones((batch, n_in), dtype=bool)
    thresholds = np.zeros((batch, n_l), dtype=np.float64)
    keep_fractions = np.zeros((batch, n_l), dtype=np.float64)
    for lvl, shape in enumerate(spatial_shapes):
        sl = slice(starts[lvl], starts[lvl] + shape.num_pixels)
        level_freq = frequency[:, sl]  # (B, num_pixels)
        level_thresholds = k * level_freq.mean(axis=1)
        keep = level_freq >= level_thresholds[:, None]
        masks[:, sl] = keep
        thresholds[:, lvl] = level_thresholds
        keep_fractions[:, lvl] = np.mean(keep, axis=1)
    return [
        FWPResult(
            fmap_mask=masks[b],
            thresholds=thresholds[b],
            level_keep_fractions=keep_fractions[b],
        )
        for b in range(batch)
    ]


def normalize_mask(mask: np.ndarray | None) -> np.ndarray | None:
    """Coerce a keep-mask to ``bool`` once, at the pipeline boundary.

    Integer/uint8 masks (non-zero means *keep*) are converted to a boolean
    array; boolean masks pass through without a copy (``np.asarray`` is a
    no-op on them), so every downstream stage can rely on ``mask.dtype ==
    bool`` — in particular on ``~mask`` being a logical, not bitwise,
    negation — without re-casting per stage.  ``None`` passes through.
    """
    if mask is None:
        return None
    return np.asarray(mask, dtype=bool)


def apply_fmap_mask(value: np.ndarray, fmap_mask: np.ndarray | None) -> np.ndarray:
    """Zero out the value rows of pruned pixels.

    ``value`` may be ``(N_in, D)`` or ``(N_in, N_h, D_h)``; a copy is returned
    when a mask actually prunes something so the caller's array is never
    mutated.  When the mask keeps every pixel (``fmap_mask.all()``) the input
    array is returned *unchanged and uncopied* — callers must treat the result
    as read-only (every call site in this repo already does).
    """
    if fmap_mask is None:
        return value
    fmap_mask = normalize_mask(fmap_mask)
    if fmap_mask.shape[0] != value.shape[0]:
        raise ValueError("fmap_mask length must match the value token axis")
    if fmap_mask.all():
        return value
    result = value.copy()
    result[~fmap_mask] = 0
    return result


def mask_storage_bits(fmap_mask: np.ndarray) -> int:
    """Size of the bit mask in bits (one bit per fmap pixel).

    Used by the hardware model to account for the (tiny) overhead of storing
    and streaming the FWP mask between blocks.
    """
    return int(np.asarray(fmap_mask).size)
