"""Configuration of the DEFA algorithm-level optimizations.

One :class:`DEFAConfig` instance describes which of the paper's techniques are
enabled and with which hyper-parameters:

* frequency-weighted fmap pruning (FWP, Sec. 3.1) with threshold factor ``k``,
* probability-aware point pruning (PAP, Sec. 3.2) with its probability
  threshold,
* level-wise range narrowing (Sec. 4.1) with per-level bounded ranges,
* INT12/INT8 quantization of the MSDeformAttn modules (Sec. 5.1/5.2).

The defaults reproduce the paper's operating point (~43 % fmap pixels and
~84 % sampling points removed with negligible accuracy loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

DEFAULT_LEVEL_RANGES: tuple[float, ...] = (8.0, 7.0, 7.0, 6.0)
"""Default per-level bounded half-ranges (in pixels of the sampled level).

The finest level gets the widest range; using the unified (maximum) range on
all levels costs roughly 25 % extra on-chip storage (Sec. 4.1), which the
``unified_range`` ablation reproduces.
"""


@dataclass(frozen=True)
class DEFAConfig:
    """Algorithm-level configuration of DEFA.

    Parameters
    ----------
    enable_fwp:
        Apply frequency-weighted fmap pruning: the sampled frequency of every
        fmap pixel is counted in block *i* and pixels below the threshold are
        skipped (projection + memory access) in block *i+1*.
    fwp_k:
        Threshold factor ``k`` in ``T_FWP = k * mean(F)`` (Eq. 2).
    enable_pap:
        Apply probability-aware point pruning: sampling points whose softmax
        attention probability falls below ``pap_threshold`` are removed.
    pap_threshold:
        Absolute probability threshold.  With ``N_l * N_p = 16`` points per
        head the uniform probability is 1/16 = 0.0625; the default prunes
        points holding well under that share of the attention mass.
    pap_keep_top1:
        Always keep the highest-probability point of every (query, head) even
        if it falls below the threshold (guards degenerate configurations).
    renormalize_after_pap:
        If ``True``, re-normalize the surviving attention probabilities to sum
        to one.  The paper keeps the raw probabilities (pruned mass is simply
        dropped), which is the default.
    enable_range_narrowing:
        Clamp sampling offsets into per-level bounded ranges around the
        reference point.
    level_ranges:
        Per-level half-range in pixels of that level.  Must have one entry per
        pyramid level when range narrowing is enabled.
    unified_range:
        Ablation switch: use the maximum of ``level_ranges`` on every level
        (the "unified bounded range" of Fig. 4, costing ~25 % extra SRAM).
    quant_bits:
        Bit width of the fake quantization applied to the MSDeformAttn
        weights/activations (12 in the paper, 8 for the rejected ablation,
        ``None`` disables quantization).
    kernel_backend:
        Kernel backend executing the compact-trace MSGS hot path and the
        execution-plan machinery (see :mod:`repro.kernels`): ``"reference"``
        reproduces the PR 4 kernels byte for byte, ``"fused"`` runs the
        bit-identical single-pass kernels with buffer-arena reuse, and
        ``"compiled"`` runs the C implementations of the same kernels when
        the extension is built (falling back to ``"fused"`` with a warning
        when it is not — see :mod:`repro.kernels.compiled_backend`).  ``None``
        (the default) follows the process default (``REPRO_KERNEL_BACKEND``
        environment variable, or ``"fused"``); a per-call ``backend=`` on
        ``forward_detailed`` overrides both.
    enable_query_pruning:
        Extend the FWP mask to the *query* side of the next block: when the
        query set is the pixel set (encoder self-attention, ``N_q == N_in``),
        pruned pixels stop acting as queries — their sampling points are
        pruned wholesale, they contribute nothing to frequency counting, and
        their attention-block output is the output-projection bias.  Inside a
        :class:`~repro.core.encoder_runner.DEFAEncoderRunner` the pruning
        carries through the whole encoder block (block-sparse encoder):
        pruned pixels also skip the residual adds, ``norm1``, the FFN and
        ``norm2``, leaving the block *frozen at the block input* (the
        frozen-value convention), so the next block's FWP mask sees their
        unmodified features.  Off by default: the Fig. 6 experiments
        reproduce the paper's FWP-on-values-only operating point.  Both
        execution paths implement the same semantics (the dense path
        computes and masks, the sparse path skips the rows), so dense/sparse
        equivalence is unchanged.
    """

    enable_fwp: bool = True
    fwp_k: float = 0.75
    enable_pap: bool = True
    pap_threshold: float = 0.035
    pap_keep_top1: bool = True
    renormalize_after_pap: bool = False
    enable_range_narrowing: bool = True
    level_ranges: tuple[float, ...] = field(default=DEFAULT_LEVEL_RANGES)
    unified_range: bool = False
    quant_bits: int | None = 12
    enable_query_pruning: bool = False
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.kernel_backend is not None:
            from repro.kernels import KERNEL_BACKENDS

            if self.kernel_backend not in KERNEL_BACKENDS:
                raise ValueError(
                    f"kernel_backend must be one of {KERNEL_BACKENDS} or None, "
                    f"got {self.kernel_backend!r}"
                )
        if self.fwp_k < 0:
            raise ValueError("fwp_k must be non-negative")
        if not 0 <= self.pap_threshold < 1:
            raise ValueError("pap_threshold must be in [0, 1)")
        if self.enable_range_narrowing:
            if not self.level_ranges:
                raise ValueError("level_ranges must be provided when range narrowing is enabled")
            if any(r <= 0 for r in self.level_ranges):
                raise ValueError("level_ranges must be positive")
        if self.quant_bits is not None and not 2 <= self.quant_bits <= 32:
            raise ValueError("quant_bits must be in [2, 32] or None")

    # ------------------------------------------------------------ factories

    @staticmethod
    def baseline() -> "DEFAConfig":
        """Configuration with every DEFA technique disabled (the FP32 baseline)."""
        return DEFAConfig(
            enable_fwp=False,
            enable_pap=False,
            enable_range_narrowing=False,
            quant_bits=None,
        )

    @staticmethod
    def paper_default() -> "DEFAConfig":
        """The paper's operating point: FWP + PAP + range narrowing + INT12."""
        return DEFAConfig()

    def with_overrides(self, **kwargs) -> "DEFAConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def effective_ranges(self, num_levels: int) -> tuple[float, ...]:
        """Bounded ranges actually applied, accounting for ``unified_range``.

        Raises if range narrowing is enabled but the number of configured
        ranges does not match the number of pyramid levels.
        """
        if not self.enable_range_narrowing:
            return tuple([float("inf")] * num_levels)
        ranges = self.level_ranges
        if len(ranges) < num_levels:
            raise ValueError(
                f"{len(ranges)} level ranges configured but the workload has {num_levels} levels"
            )
        ranges = tuple(float(r) for r in ranges[:num_levels])
        if self.unified_range:
            return tuple([max(ranges)] * num_levels)
        return ranges

    def describe(self) -> dict[str, object]:
        """Short dictionary summary (used by example scripts and reports)."""
        return {
            "fwp": f"k={self.fwp_k}" if self.enable_fwp else "off",
            "pap": f"thr={self.pap_threshold}" if self.enable_pap else "off",
            "range_narrowing": (
                ("unified " if self.unified_range else "") + str(self.level_ranges)
                if self.enable_range_narrowing
                else "off"
            ),
            "quantization": f"INT{self.quant_bits}" if self.quant_bits else "FP32",
            "kernel_backend": self.kernel_backend or "default",
        }
