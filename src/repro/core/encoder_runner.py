"""Run a deformable encoder with the DEFA algorithm applied to every block.

FWP operates *across* MSDeformAttn blocks: the fmap mask generated while
sampling in block *i* prunes the value projection and memory accesses of
block *i+1*.  :class:`DEFAEncoderRunner` wires that propagation through a
:class:`~repro.nn.encoder.DeformableEncoder`.

With :attr:`DEFAConfig.enable_query_pruning` off (the paper's values-only FWP
semantics), each layer's LayerNorms and FFN run dense and unchanged — DEFA
only touches the attention block.  With query pruning on, the runner extends
the pruning to the whole encoder block (block-sparse encoder, PR 4): a pixel
pruned by the incoming FWP mask skips the residual adds, ``norm1``, the FFN
and ``norm2`` as well, and its row leaves the block *frozen at the block
input* (the frozen-value convention — see
:meth:`~repro.nn.encoder.DeformableEncoderLayer.forward_ffn_stage`).  The
stage executes row-compacted when the ``sparse_mode``/auto-threshold dispatch
selects it (wall-clock savings tracking the pixel keep ratio) and
masked-dense otherwise, with identical semantics either way.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DEFAConfig
from repro.core.flops import FlopsBreakdown
from repro.core.fwp import normalize_mask
from repro.core.pipeline import (
    SPARSE_MODES,
    DEFAAttention,
    DEFAAttentionBatchOutput,
    DEFAAttentionOutput,
    DEFALayerStats,
    use_sparse_rows,
)
from repro.kernels import (
    ExecutionOptions,
    ExecutionPlan,
    normalize_execution_options,
    resolve_backend,
    resolve_profile,
)
from repro.kernels.options import _UNSET
from repro.nn.encoder import DeformableEncoder
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.shapes import LevelShape


@dataclass
class DEFAEncoderResult:
    """Result of running an encoder under the DEFA algorithm."""

    memory: np.ndarray
    """Final encoder output of shape ``(N_in, D)``."""

    layer_stats: list[DEFALayerStats] = field(default_factory=list)
    """Per-layer pruning statistics."""

    layer_outputs: list[DEFAAttentionOutput] = field(default_factory=list)
    """Full per-layer attention outputs (present when ``collect_details=True``)."""

    fmap_masks: list[np.ndarray] = field(default_factory=list)
    """FWP keep-mask *generated* by each block (block *i*'s entry is the mask
    applied to block *i+1*).  Always collected — masks are ``N_in`` bools per
    block, cheap next to the tensors — so callers can compare the prune
    trajectories of two runs exactly without paying for
    ``collect_details=True``."""

    @property
    def mean_point_reduction(self) -> float:
        """Average PAP sampling-point reduction over all blocks."""
        if not self.layer_stats:
            return 0.0
        return float(np.mean([s.point_reduction for s in self.layer_stats]))

    @property
    def mean_pixel_reduction(self) -> float:
        """Average FWP fmap-pixel reduction over the blocks that receive a mask.

        The first block never has an incoming mask, so the average is taken
        over blocks 2..L (the paper's 43 % figure refers to the pruned fmap
        accesses of masked blocks).
        """
        masked = [s.pixel_reduction for s in self.layer_stats[1:]]
        if not masked:
            return 0.0
        return float(np.mean(masked))

    @property
    def mean_flops_reduction(self) -> float:
        """Average FLOP reduction of the prunable operators over all blocks."""
        if not self.layer_stats:
            return 0.0
        merged = FlopsBreakdown()
        for stats in self.layer_stats:
            merged = merged.merged_with(stats.flops)
        return merged.reduction()


@dataclass
class DEFAEncoderBatchResult:
    """Result of running an encoder under DEFA on an image batch."""

    memory: np.ndarray
    """Final encoder output of shape ``(B, N_in, D)``."""

    images: list[DEFAEncoderResult] = field(default_factory=list)
    """Per-image results (stats and, optionally, detailed layer outputs)."""

    @property
    def batch_size(self) -> int:
        return len(self.images)


class DEFAEncoderRunner:
    """Execute a deformable encoder with DEFA applied to each attention block.

    Parameters
    ----------
    encoder:
        The full-precision encoder whose weights are reused.
    config:
        DEFA algorithm configuration.
    options:
        :class:`~repro.kernels.ExecutionOptions` bundling the execution
        knobs (PR 8); the legacy ``sparse_mode=`` / ``backend=`` keywords
        are deprecated shims through
        :func:`~repro.kernels.normalize_execution_options`.

        ``sparse_mode`` is the execution switch forwarded to every
        :class:`DEFAAttention` block (see :data:`repro.core.pipeline.
        SPARSE_MODES`; ``None`` means ``"auto"``): ``"auto"`` runs the
        compacted gather/scatter kernels whenever the FWP/PAP reduction
        ratio makes them profitable, ``"dense"``/``"sparse"`` force one
        path.  The same switch governs the inter-block FFN/LayerNorm stage
        under query pruning (thresholds :data:`~repro.core.pipeline.
        SPARSE_AUTO_FFN_KEEP_MAX` / :data:`~repro.core.pipeline.
        SPARSE_AUTO_FFN_MIN_TOKENS` in ``"auto"``).

        ``kernel_backend`` is the kernel-backend specification (name,
        backend object, or ``None`` to follow ``config.kernel_backend`` and
        then the process default; the runner's ``kernel_backend`` attribute
        stays settable, so a benchmark can flip one runner between
        backends).  ``"reference"`` reproduces the PR 4 execution exactly —
        no execution plans, per-block allocation; ``"fused"`` runs the
        bit-identical fused kernels *and* allocates every per-block
        intermediate from a per-shape-signature :class:`ExecutionPlan`
        (see :meth:`execution_plan`), reused across blocks and across
        :class:`~repro.engine.batching.BatchRunner` work items.

        ``collect_details`` sets the runner-wide default for
        :meth:`forward`'s ``collect_details`` argument, and
        ``enable_query_pruning`` overrides the config's flag at
        construction time (the pruning projections are baked in here, so it
        cannot be re-toggled per call).
    enable_sparse_ffn:
        Escape hatch for benchmarking: ``False`` pins the FFN stage to the
        masked-dense execution even in ``"sparse"`` mode, which reproduces
        the PR 3 cost profile (sparse attention, dense inter-block work)
        under the *same* frozen-row semantics.  Numerics are unaffected.
    """

    def __init__(
        self,
        encoder: DeformableEncoder,
        config: DEFAConfig,
        options: ExecutionOptions | None = None,
        enable_sparse_ffn: bool = True,
        *,
        sparse_mode=_UNSET,
        backend=_UNSET,
    ) -> None:
        options = normalize_execution_options(
            options, owner="DEFAEncoderRunner", sparse_mode=sparse_mode, backend=backend
        )
        if options.enable_query_pruning is not None:
            config = config.with_overrides(
                enable_query_pruning=options.enable_query_pruning
            )
        self.encoder = encoder
        self.config = config
        self.enable_sparse_ffn = enable_sparse_ffn
        self.kernel_backend = options.kernel_backend
        self.collect_details_default = options.collect_details
        self.machine_profile = resolve_profile(options.machine_profile)
        """The host dispatch profile (PR 9) governing every ``auto``
        crossover threshold of this runner — the blocks' row dispatch, the
        inter-block query/FFN stages and the point-gather rule — resolved
        once at construction (``None`` followed the process-default active
        profile) and forwarded to every block."""
        self._plans: OrderedDict[tuple, ExecutionPlan] = OrderedDict()
        block_options = ExecutionOptions(
            sparse_mode=options.sparse_mode or "auto",
            machine_profile=self.machine_profile,
        )
        self.defa_layers = [
            DEFAAttention(layer.self_attn, config, block_options)
            for layer in encoder.layers
        ]

    @property
    def sparse_mode(self) -> str:
        return self.defa_layers[0].sparse_mode if self.defa_layers else "auto"

    @sparse_mode.setter
    def sparse_mode(self, mode: str) -> None:
        if mode not in SPARSE_MODES:
            raise ValueError(f"sparse_mode must be one of {SPARSE_MODES}, got {mode!r}")
        for layer in self.defa_layers:
            layer.sparse_mode = mode

    def resolved_backend(self):
        """The kernel backend this runner executes with (runner attribute >
        ``config.kernel_backend`` > process default, resolved per call so
        :func:`repro.kernels.set_backend` takes effect immediately)."""
        return resolve_backend(self.kernel_backend or self.config.kernel_backend)

    MAX_EXECUTION_PLANS = 8
    """LRU bound on cached per-signature arenas.  Each warm plan holds every
    large per-block buffer of its workload (tens of MB at paper scale), so a
    long-lived runner fed heterogeneous image sizes must not accumulate one
    arena per distinct signature forever — least-recently-used plans are
    dropped past this bound (mirroring :class:`repro.engine.trace_cache.
    TraceCache`); a dropped signature simply re-warms on next use."""

    def execution_plan(
        self, spatial_shapes: list[LevelShape], batch_size: int | None
    ) -> ExecutionPlan:
        """The buffer arena for one ``(shape-signature, batch-size)``.

        Plans are created on first use and kept LRU-bounded (at most
        :data:`MAX_EXECUTION_PLANS`): a signature change means a *new* plan
        (the invalidation rule), while repeated forwards — across blocks and
        across BatchRunner work items of the same signature — reuse the warm
        arena and perform no large allocations.  ``batch_size`` is ``None``
        for single-image forwards.
        """
        key = (tuple(s.as_tuple() for s in spatial_shapes), batch_size)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._plans[key] = ExecutionPlan()
        else:
            self._plans.move_to_end(key)  # refresh recency (true LRU)
        while len(self._plans) > self.MAX_EXECUTION_PLANS:
            self._plans.popitem(last=False)
        return plan

    def plan_stats(self) -> dict[str, int | str]:
        """Aggregate arena accounting over all cached execution plans.

        ``hits``/``grows`` follow :class:`~repro.kernels.ExecutionPlan`
        semantics (buffer reuses vs. (re)allocations); ``bytes`` is the total
        steady-state arena footprint.  The serving engine reports this per
        worker as evidence that the warm-arena regime survives across
        requests (hits keep climbing, grows plateau once the plans are warm).
        ``backend`` names the kernel backend the runner *actually* executes
        with right now — after registry fallback, so a worker that requested
        ``"compiled"`` on a host without the built extension reports
        ``"fused"`` here.  ``profile`` names the active dispatch profile
        (``"reference"`` unless a calibrated host profile was installed).
        """
        return {
            "backend": self.resolved_backend().name,
            "profile": self.machine_profile.name,
            "plans": len(self._plans),
            "hits": sum(p.hits for p in self._plans.values()),
            "grows": sum(p.grows for p in self._plans.values()),
            "bytes": sum(p.allocated_bytes for p in self._plans.values()),
        }

    def query_stage_plan(
        self, fmap_mask: np.ndarray | None, queries_per_image: int, batched: bool = False
    ) -> tuple[np.ndarray | None, bool]:
        """``(keep_mask, compact)`` for the pre-attention ``query = x + pos`` add.

        Under query pruning the FWP-pruned pixels of the incoming mask never
        act as queries, so their positional add is dead work: the compact
        path computes ``x + pos`` only on the kept rows (zeros elsewhere —
        exactly what the row-compacted projections read), the masked-dense
        path computes the full add and zeroes the pruned rows.  Both produce
        bit-identical query arrays, and zeroed pruned rows are observation-
        equivalent to the PR 4 full add (every projection of a pruned row is
        already masked out downstream).  The compact/masked choice follows
        the same :func:`~repro.core.pipeline.use_sparse_rows` gate as the
        query-side projections inside the attention block.
        """
        if not self.config.enable_query_pruning or fmap_mask is None:
            return None, False
        fmap_mask = normalize_mask(fmap_mask)  # boundary: accept int masks
        t = self.machine_profile.thresholds_for(self.resolved_backend().name)
        compact = use_sparse_rows(
            fmap_mask,
            queries_per_image,
            t.query_keep_max,
            t.min_queries,
            self.sparse_mode,
            batched=batched,
        )
        return fmap_mask, compact

    def _build_query(
        self,
        x: np.ndarray,
        pos: np.ndarray,
        keep_mask: np.ndarray | None,
        compact: bool,
        plan: ExecutionPlan | None,
    ) -> np.ndarray:
        """``query = x + pos`` under the query-pruning mask (see
        :meth:`query_stage_plan`).  ``x`` is ``(N, D)`` or ``(B, N, D)`` with
        ``pos`` shared ``(N, D)``; with a ``plan`` the query lives in a
        reused arena buffer."""
        if keep_mask is None:
            if plan is not None:
                query = plan.buffer("query", x.shape)
                np.add(x, pos, out=query)
                return query
            return x + pos
        if not compact:
            if plan is not None:
                query = plan.buffer("query", x.shape)
                np.add(x, pos, out=query)
            else:
                query = x + pos
            query[~keep_mask] = 0
            return query
        flat_x = x.reshape(-1, x.shape[-1])
        kept = np.flatnonzero(keep_mask.reshape(-1))
        pos_idx = kept if x.ndim == 2 else kept % x.shape[1]
        if plan is not None:
            query = plan.zeros("query", x.shape)
            if kept.size:
                rows = plan.take("query.x_rows", flat_x, kept)
                rows_pos = plan.take("query.pos_rows", pos, pos_idx)
                np.add(rows, rows_pos, out=rows)
                query.reshape(-1, x.shape[-1])[kept] = rows
            return query
        query = np.zeros_like(x)
        if kept.size:
            query.reshape(-1, x.shape[-1])[kept] = flat_x[kept] + pos[pos_idx]
        return query

    def ffn_stage_plan(
        self, fmap_mask: np.ndarray | None, tokens_per_image: int, batched: bool = False
    ) -> tuple[np.ndarray | None, bool]:
        """``(keep_mask, compact)`` for the inter-block FFN/LayerNorm stage.

        Row pruning of the stage follows the same gate as query pruning in
        the attention block (the encoder is self-attention, so the query set
        *is* the pixel set): it requires ``enable_query_pruning`` and an
        incoming mask — the first block therefore always runs dense.  The
        compact/masked-dense execution choice then follows the shared
        :func:`~repro.core.pipeline.use_sparse_rows` rule under this runner's
        ``sparse_mode``, unless :attr:`enable_sparse_ffn` pins it dense.
        """
        if not self.config.enable_query_pruning or fmap_mask is None:
            return None, False
        fmap_mask = normalize_mask(fmap_mask)  # boundary: accept int masks
        t = self.machine_profile.thresholds_for(self.resolved_backend().name)
        compact = self.enable_sparse_ffn and use_sparse_rows(
            fmap_mask,
            tokens_per_image,
            t.ffn_keep_max,
            t.ffn_min_tokens,
            self.sparse_mode,
            batched=batched,
        )
        return fmap_mask, compact

    def forward(
        self,
        src: np.ndarray,
        pos: np.ndarray,
        reference_points: np.ndarray,
        spatial_shapes: list[LevelShape],
        collect_details: bool | None = None,
        fmap_masks: list[np.ndarray | None] | None = None,
    ) -> DEFAEncoderResult | DEFAEncoderBatchResult:
        """Run all encoder layers, propagating the FWP mask block to block.

        ``src`` may be a single image ``(N_in, D)`` or a batch ``(B, N_in,
        D)``; batched inputs dispatch to :meth:`forward_batched` and return a
        :class:`DEFAEncoderBatchResult`.  ``collect_details`` defaults to the
        runner's :class:`~repro.kernels.ExecutionOptions` value.

        ``fmap_masks`` overrides the *incoming* FWP mask of every block
        (entry ``j`` feeds block ``j``; ``None`` entries mean dense, matching
        the first-block convention), instead of the mask evolving from block
        ``i`` to block ``i+1``.  The masks each block *generates* are still
        recorded in the result.  A :class:`~repro.engine.streaming.
        StreamingEncoderSession` uses this to warm-start a frame from the
        previous frame's prune trajectory intersected with its
        temporally-dirty set; single-image forwards only.
        """
        x = np.asarray(src, dtype=FLOAT_DTYPE)
        if x.ndim == 3:
            if fmap_masks is not None:
                raise ValueError("fmap_masks overrides support single-image forwards only")
            return self.forward_batched(
                x, pos, reference_points, spatial_shapes, collect_details=collect_details
            )
        if fmap_masks is not None and len(fmap_masks) != len(self.encoder.layers):
            raise ValueError(
                f"fmap_masks must have one entry per encoder layer "
                f"({len(self.encoder.layers)}), got {len(fmap_masks)}"
            )
        if collect_details is None:
            collect_details = self.collect_details_default
        pos = np.asarray(pos, dtype=FLOAT_DTYPE)
        backend = self.resolved_backend()
        # collect_details hands the per-block outputs to the caller, so they
        # must not live in arena buffers that the next block overwrites.
        plan = (
            self.execution_plan(spatial_shapes, None)
            if backend.fused and not collect_details
            else None
        )
        fmap_mask: np.ndarray | None = None
        layer_stats: list[DEFALayerStats] = []
        layer_outputs: list[DEFAAttentionOutput] = []
        generated_masks: list[np.ndarray] = []

        call_options = ExecutionOptions(kernel_backend=backend)
        for index, (layer, defa_attn) in enumerate(
            zip(self.encoder.layers, self.defa_layers)
        ):
            if fmap_masks is not None:
                fmap_mask = fmap_masks[index]
            # Pre-attention query add, skipped for FWP-pruned pixels under
            # query pruning (their rows never act as queries).
            q_keep, q_compact = self.query_stage_plan(fmap_mask, x.shape[0])
            query = self._build_query(x, pos, q_keep, q_compact, plan)
            attn_out = defa_attn.forward_detailed(
                query,
                reference_points,
                x,
                spatial_shapes,
                fmap_mask=fmap_mask,
                options=call_options,
                plan=plan,
            )
            layer_stats.append(attn_out.stats)
            if collect_details:
                layer_outputs.append(attn_out)
            # The inter-block stage prunes on the mask applied to *this*
            # block (the rows that did not act as queries), so it must run
            # before the mask is advanced to the one this block generated.
            keep_mask, compact = self.ffn_stage_plan(fmap_mask, x.shape[0])
            stream = None
            if plan is not None:
                # Ping-pong stream buffers: the stage writes block i's output
                # into stream i%2 while reading block i-1's from the other.
                stream = plan.buffer(f"stream{index % 2}", x.shape)
            x = layer.forward_ffn_stage(
                x,
                attn_out.output,
                keep_mask=keep_mask,
                compact=compact,
                plan=plan,
                out=stream,
            )
            attn_out.stats.sparse_ffn = compact
            fmap_mask = attn_out.fmap_mask_next
            generated_masks.append(fmap_mask)

        # The final memory escapes to the caller, so it must not alias the
        # arena (the next forward would overwrite it) — one copy per forward.
        return DEFAEncoderResult(
            memory=x.copy() if plan is not None else x,
            layer_stats=layer_stats,
            layer_outputs=layer_outputs,
            fmap_masks=generated_masks,
        )

    def forward_batched(
        self,
        src: np.ndarray,
        pos: np.ndarray,
        reference_points: np.ndarray,
        spatial_shapes: list[LevelShape],
        collect_details: bool | None = None,
    ) -> DEFAEncoderBatchResult:
        """Run all layers on an image batch, threading per-image FWP masks.

        ``src`` has shape ``(B, N_in, D)``; ``pos`` and ``reference_points``
        are shared across the batch (they only depend on the pyramid shapes).
        Per-image results are equivalent to calling :meth:`forward` on each
        image separately, but the tensor work runs batched.
        """
        x = np.asarray(src, dtype=FLOAT_DTYPE)
        if x.ndim != 3:
            raise ValueError("src must have shape (B, N_in, D)")
        if collect_details is None:
            collect_details = self.collect_details_default
        batch = x.shape[0]
        pos = np.asarray(pos, dtype=FLOAT_DTYPE)
        backend = self.resolved_backend()
        plan = (
            self.execution_plan(spatial_shapes, batch)
            if backend.fused and not collect_details
            else None
        )
        fmap_mask: np.ndarray | None = None
        per_image_stats: list[list[DEFALayerStats]] = [[] for _ in range(batch)]
        per_image_outputs: list[list[DEFAAttentionOutput]] = [[] for _ in range(batch)]
        per_image_masks: list[list[np.ndarray]] = [[] for _ in range(batch)]

        call_options = ExecutionOptions(kernel_backend=backend)
        for index, (layer, defa_attn) in enumerate(
            zip(self.encoder.layers, self.defa_layers)
        ):
            q_keep, q_compact = self.query_stage_plan(fmap_mask, x.shape[1], batched=True)
            query = self._build_query(x, pos, q_keep, q_compact, plan)
            attn_out: DEFAAttentionBatchOutput = defa_attn.forward_detailed(
                query,
                reference_points,
                x,
                spatial_shapes,
                fmap_mask=fmap_mask,
                options=call_options,
                plan=plan,
            )
            # Inter-block stage on the incoming (per-image) masks — before
            # the masks advance to the ones this block generated.
            keep_mask, compact = self.ffn_stage_plan(fmap_mask, x.shape[1], batched=True)
            stream = None
            if plan is not None:
                stream = plan.buffer(f"stream{index % 2}", x.shape)
            x = layer.forward_ffn_stage(
                x,
                attn_out.output,
                keep_mask=keep_mask,
                compact=compact,
                plan=plan,
                out=stream,
            )
            for b, image in enumerate(attn_out.images):
                image.stats.sparse_ffn = compact
                per_image_stats[b].append(image.stats)
                per_image_masks[b].append(image.fmap_mask_next)
                if collect_details:
                    per_image_outputs[b].append(image)
            fmap_mask = attn_out.fmap_mask_next

        if plan is not None:
            x = x.copy()  # the memory escapes; it must not alias the arena
        images = [
            DEFAEncoderResult(
                memory=x[b],
                layer_stats=per_image_stats[b],
                layer_outputs=per_image_outputs[b],
                fmap_masks=per_image_masks[b],
            )
            for b in range(batch)
        ]
        return DEFAEncoderBatchResult(memory=x, images=images)

    __call__ = forward


def run_baseline_encoder(
    encoder: DeformableEncoder,
    src: np.ndarray,
    pos: np.ndarray,
    reference_points: np.ndarray,
    spatial_shapes: list[LevelShape],
) -> np.ndarray:
    """Run the unmodified (FP32, unpruned) encoder and return its memory.

    Provided for symmetry with :class:`DEFAEncoderRunner` so that accuracy
    experiments compare the two through the same call shape.
    """
    return encoder.forward(src, pos, reference_points, spatial_shapes)
