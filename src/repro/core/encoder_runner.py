"""Run a deformable encoder with the DEFA algorithm applied to every block.

FWP operates *across* MSDeformAttn blocks: the fmap mask generated while
sampling in block *i* prunes the value projection and memory accesses of
block *i+1*.  :class:`DEFAEncoderRunner` wires that propagation through a
:class:`~repro.nn.encoder.DeformableEncoder`, reusing each layer's LayerNorms
and FFN unchanged (DEFA only touches the attention block).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DEFAConfig
from repro.core.flops import FlopsBreakdown
from repro.core.pipeline import (
    SPARSE_MODES,
    DEFAAttention,
    DEFAAttentionBatchOutput,
    DEFAAttentionOutput,
    DEFALayerStats,
)
from repro.nn.encoder import DeformableEncoder
from repro.nn.tensor_utils import FLOAT_DTYPE
from repro.utils.shapes import LevelShape


@dataclass
class DEFAEncoderResult:
    """Result of running an encoder under the DEFA algorithm."""

    memory: np.ndarray
    """Final encoder output of shape ``(N_in, D)``."""

    layer_stats: list[DEFALayerStats] = field(default_factory=list)
    """Per-layer pruning statistics."""

    layer_outputs: list[DEFAAttentionOutput] = field(default_factory=list)
    """Full per-layer attention outputs (present when ``collect_details=True``)."""

    @property
    def mean_point_reduction(self) -> float:
        """Average PAP sampling-point reduction over all blocks."""
        if not self.layer_stats:
            return 0.0
        return float(np.mean([s.point_reduction for s in self.layer_stats]))

    @property
    def mean_pixel_reduction(self) -> float:
        """Average FWP fmap-pixel reduction over the blocks that receive a mask.

        The first block never has an incoming mask, so the average is taken
        over blocks 2..L (the paper's 43 % figure refers to the pruned fmap
        accesses of masked blocks).
        """
        masked = [s.pixel_reduction for s in self.layer_stats[1:]]
        if not masked:
            return 0.0
        return float(np.mean(masked))

    @property
    def mean_flops_reduction(self) -> float:
        """Average FLOP reduction of the prunable operators over all blocks."""
        if not self.layer_stats:
            return 0.0
        merged = FlopsBreakdown()
        for stats in self.layer_stats:
            merged = merged.merged_with(stats.flops)
        return merged.reduction()


@dataclass
class DEFAEncoderBatchResult:
    """Result of running an encoder under DEFA on an image batch."""

    memory: np.ndarray
    """Final encoder output of shape ``(B, N_in, D)``."""

    images: list[DEFAEncoderResult] = field(default_factory=list)
    """Per-image results (stats and, optionally, detailed layer outputs)."""

    @property
    def batch_size(self) -> int:
        return len(self.images)


class DEFAEncoderRunner:
    """Execute a deformable encoder with DEFA applied to each attention block.

    Parameters
    ----------
    encoder:
        The full-precision encoder whose weights are reused.
    config:
        DEFA algorithm configuration.
    sparse_mode:
        Execution switch forwarded to every :class:`DEFAAttention` block (see
        :data:`repro.core.pipeline.SPARSE_MODES`): ``"auto"`` (default) runs
        the compacted gather/scatter kernels whenever the FWP/PAP reduction
        ratio makes them profitable, ``"dense"``/``"sparse"`` force one path.
    """

    def __init__(
        self, encoder: DeformableEncoder, config: DEFAConfig, sparse_mode: str = "auto"
    ) -> None:
        self.encoder = encoder
        self.config = config
        self.defa_layers = [
            DEFAAttention(layer.self_attn, config, sparse_mode=sparse_mode)
            for layer in encoder.layers
        ]

    @property
    def sparse_mode(self) -> str:
        return self.defa_layers[0].sparse_mode if self.defa_layers else "auto"

    @sparse_mode.setter
    def sparse_mode(self, mode: str) -> None:
        if mode not in SPARSE_MODES:
            raise ValueError(f"sparse_mode must be one of {SPARSE_MODES}, got {mode!r}")
        for layer in self.defa_layers:
            layer.sparse_mode = mode

    def forward(
        self,
        src: np.ndarray,
        pos: np.ndarray,
        reference_points: np.ndarray,
        spatial_shapes: list[LevelShape],
        collect_details: bool = False,
    ) -> DEFAEncoderResult | DEFAEncoderBatchResult:
        """Run all encoder layers, propagating the FWP mask block to block.

        ``src`` may be a single image ``(N_in, D)`` or a batch ``(B, N_in,
        D)``; batched inputs dispatch to :meth:`forward_batched` and return a
        :class:`DEFAEncoderBatchResult`.
        """
        x = np.asarray(src, dtype=FLOAT_DTYPE)
        if x.ndim == 3:
            return self.forward_batched(
                x, pos, reference_points, spatial_shapes, collect_details=collect_details
            )
        pos = np.asarray(pos, dtype=FLOAT_DTYPE)
        fmap_mask: np.ndarray | None = None
        layer_stats: list[DEFALayerStats] = []
        layer_outputs: list[DEFAAttentionOutput] = []

        for layer, defa_attn in zip(self.encoder.layers, self.defa_layers):
            query = x + pos
            attn_out = defa_attn.forward_detailed(
                query, reference_points, x, spatial_shapes, fmap_mask=fmap_mask
            )
            layer_stats.append(attn_out.stats)
            if collect_details:
                layer_outputs.append(attn_out)
            fmap_mask = attn_out.fmap_mask_next
            x = layer.norm1(x + attn_out.output)
            x = layer.norm2(x + layer.ffn(x))

        return DEFAEncoderResult(memory=x, layer_stats=layer_stats, layer_outputs=layer_outputs)

    def forward_batched(
        self,
        src: np.ndarray,
        pos: np.ndarray,
        reference_points: np.ndarray,
        spatial_shapes: list[LevelShape],
        collect_details: bool = False,
    ) -> DEFAEncoderBatchResult:
        """Run all layers on an image batch, threading per-image FWP masks.

        ``src`` has shape ``(B, N_in, D)``; ``pos`` and ``reference_points``
        are shared across the batch (they only depend on the pyramid shapes).
        Per-image results are equivalent to calling :meth:`forward` on each
        image separately, but the tensor work runs batched.
        """
        x = np.asarray(src, dtype=FLOAT_DTYPE)
        if x.ndim != 3:
            raise ValueError("src must have shape (B, N_in, D)")
        batch = x.shape[0]
        pos = np.asarray(pos, dtype=FLOAT_DTYPE)
        fmap_mask: np.ndarray | None = None
        per_image_stats: list[list[DEFALayerStats]] = [[] for _ in range(batch)]
        per_image_outputs: list[list[DEFAAttentionOutput]] = [[] for _ in range(batch)]

        for layer, defa_attn in zip(self.encoder.layers, self.defa_layers):
            query = x + pos
            attn_out: DEFAAttentionBatchOutput = defa_attn.forward_detailed(
                query, reference_points, x, spatial_shapes, fmap_mask=fmap_mask
            )
            for b, image in enumerate(attn_out.images):
                per_image_stats[b].append(image.stats)
                if collect_details:
                    per_image_outputs[b].append(image)
            fmap_mask = attn_out.fmap_mask_next
            x = layer.norm1(x + attn_out.output)
            x = layer.norm2(x + layer.ffn(x))

        images = [
            DEFAEncoderResult(
                memory=x[b],
                layer_stats=per_image_stats[b],
                layer_outputs=per_image_outputs[b],
            )
            for b in range(batch)
        ]
        return DEFAEncoderBatchResult(memory=x, images=images)

    __call__ = forward


def run_baseline_encoder(
    encoder: DeformableEncoder,
    src: np.ndarray,
    pos: np.ndarray,
    reference_points: np.ndarray,
    spatial_shapes: list[LevelShape],
) -> np.ndarray:
    """Run the unmodified (FP32, unpruned) encoder and return its memory.

    Provided for symmetry with :class:`DEFAEncoderRunner` so that accuracy
    experiments compare the two through the same call shape.
    """
    return encoder.forward(src, pos, reference_points, spatial_shapes)
