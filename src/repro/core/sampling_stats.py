"""Sampled-frequency statistics of the grid-sampling stage.

FWP (Sec. 3.1) is driven by how often every fmap pixel is touched by bilinear
interpolation within one MSDeformAttn block: each of the four neighbours of a
(kept) sampling point counts one access.  This module computes that frequency
map from a :class:`~repro.nn.grid_sample.SamplingTrace` and provides the
distribution statistics quoted by the paper (a small fraction of pixels
receives most of the accesses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.grid_sample import BatchedSamplingTrace, CompactSamplingTrace, SamplingTrace
from repro.utils.shapes import LevelShape, level_start_indices, total_pixels


def sampled_frequency(
    trace: SamplingTrace,
    point_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Per-pixel sampled frequency over the flattened multi-scale token axis.

    Parameters
    ----------
    trace:
        Sampling trace of one MSDeformAttn block.
    point_mask:
        Optional boolean ``(N_q, N_h, N_l, N_p)`` keep-mask (PAP); neighbours
        of pruned points are not counted, matching the accelerator dataflow in
        which pruned points are never sampled.

    Returns
    -------
    ``int64`` array of length ``N_in`` with the access count of every pixel.
    """
    n_in = total_pixels(trace.spatial_shapes)
    freq = np.zeros(n_in, dtype=np.int64)
    valid = trace.valid
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != trace.valid.shape[:-1]:
            raise ValueError("point_mask shape must match trace points")
        valid = valid & point_mask[..., None]
    indices = trace.flat_indices[valid]
    np.add.at(freq, indices, 1)
    return freq


def sampled_frequency_batched(
    trace: BatchedSamplingTrace,
    point_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Per-image sampled frequencies of a whole batch, shape ``(B, N_in)``.

    Equivalent to calling :func:`sampled_frequency` on every
    ``trace.image(b)`` but computed with a single ``np.bincount`` over
    batch-offset token indices — much faster than one ``np.add.at`` per
    image (the counts are integers, so the results are exactly equal).
    """
    n_in = total_pixels(trace.spatial_shapes)
    batch = trace.batch_size
    valid = trace.valid
    if point_mask is not None:
        point_mask = np.asarray(point_mask, dtype=bool)
        if point_mask.shape != valid.shape[:-1]:
            raise ValueError("point_mask shape must match trace points")
        valid = valid & point_mask[..., None]
    offsets = (np.arange(batch, dtype=np.int64) * n_in).reshape(
        (batch,) + (1,) * (trace.flat_indices.ndim - 1)
    )
    indices = (trace.flat_indices + offsets)[valid]
    counts = np.bincount(indices, minlength=batch * n_in)
    return counts.reshape(batch, n_in).astype(np.int64)


def sampled_frequency_compact(trace: CompactSamplingTrace) -> np.ndarray:
    """Per-pixel sampled frequency from a single-image compacted trace.

    The PAP/query mask is already folded into the trace (only kept points
    carry rows), so there is no ``point_mask`` argument.  The counts equal
    :func:`sampled_frequency` on the dense trace with the same mask exactly
    (both count the in-bounds neighbours of the kept points).
    """
    if trace.batch_size != 1:
        raise ValueError("use sampled_frequency_compact_batched for batched traces")
    n_in = total_pixels(trace.spatial_shapes)
    indices = trace.flat_indices[trace.valid]
    return np.bincount(indices, minlength=n_in).astype(np.int64)


def sampled_frequency_compact_batched(trace: CompactSamplingTrace) -> np.ndarray:
    """Per-image sampled frequencies from a batched compacted trace, ``(B, N_in)``.

    Exactly equal to :func:`sampled_frequency_compact` on every
    ``trace.image(b)``; computed with one ``np.bincount`` over batch-offset
    token indices.
    """
    n_in = total_pixels(trace.spatial_shapes)
    batch = trace.batch_size
    image = trace.kept // trace.points_per_image  # (K,) image id of each kept point
    offsets = np.broadcast_to((image * n_in)[:, None], trace.valid.shape)
    indices = (trace.flat_indices + offsets)[trace.valid]
    counts = np.bincount(indices, minlength=batch * n_in)
    return counts.reshape(batch, n_in).astype(np.int64)


def split_frequency_by_level(
    frequency: np.ndarray, spatial_shapes: list[LevelShape]
) -> list[np.ndarray]:
    """Split a flat frequency array into per-level ``(H_l, W_l)`` maps."""
    frequency = np.asarray(frequency)
    if frequency.shape[0] != total_pixels(spatial_shapes):
        raise ValueError("frequency length does not match spatial shapes")
    starts = level_start_indices(spatial_shapes)
    maps = []
    for lvl, shape in enumerate(spatial_shapes):
        chunk = frequency[starts[lvl] : starts[lvl] + shape.num_pixels]
        maps.append(chunk.reshape(shape.height, shape.width))
    return maps


@dataclass(frozen=True)
class FrequencyStats:
    """Summary statistics of a sampled-frequency distribution."""

    total_accesses: int
    """Total number of pixel accesses (4x the number of in-bounds samples)."""

    num_pixels: int
    """Number of fmap pixels."""

    zero_fraction: float
    """Fraction of pixels never accessed."""

    mean: float
    """Mean accesses per pixel."""

    gini: float
    """Gini coefficient of the access distribution (0 = uniform, 1 = maximally skewed)."""

    top10_share: float
    """Share of all accesses going to the most-accessed 10 % of pixels."""


def frequency_stats(frequency: np.ndarray) -> FrequencyStats:
    """Compute :class:`FrequencyStats` for a (flat or per-level) frequency array."""
    freq = np.asarray(frequency, dtype=np.float64).ravel()
    if freq.size == 0:
        raise ValueError("frequency array must not be empty")
    total = float(freq.sum())
    mean = total / freq.size
    zero_fraction = float(np.mean(freq == 0))
    sorted_freq = np.sort(freq)
    if total > 0:
        cum = np.cumsum(sorted_freq)
        # Gini coefficient via the Lorenz curve.
        lorenz = cum / total
        gini = float(1.0 - 2.0 * np.trapezoid(lorenz, dx=1.0 / freq.size))
        top10_count = max(1, int(round(0.1 * freq.size)))
        top10_share = float(sorted_freq[-top10_count:].sum() / total)
    else:
        gini = 0.0
        top10_share = 0.0
    return FrequencyStats(
        total_accesses=int(total),
        num_pixels=int(freq.size),
        zero_fraction=zero_fraction,
        mean=mean,
        gini=gini,
        top10_share=top10_share,
    )
