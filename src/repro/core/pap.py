"""Probability-aware point pruning (PAP, Sec. 3.2).

After the softmax, the attention probabilities of one (query, head) pair sum
to one and their differences are exponentially amplified, so most of the
``N_l * N_p`` points carry a near-zero probability.  PAP thresholds those
probabilities: points below the threshold are recorded in a bit mask and their
offset generation, grid sampling and aggregation are skipped in the current
block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.plan import ExecutionPlan
from repro.nn.tensor_utils import FLOAT_DTYPE


@dataclass
class PAPResult:
    """Outcome of one PAP mask computation.

    Attributes
    ----------
    point_mask:
        Boolean ``(N_q, N_h, N_l, N_p)`` array; ``True`` marks points that are
        kept.
    attention_weights:
        The attention probabilities actually used downstream (pruned entries
        zeroed; optionally re-normalized).
    threshold:
        The probability threshold that was applied.
    """

    point_mask: np.ndarray
    attention_weights: np.ndarray
    threshold: float

    @property
    def num_points(self) -> int:
        """Total number of sampling points before pruning."""
        return int(self.point_mask.size)

    @property
    def num_kept(self) -> int:
        """Number of points kept."""
        return int(np.count_nonzero(self.point_mask))

    @property
    def keep_fraction(self) -> float:
        """Fraction of sampling points kept."""
        return self.num_kept / self.num_points if self.num_points else 1.0

    @property
    def pruned_fraction(self) -> float:
        """Fraction of sampling points removed (the quantity in Fig. 6b)."""
        return 1.0 - self.keep_fraction

    @property
    def kept_probability_mass(self) -> float:
        """Average attention probability mass retained per (query, head)."""
        mask = self.point_mask
        weights = np.asarray(self.attention_weights, dtype=np.float64)
        kept = np.where(mask, weights, 0.0)
        per_pair = kept.sum(axis=(-2, -1))
        return float(per_pair.mean()) if per_pair.size else 1.0


def compute_point_mask(
    attention_weights: np.ndarray,
    threshold: float,
    keep_top1: bool = True,
    renormalize: bool = False,
    plan: ExecutionPlan | None = None,
) -> PAPResult:
    """Apply PAP to softmax attention probabilities.

    Parameters
    ----------
    attention_weights:
        ``(N_q, N_h, N_l, N_p)`` softmax probabilities (each (query, head)
        slice sums to one).
    threshold:
        Points with probability strictly below this value are pruned.
    keep_top1:
        Always keep the highest-probability point of every (query, head),
        which guards against configurations where the threshold exceeds the
        maximum probability.
    renormalize:
        If ``True``, re-normalize the surviving probabilities of every
        (query, head) to sum to one.  The paper keeps the raw values.
    plan:
        Optional :class:`~repro.kernels.ExecutionPlan` arena.  When given,
        the mask and the pruned weights live in plan buffers (``pap.mask`` /
        ``pap.weights``), so steady-state forwards allocate nothing here.
        The returned :class:`PAPResult` then aliases the arena and is valid
        only until the next same-shape PAP computation on the same plan —
        callers that must retain it (detail collection) pass ``plan=None``.
        Results are bit-identical either way (same ufuncs, ``out=`` only).
    """
    attention = np.asarray(attention_weights, dtype=FLOAT_DTYPE)
    if attention.ndim != 4:
        raise ValueError("attention_weights must have shape (N_q, N_h, N_l, N_p)")
    if not 0 <= threshold < 1:
        raise ValueError("threshold must be in [0, 1)")

    if plan is not None:
        mask = np.greater_equal(
            attention, threshold, out=plan.buffer("pap.mask", attention.shape, bool)
        )
    else:
        mask = attention >= threshold
    if keep_top1:
        n_q, n_h, n_l, n_p = attention.shape
        flat = attention.reshape(n_q, n_h, n_l * n_p)
        top = np.argmax(flat, axis=-1)
        q_idx, h_idx = np.meshgrid(np.arange(n_q), np.arange(n_h), indexing="ij")
        flat_mask = mask.reshape(n_q, n_h, n_l * n_p)
        flat_mask[q_idx, h_idx, top] = True
        mask = flat_mask.reshape(n_q, n_h, n_l, n_p)

    if plan is not None:
        # np.where(mask, attention, 0.0) without the temporary: zeros + masked
        # copy writes the identical float32 values into the arena buffer.
        pruned_weights = plan.zeros("pap.weights", attention.shape, FLOAT_DTYPE)
        np.copyto(pruned_weights, attention, where=mask)
    else:
        pruned_weights = np.where(mask, attention, 0.0).astype(FLOAT_DTYPE)
    if renormalize:
        sums = pruned_weights.sum(axis=(-2, -1), keepdims=True)
        if plan is not None:
            np.divide(pruned_weights, np.maximum(sums, 1e-12), out=pruned_weights)
        else:
            pruned_weights = (pruned_weights / np.maximum(sums, 1e-12)).astype(
                FLOAT_DTYPE
            )
    return PAPResult(point_mask=mask, attention_weights=pruned_weights, threshold=float(threshold))


def point_probability_histogram(
    attention_weights: np.ndarray, num_bins: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of attention probabilities (used to motivate PAP).

    Returns ``(bin_edges, counts)`` over ``[0, 1]``; the paper observes that
    over 80 % of the probabilities in Deformable DETR are near zero.
    """
    attention = np.asarray(attention_weights, dtype=np.float64).ravel()
    counts, edges = np.histogram(attention, bins=num_bins, range=(0.0, 1.0))
    return edges, counts
