"""Deformable-convolution workload comparison (Sec. 2.2).

The paper motivates DEFA by contrasting the grid-sampling workload of
MSDeformAttn with that of deformable convolution (DeformConv): the
multi-scale fmaps are ~21.3x larger than DeformConv's single-scale fmap and
each head samples ``N_l * N_p`` times more points.  Prior DeformConv
accelerators (CoDeNet, etc.) therefore cannot be applied directly.  This
module quantifies both ratios for any workload specification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.shapes import make_level_shapes
from repro.workloads.specs import WorkloadSpec


@dataclass(frozen=True)
class DeformConvWorkload:
    """Grid-sampling workload of a deformable convolution layer.

    DeformConv samples a ``kernel_size x kernel_size`` grid (typically 3x3 =
    9 points) per output pixel on a single-scale feature map.
    """

    feature_height: int
    feature_width: int
    channels: int
    kernel_size: int = 3

    @property
    def num_pixels(self) -> int:
        """Pixels of the single-scale feature map."""
        return self.feature_height * self.feature_width

    @property
    def points_per_output(self) -> int:
        """Sampling points per output pixel (the deformable kernel taps)."""
        return self.kernel_size * self.kernel_size

    @property
    def total_sampling_points(self) -> int:
        """Sampling points of the whole layer."""
        return self.num_pixels * self.points_per_output

    @staticmethod
    def matching_single_scale(spec: WorkloadSpec, stride: int = 32, kernel_size: int = 3) -> "DeformConvWorkload":
        """DeformConv workload on the single-scale fmap a CNN head would use.

        DeformConv-based detectors operate on one backbone level (stride 32 in
        the paper's comparison); this builds that workload for the same input
        image as *spec*.
        """
        shape = make_level_shapes(spec.image_height, spec.image_width, (stride,))[0]
        return DeformConvWorkload(
            feature_height=shape.height,
            feature_width=shape.width,
            channels=spec.model.d_model,
            kernel_size=kernel_size,
        )


def fmap_size_ratio(spec: WorkloadSpec, deform_conv: DeformConvWorkload) -> float:
    """Multi-scale fmap pixels of MSDeformAttn over DeformConv's single-scale pixels.

    The paper quotes ~21.3x for the COCO resolution with strides 8/16/32/64
    versus a stride-32 single-scale map.
    """
    return spec.num_tokens / deform_conv.num_pixels


def sampling_point_ratio_per_head(spec: WorkloadSpec, deform_conv: DeformConvWorkload) -> float:
    """Per-query sampling points of one MSDeformAttn head over DeformConv's taps.

    MSDeformAttn samples ``N_l * N_p`` points per head and query, compared to
    the ``k x k`` taps of DeformConv.
    """
    per_head = spec.model.num_levels * spec.model.num_points
    return per_head / deform_conv.points_per_output
