"""Comparison baselines: GPUs, Faster R-CNN, DeformConv and published ASICs."""

from repro.baselines.gpu import GPUCostModel, GPUSpec, RTX_2080TI, RTX_3090TI
from repro.baselines.faster_rcnn import FASTER_RCNN
from repro.baselines.asic import ASICPlatform, ELSA, SPATTEN, BESAPU, published_platforms
from repro.baselines.deform_conv import DeformConvWorkload

__all__ = [
    "GPUCostModel",
    "GPUSpec",
    "RTX_2080TI",
    "RTX_3090TI",
    "FASTER_RCNN",
    "ASICPlatform",
    "ELSA",
    "SPATTEN",
    "BESAPU",
    "published_platforms",
    "DeformConvWorkload",
]
