"""Faster R-CNN reference point.

The paper uses Faster R-CNN only as a horizontal reference: a similar-workload
CNN detector (180 GFLOPs, > 25 fps on the same GPU) with AP = 42 on COCO,
against which the deformable transformers' accuracy advantage (3.5 - 7.4 AP)
is measured in Fig. 6(a).  The constants below reproduce that reference line.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FasterRCNNReference:
    """Published characteristics of the Faster R-CNN baseline."""

    name: str = "Faster R-CNN (ResNet-50 FPN)"
    coco_ap: float = 42.0
    end_to_end_gflops: float = 180.0
    fps_rtx3090ti: float = 25.0

    def ap_margin(self, other_ap: float) -> float:
        """AP advantage of another detector over Faster R-CNN."""
        return other_ap - self.coco_ap


FASTER_RCNN = FasterRCNNReference()
"""Singleton reference instance used by the experiments."""
