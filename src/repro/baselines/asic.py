"""Published attention-accelerator platforms compared in Table 1.

The paper compares DEFA against three state-of-the-art attention accelerators:
ELSA (ISCA'21), SpAtten (HPCA'21) and BESAPU (JSSC'22).  Their rows in Table 1
are taken from the respective publications; only DEFA's own row is produced by
the simulator.  This module records those published rows and provides the
energy-efficiency comparison the paper reports (2.2 - 3.7x).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ASICPlatform:
    """One row of Table 1."""

    name: str
    venue: str
    function: str
    technology_nm: int
    area_mm2: float
    frequency_mhz: float
    precision: str
    power_mw: float
    throughput_gops: float

    @property
    def energy_efficiency_gops_w(self) -> float:
        """Energy efficiency in GOPS/W (throughput over power)."""
        if self.power_mw == 0:
            return 0.0
        return self.throughput_gops / (self.power_mw / 1e3)

    def normalized_to_technology(self, target_nm: int) -> "ASICPlatform":
        """First-order technology scaling of power (linear in feature size).

        Used only for sanity checks — the paper compares the raw published
        numbers, which is also what the Table 1 experiment reports.
        """
        scale = self.technology_nm / target_nm
        return ASICPlatform(
            name=self.name,
            venue=self.venue,
            function=self.function,
            technology_nm=target_nm,
            area_mm2=self.area_mm2 / scale**2,
            frequency_mhz=self.frequency_mhz,
            precision=self.precision,
            power_mw=self.power_mw / scale,
            throughput_gops=self.throughput_gops,
        )


ELSA = ASICPlatform(
    name="ELSA",
    venue="ISCA'21",
    function="Attention",
    technology_nm=40,
    area_mm2=1.26,
    frequency_mhz=1000.0,
    precision="INT9",
    power_mw=969.4,
    throughput_gops=1088.0,
)

SPATTEN = ASICPlatform(
    name="SpAtten",
    venue="HPCA'21",
    function="Attention",
    technology_nm=40,
    area_mm2=1.55,
    frequency_mhz=1000.0,
    precision="INT12",
    power_mw=294.0,
    throughput_gops=360.0,
)

BESAPU = ASICPlatform(
    name="BESAPU",
    venue="JSSC'22",
    function="Attention",
    technology_nm=28,
    area_mm2=6.82,
    frequency_mhz=500.0,
    precision="INT12",
    power_mw=272.8,
    throughput_gops=522.0,
)

DEFA_PUBLISHED = ASICPlatform(
    name="DEFA (published)",
    venue="DAC'24",
    function="DeformAttn",
    technology_nm=40,
    area_mm2=2.63,
    frequency_mhz=400.0,
    precision="INT12",
    power_mw=99.8,
    throughput_gops=418.0,
)


def published_platforms() -> list[ASICPlatform]:
    """The three comparison platforms in the paper's column order."""
    return [ELSA, SPATTEN, BESAPU]


def energy_efficiency_improvements(defa: ASICPlatform) -> dict[str, float]:
    """DEFA's energy-efficiency advantage over each published platform."""
    return {
        platform.name: defa.energy_efficiency_gops_w / platform.energy_efficiency_gops_w
        for platform in published_platforms()
    }
