"""GPU cost model for the MSDeformAttn workload (RTX 2080Ti / 3090Ti).

The paper compares DEFA against the CUDA implementation of MSDeformAttn on an
RTX 2080Ti and an RTX 3090Ti.  No GPU is available offline, so this module
provides a roofline-style cost model with three regimes:

* dense projections are compute-bound at a GPU- and size-dependent GEMM
  efficiency (medium-sized encoder GEMMs do not saturate a large GPU, which is
  why the 3090Ti's efficiency is lower than the 2080Ti's),
* element-wise stages (softmax, aggregation) are bandwidth-bound,
* the grid-sampling gather is *transaction-bound*: every bilinear neighbour
  access touches a different cache line, so throughput is set by the number of
  memory transactions the GPU can keep in flight rather than by peak
  bandwidth — this is the irregular-access bottleneck the paper identifies.

The efficiency constants are calibrated against the published evidence: the
MSGS + aggregation share of MSDeformAttn latency (Fig. 1b, 60-64 %) and the
relative speedups of Fig. 9.  They are exposed as :class:`GPUSpec` fields so
the sensitivity of every conclusion to the GPU model can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.specs import WorkloadSpec

FP32_BYTES = 4


@dataclass(frozen=True)
class GPUSpec:
    """Performance-relevant parameters of one GPU."""

    name: str
    peak_fp32_tflops: float
    bandwidth_gbs: float
    board_power_w: float
    mm_efficiency: float
    """Fraction of peak FLOPs achieved on the encoder's GEMM shapes."""

    elementwise_efficiency: float = 0.5
    """Fraction of peak bandwidth achieved on element-wise kernels."""

    gather_transactions_per_s: float = 1.0e10
    """Irregular memory transactions the GPU sustains per second."""

    transaction_bytes: int = 64
    """Granularity of one gather transaction (a sector / half cache line)."""

    kernel_overhead_s: float = 1.5e-4
    """Fixed per-layer overhead (kernel launches, tensor reshapes)."""


RTX_2080TI = GPUSpec(
    name="RTX 2080Ti",
    peak_fp32_tflops=13.5,
    bandwidth_gbs=616.0,
    board_power_w=250.0,
    mm_efficiency=0.55,
    gather_transactions_per_s=8.5e9,
)

RTX_3090TI = GPUSpec(
    name="RTX 3090Ti",
    peak_fp32_tflops=40.0,
    bandwidth_gbs=1008.0,
    board_power_w=450.0,
    mm_efficiency=0.17,
    gather_transactions_per_s=1.0e10,
)


@dataclass(frozen=True)
class GPULayerLatency:
    """Per-operator latency of one MSDeformAttn layer on a GPU (seconds)."""

    value_proj_s: float
    sampling_offsets_s: float
    attention_weights_s: float
    output_proj_s: float
    softmax_s: float
    msgs_s: float
    aggregation_s: float
    overhead_s: float

    @property
    def msgs_aggregation_s(self) -> float:
        """Latency of the MSGS + aggregation stage (the Fig. 1b numerator)."""
        return self.msgs_s + self.aggregation_s

    @property
    def others_s(self) -> float:
        """Latency of everything else in the MSDeformAttn layer."""
        return (
            self.value_proj_s
            + self.sampling_offsets_s
            + self.attention_weights_s
            + self.output_proj_s
            + self.softmax_s
            + self.overhead_s
        )

    @property
    def total_s(self) -> float:
        return self.msgs_aggregation_s + self.others_s

    @property
    def msgs_fraction(self) -> float:
        """Fraction of the layer latency spent in MSGS + aggregation (Fig. 1b)."""
        return self.msgs_aggregation_s / self.total_s if self.total_s > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """Per-operator latencies as a plain dict (for tables/serialization)."""
        return {
            "value_proj": self.value_proj_s,
            "sampling_offsets": self.sampling_offsets_s,
            "attention_weights": self.attention_weights_s,
            "output_proj": self.output_proj_s,
            "softmax": self.softmax_s,
            "msgs": self.msgs_s,
            "aggregation": self.aggregation_s,
            "overhead": self.overhead_s,
        }


class GPUCostModel:
    """Latency / energy model of MSDeformAttn encoder layers on one GPU."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------- operators

    def _gemm_time(self, flops: float) -> float:
        return flops / (self.spec.peak_fp32_tflops * 1e12 * self.spec.mm_efficiency)

    def _elementwise_time(self, num_bytes: float) -> float:
        return num_bytes / (self.spec.bandwidth_gbs * 1e9 * self.spec.elementwise_efficiency)

    def _gather_time(self, num_accesses: float, bytes_per_access: float) -> float:
        transactions = num_accesses * max(
            1.0, float(np.ceil(bytes_per_access / self.spec.transaction_bytes))
        )
        return transactions / self.spec.gather_transactions_per_s

    # ----------------------------------------------------------------- layer

    def msdeform_layer_latency(self, workload: WorkloadSpec) -> GPULayerLatency:
        """Latency breakdown of one dense MSDeformAttn layer."""
        flops = workload.layer_flops_breakdown()
        d_head = workload.d_head
        points_total = workload.num_sampling_points_per_layer
        n_q = workload.num_queries
        points_per_query = workload.num_sampling_points_per_query

        softmax_bytes = 2 * n_q * points_per_query * FP32_BYTES
        aggregation_bytes = points_total * d_head * FP32_BYTES
        return GPULayerLatency(
            value_proj_s=self._gemm_time(flops["value_proj"]),
            sampling_offsets_s=self._gemm_time(flops["sampling_offsets"]),
            attention_weights_s=self._gemm_time(flops["attention_weights"]),
            output_proj_s=self._gemm_time(flops["output_proj"]),
            softmax_s=self._elementwise_time(softmax_bytes),
            msgs_s=self._gather_time(points_total * 4, d_head * FP32_BYTES),
            aggregation_s=self._elementwise_time(aggregation_bytes),
            overhead_s=self.spec.kernel_overhead_s,
        )

    def encoder_attention_latency(self, workload: WorkloadSpec) -> float:
        """Latency of all MSDeformAttn layers of the workload's encoder (seconds)."""
        return self.msdeform_layer_latency(workload).total_s * workload.model.num_encoder_layers

    def encoder_attention_energy(self, workload: WorkloadSpec) -> float:
        """Energy of all MSDeformAttn layers (joules), at the board power."""
        return self.encoder_attention_latency(workload) * self.spec.board_power_w

    def effective_throughput_tops(self, workload: WorkloadSpec) -> float:
        """Achieved (dense-work / time) throughput on the MSDeformAttn layers."""
        time = self.encoder_attention_latency(workload)
        if time == 0:
            return 0.0
        return workload.encoder_attention_flops() / time / 1e12
