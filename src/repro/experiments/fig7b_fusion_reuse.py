"""Fig. 7(b): energy savings of fine-grained operator fusion and fmap reuse.

The paper reports, as fractions of the MSGS memory-access energy:

* operator fusion (keeping the sampling values inside the PE array instead of
  spilling them through SRAM/DRAM) saves 73.3 % of DRAM energy and 15.9 % of
  SRAM energy;
* fmap reuse (keeping the overlapping bounded-range pixels on chip) saves
  88.2 % of DRAM energy and 22.7 % of SRAM energy.

The experiment evaluates the DEFA energy model with each optimization toggled
off and on, using the measured sampling statistics of the benchmark workloads.
"""

from __future__ import annotations

from repro.core.config import DEFAConfig
from repro.experiments.common import ExperimentResult, register_experiment
from repro.experiments.workload_runs import prepare_run, run_defa_cached
from repro.hardware.config import HardwareConfig
from repro.hardware.simulator import DEFASimulator
from repro.nn.models import MODEL_NAMES

PAPER_SAVINGS = {
    "op_fusion": {"dram": 0.733, "sram": 0.159},
    "fmap_reuse": {"dram": 0.882, "sram": 0.227},
}
"""Published Fig. 7(b) savings (fractions of MSGS memory-access energy)."""


def _msgs_memory_energy(simulator: DEFASimulator, workloads) -> tuple[float, float]:
    """Total (DRAM, SRAM) energy of the MSGS stage over all blocks."""
    dram = sram = 0.0
    for workload in workloads:
        report = simulator.simulate_layer(workload)
        energy = simulator.energy_model.msgs_memory_energy(report.schedule)
        dram += energy.dram_j
        sram += energy.sram_j
    return dram, sram


@register_experiment("fig7b")
def run(
    scale: str = "small",
    config: DEFAConfig | None = None,
    hardware: HardwareConfig | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 7(b) energy-saving bars."""
    config = config or DEFAConfig.paper_default()
    hardware = hardware or HardwareConfig()

    # Use the averaged sampling statistics of the three benchmarks.
    all_workloads = []
    for name in MODEL_NAMES:
        run_ctx = prepare_run(name, scale=scale, seed=seed)
        result = run_defa_cached(run_ctx, config, name, scale, seed=seed)
        sim = DEFASimulator(hardware)
        all_workloads.extend(sim.workloads_from_encoder_result(result))

    def savings(optimization: str) -> dict[str, float]:
        if optimization == "op_fusion":
            without = DEFASimulator(hardware, fuse_msgs_aggregation=False, fmap_reuse=True)
            with_opt = DEFASimulator(hardware, fuse_msgs_aggregation=True, fmap_reuse=True)
        elif optimization == "fmap_reuse":
            without = DEFASimulator(hardware, fuse_msgs_aggregation=True, fmap_reuse=False)
            with_opt = DEFASimulator(hardware, fuse_msgs_aggregation=True, fmap_reuse=True)
        else:
            raise ValueError(f"unknown optimization {optimization!r}")
        dram_without, sram_without = _msgs_memory_energy(without, all_workloads)
        dram_with, sram_with = _msgs_memory_energy(with_opt, all_workloads)
        baseline_total = dram_without + sram_without
        return {
            "dram": (dram_without - dram_with) / baseline_total if baseline_total else 0.0,
            "sram": (sram_without - sram_with) / baseline_total if baseline_total else 0.0,
        }

    headers = [
        "optimization",
        "DRAM saving % (ours)",
        "DRAM saving % (paper)",
        "SRAM saving % (ours)",
        "SRAM saving % (paper)",
    ]
    rows = []
    data = {}
    for optimization, label in [("op_fusion", "Op Fusion"), ("fmap_reuse", "Fmap Reuse")]:
        measured = savings(optimization)
        paper = PAPER_SAVINGS[optimization]
        rows.append(
            [
                label,
                100.0 * measured["dram"],
                100.0 * paper["dram"],
                100.0 * measured["sram"],
                100.0 * paper["sram"],
            ]
        )
        data[optimization] = {"measured": measured, "paper": paper}

    return ExperimentResult(
        experiment_id="fig7b",
        title="Fig. 7(b) - energy savings of operator fusion and fmap reuse",
        headers=headers,
        rows=rows,
        notes=[
            "Savings are expressed as a fraction of the MSGS memory-access energy of the "
            "configuration without the respective optimization (the paper's convention).",
            f"workload scale: {scale}; statistics averaged over {len(MODEL_NAMES)} benchmarks.",
        ],
        data=data,
    )
