"""Fig. 1(b): MSDeformAttn latency breakdown on the GPU.

The paper profiles Deformable DETR, DN-DETR and DINO on an RTX 3090Ti and
finds that MSGS + aggregation account for 60-64 % of the MSDeformAttn latency
while contributing only ~3 % of its computation.  This experiment reproduces
the breakdown from the GPU cost model at the paper's input resolution.
"""

from __future__ import annotations

from repro.baselines.gpu import GPUSpec, RTX_3090TI
from repro.experiments.common import ExperimentResult, register_experiment
from repro.eval.profiler import profile_gpu_latency_breakdown
from repro.nn.models import MODEL_NAMES, get_model_config
from repro.workloads.specs import get_workload


@register_experiment("fig1b")
def run(scale: str = "paper", gpu: GPUSpec = RTX_3090TI) -> ExperimentResult:
    """Regenerate the Fig. 1(b) latency-breakdown series."""
    headers = [
        "model",
        "msgs+agg % (ours)",
        "msgs+agg % (paper)",
        "others % (ours)",
        "msgs+agg FLOP %",
        "layer latency (ms)",
    ]
    rows = []
    data = {}
    for name in MODEL_NAMES:
        spec = get_workload(name, scale)
        breakdown = profile_gpu_latency_breakdown(spec, gpu)
        published = get_model_config(name).published.msgs_latency_fraction
        rows.append(
            [
                spec.model.display_name,
                100.0 * breakdown.msgs_aggregation_fraction,
                100.0 * published,
                100.0 * breakdown.others_fraction,
                100.0 * breakdown.msgs_flops_fraction,
                1e3 * breakdown.layer_latency_s,
            ]
        )
        data[name] = {
            "msgs_fraction": breakdown.msgs_aggregation_fraction,
            "published_fraction": published,
            "layer_latency_s": breakdown.layer_latency_s,
        }
    return ExperimentResult(
        experiment_id="fig1b",
        title=f"Fig. 1(b) - MSDeformAttn latency breakdown on {gpu.name}",
        headers=headers,
        rows=rows,
        notes=[
            "GPU latencies come from the calibrated roofline model "
            "(see repro.baselines.gpu); absolute times are modelled, the split is the result."
        ],
        data=data,
    )
