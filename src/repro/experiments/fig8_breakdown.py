"""Fig. 8: area and energy breakdown of the DEFA accelerator.

The paper reports that the on-chip SRAM occupies ~72 % of the 2.63 mm² area
(PE + softmax ~23 %, others ~5 %) and that DRAM access dominates the energy
(~93 %, SRAM ~5 %, logic ~2 %).  This experiment evaluates the area model and
the energy model of the base configuration on the Deformable DETR workload.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, register_experiment
from repro.hardware.area import area_model
from repro.hardware.config import HardwareConfig
from repro.hardware.simulator import DEFASimulator
from repro.workloads.specs import get_workload

PAPER_AREA_FRACTIONS = {"sram": 0.72, "pe_softmax": 0.23, "others": 0.05}
PAPER_ENERGY_FRACTIONS = {"dram": 0.93, "sram": 0.05, "logic": 0.02}
PAPER_TOTAL_AREA_MM2 = 2.63


@register_experiment("fig8")
def run(
    model_name: str = "deformable_detr",
    scale: str = "paper",
    hardware: HardwareConfig | None = None,
    point_keep_ratio: float = 0.16,
    pixel_keep_ratio: float = 0.57,
) -> ExperimentResult:
    """Regenerate the Fig. 8 area and energy breakdowns."""
    hardware = hardware or HardwareConfig()
    spec = get_workload(model_name, scale)

    area = area_model(hardware)
    area_fracs = area.fractions()

    simulator = DEFASimulator(hardware)
    report = simulator.simulate_from_ratios(
        spec, point_keep_ratio=point_keep_ratio, pixel_keep_ratio=pixel_keep_ratio
    )
    energy_fracs = report.energy.fractions()

    headers = ["component", "ours %", "paper %"]
    rows = [
        ["area: SRAM", 100.0 * area_fracs["sram"], 100.0 * PAPER_AREA_FRACTIONS["sram"]],
        [
            "area: PE + softmax",
            100.0 * area_fracs["pe_softmax"],
            100.0 * PAPER_AREA_FRACTIONS["pe_softmax"],
        ],
        ["area: others", 100.0 * area_fracs["others"], 100.0 * PAPER_AREA_FRACTIONS["others"]],
        ["energy: DRAM", 100.0 * energy_fracs["dram"], 100.0 * PAPER_ENERGY_FRACTIONS["dram"]],
        ["energy: SRAM", 100.0 * energy_fracs["sram"], 100.0 * PAPER_ENERGY_FRACTIONS["sram"]],
        ["energy: logic", 100.0 * energy_fracs["logic"], 100.0 * PAPER_ENERGY_FRACTIONS["logic"]],
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Fig. 8 - area and energy breakdown of DEFA",
        headers=headers,
        rows=rows,
        notes=[
            f"total area: {area.total_mm2:.2f} mm^2 (paper {PAPER_TOTAL_AREA_MM2} mm^2)",
            f"workload: {spec.name}; energy from {len(report.layers)} MSDeformAttn blocks",
        ],
        data={
            "total_area_mm2": area.total_mm2,
            "area_fractions": area_fracs,
            "energy_fractions": energy_fracs,
            "energy_per_inference_j": report.energy_per_inference_j,
            "chip_power_w": report.chip_power_w,
            "effective_gops": report.effective_tops * 1e3,
        },
    )
