"""Fig. 6(a): detection accuracy of the DEFA algorithm configuration.

The paper reports COCO AP of the finetuned benchmarks before and after the
DEFA algorithm modifications (FWP + PAP + level-wise range narrowing + INT12),
an average per-technique drop of 0.8 / 0.3 / 0.26 / 0.07 AP, and a
catastrophic 9.7 AP drop for INT8.  Without COCO or checkpoints the
reproduction measures *output fidelity* of each configuration against the
FP32 unpruned baseline on the synthetic workload and maps it to an estimated
AP through the calibrated estimator (see DESIGN.md for the substitution
rationale).  The relative ordering — all DEFA techniques cost little, INT8 is
unusable — is the result being reproduced.

Optionally (``include_synthetic_task=True``) the experiment also measures a
real COCO-style AP on the synthetic detection task through the matched-filter
detection head; this exercises the full pipeline (scenes -> backbone ->
encoder -> detection -> AP) end to end.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.faster_rcnn import FASTER_RCNN
from repro.core.config import DEFAConfig
from repro.eval.ap_estimator import CalibratedAPEstimator
from repro.eval.fidelity import compare_outputs
from repro.experiments.common import ExperimentResult, register_experiment
from repro.experiments.workload_runs import prepare_run, run_defa_cached
from repro.nn.models import MODEL_NAMES, get_model_config

TECHNIQUE_CONFIGS: dict[str, DEFAConfig] = {
    "fwp_only": DEFAConfig.baseline().with_overrides(enable_fwp=True),
    "pap_only": DEFAConfig.baseline().with_overrides(enable_pap=True),
    "range_narrowing_only": DEFAConfig.baseline().with_overrides(enable_range_narrowing=True),
    "int12_only": DEFAConfig.baseline().with_overrides(quant_bits=12),
    "defa": DEFAConfig.paper_default(),
    "defa_int8": DEFAConfig.paper_default().with_overrides(quant_bits=8),
}
"""The ablation configurations evaluated by the experiment."""

PAPER_TECHNIQUE_DROPS = {
    "fwp_only": 0.8,
    "pap_only": 0.3,
    "range_narrowing_only": 0.26,
    "int12_only": 0.07,
    "defa_int8": 9.7,
}
"""Average AP drops the paper attributes to each technique (Sec. 5.2)."""


@register_experiment("fig6a")
def run(
    scale: str = "small",
    seed: int = 0,
    include_ablations: bool = True,
) -> ExperimentResult:
    """Regenerate the Fig. 6(a) accuracy comparison (estimated AP)."""
    configs = dict(TECHNIQUE_CONFIGS) if include_ablations else {
        "defa": TECHNIQUE_CONFIGS["defa"],
        "defa_int8": TECHNIQUE_CONFIGS["defa_int8"],
    }

    # Measure output fidelity of every configuration on every benchmark.
    errors: dict[str, dict[str, float]] = {name: {} for name in MODEL_NAMES}
    for name in MODEL_NAMES:
        run_ctx = prepare_run(name, scale=scale, seed=seed)
        for config_name, config in configs.items():
            result = run_defa_cached(run_ctx, config, name, scale, seed=seed, collect_details=False)
            fidelity = compare_outputs(run_ctx.baseline_memory, result.memory)
            errors[name][config_name] = fidelity.relative_error

    # Calibrate the estimator on the DEFA default configuration (the paper's
    # operating point) averaged over the three benchmarks.
    reference_error = float(np.mean([errors[name]["defa"] for name in MODEL_NAMES]))
    estimator = CalibratedAPEstimator(reference_error=reference_error)

    headers = [
        "model",
        "baseline AP (paper)",
        "DEFA AP (ours est.)",
        "DEFA AP (paper)",
        "DEFA rel. error",
        "INT8 AP (ours est.)",
    ]
    rows = []
    data: dict[str, dict] = {"faster_rcnn_ap": FASTER_RCNN.coco_ap, "per_model": {}}
    for name in MODEL_NAMES:
        published = get_model_config(name).published
        defa_est = estimator.estimate(errors[name]["defa"], published.baseline_ap)
        int8_est = estimator.estimate(errors[name]["defa_int8"], published.baseline_ap)
        rows.append(
            [
                get_model_config(name).display_name,
                published.baseline_ap,
                defa_est.estimated_ap,
                published.defa_ap,
                errors[name]["defa"],
                int8_est.estimated_ap,
            ]
        )
        data["per_model"][name] = {
            "errors": errors[name],
            "estimated_defa_ap": defa_est.estimated_ap,
            "published_defa_ap": published.defa_ap,
            "estimated_int8_ap": int8_est.estimated_ap,
        }

    notes = [
        "Estimated AP uses the calibrated fidelity->AP estimator (no COCO checkpoints offline); "
        "see DESIGN.md for the substitution.",
        f"Faster R-CNN reference AP = {FASTER_RCNN.coco_ap}.",
    ]
    if include_ablations:
        technique_rows = []
        for config_name, paper_drop in PAPER_TECHNIQUE_DROPS.items():
            if config_name not in configs:
                continue
            mean_error = float(np.mean([errors[name][config_name] for name in MODEL_NAMES]))
            est_drop = estimator.estimate_drop(mean_error)
            technique_rows.append((config_name, est_drop, paper_drop))
        data["technique_drops"] = {
            name: {"estimated": est, "paper": pub} for name, est, pub in technique_rows
        }
        notes.append(
            "per-technique estimated AP drops: "
            + ", ".join(f"{n}={e:.2f} (paper {p})" for n, e, p in technique_rows)
        )

    return ExperimentResult(
        experiment_id="fig6a",
        title="Fig. 6(a) - detection accuracy of the DEFA algorithm configuration",
        headers=headers,
        rows=rows,
        notes=notes,
        data=data,
    )


def run_synthetic_task_ap(
    model_name: str = "deformable_detr",
    scale: str = "small",
    num_calibration: int = 3,
    num_eval: int = 4,
    seed: int = 0,
) -> dict[str, float]:
    """Measure a real COCO-style AP on the synthetic detection task.

    Runs the full pipeline (scenes -> backbone -> encoder -> matched-filter
    head -> COCO-style AP) for the FP32 baseline, the DEFA configuration and
    the INT8 ablation.  Returns ``{config_name: ap}``.  This is slower than
    the estimator path and is exercised by the examples and integration tests.
    """
    from repro.core.encoder_runner import DEFAEncoderRunner
    from repro.eval.detection_metrics import coco_style_map
    from repro.nn.detection_head import PrototypeDetectionHead
    from repro.nn.positional import make_reference_points, sine_positional_encoding
    from repro.nn.weight_fitting import ObjectLayout, fit_encoder_heads
    from repro.nn.models import build_encoder
    from repro.utils.rng import spawn_rngs
    from repro.workloads.dataset import SyntheticDetectionDataset
    from repro.workloads.specs import SCALE_PRESETS, get_workload

    spec = get_workload(model_name, scale)
    height, width = SCALE_PRESETS[scale]
    dataset_rng, encoder_rng, fit_rng = spawn_rngs(seed, 3)
    dataset = SyntheticDetectionDataset(
        spec.model,
        image_height=height,
        image_width=width,
        num_calibration=num_calibration,
        num_eval=num_eval,
        rng=dataset_rng,
    )
    shapes = dataset.spatial_shapes
    pos = sine_positional_encoding(shapes, spec.model.d_model)
    ref = make_reference_points(shapes)
    encoder = build_encoder(spec.model, rng=encoder_rng)
    calib_boxes = np.concatenate([s.scene.boxes for s in dataset.calibration], axis=0)
    fit_encoder_heads(
        encoder,
        dataset.calibration[0].features,
        pos,
        ref,
        shapes,
        ObjectLayout.from_boxes(calib_boxes[: max(1, len(calib_boxes))]),
        rng=fit_rng,
    )

    head = PrototypeDetectionHead(num_classes=dataset.num_classes)
    calib_memories = [
        encoder.forward(sample.features, pos, ref, shapes) for sample in dataset.calibration
    ]
    head.calibrate(
        calib_memories,
        shapes,
        [s.scene.boxes for s in dataset.calibration],
        [s.scene.labels for s in dataset.calibration],
    )

    def evaluate(memory_fn) -> float:
        detections, gt_boxes, gt_labels = [], [], []
        for sample in dataset.evaluation:
            memory = memory_fn(sample.features)
            detections.append(head.detect(memory, shapes))
            gt_boxes.append(sample.scene.boxes)
            gt_labels.append(sample.scene.labels)
        return coco_style_map(detections, gt_boxes, gt_labels, dataset.num_classes)["ap"]

    results = {}
    results["baseline"] = evaluate(lambda feats: encoder.forward(feats, pos, ref, shapes))
    for config_name, config in [
        ("defa", DEFAConfig.paper_default()),
        ("defa_int8", DEFAConfig.paper_default().with_overrides(quant_bits=8)),
    ]:
        runner = DEFAEncoderRunner(encoder, config)
        results[config_name] = evaluate(
            lambda feats, runner=runner: runner.forward(feats, pos, ref, shapes).memory
        )
    return results
