"""Shared infrastructure of the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.utils.tables import format_table


@dataclass
class ExperimentResult:
    """Result of one experiment (one paper table or figure).

    Attributes
    ----------
    experiment_id:
        Paper identifier, e.g. ``"fig6b"`` or ``"table1"``.
    title:
        Human-readable description.
    headers / rows:
        The regenerated table (same rows/series the paper reports, typically
        with measured-vs-published columns side by side).
    notes:
        Free-form remarks (substitutions, caveats).
    data:
        Machine-readable payload (saved as JSON by the runner).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def as_table(self, float_fmt: str = ".2f") -> str:
        """Render the result as an aligned ASCII table with its notes."""
        text = format_table(self.headers, self.rows, float_fmt=float_fmt, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}
"""Registry of experiment id -> run function, filled by :func:`register_experiment`."""


def register_experiment(experiment_id: str):
    """Decorator registering an experiment's ``run`` function under an id."""

    def decorator(func: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        EXPERIMENTS[experiment_id] = func
        return func

    return decorator
