"""Fig. 9: speedup and energy-efficiency improvement over GPUs.

The paper scales DEFA to 13.3 TOPS / 40 TOPS (matching the peak throughput of
an RTX 2080Ti / RTX 3090Ti), and reports 10.1-11.8x / 29.4-31.9x speedup and
20.3-23.2x / 35.3-37.7x energy-efficiency improvement on the MSDeformAttn
layers of the three benchmarks.

The reproduction measures the pruning ratios of each benchmark on the
synthetic workload (small scale), projects them to the paper's input
resolution, simulates the scaled DEFA configurations, and compares against the
calibrated GPU cost model.  The energy-efficiency improvement is defined as
(GPU energy per inference) / (DEFA energy per inference, including DRAM);
EXPERIMENTS.md discusses how this definition relates to the paper's numbers.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.gpu import GPUCostModel, GPUSpec, RTX_2080TI, RTX_3090TI
from repro.core.config import DEFAConfig
from repro.experiments.common import ExperimentResult, register_experiment
from repro.experiments.workload_runs import prepare_run, run_defa_cached
from repro.hardware.config import HardwareConfig
from repro.hardware.simulator import DEFASimulator
from repro.nn.models import MODEL_NAMES, get_model_config
from repro.workloads.specs import get_workload

GPU_TARGETS: tuple[tuple[GPUSpec, float], ...] = ((RTX_2080TI, 13.3), (RTX_3090TI, 40.0))
"""GPUs and the DEFA peak-throughput targets (TOPS) matched against them."""


@register_experiment("fig9")
def run(
    measure_scale: str = "small",
    project_scale: str = "paper",
    config: DEFAConfig | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 9 speedup / energy-efficiency comparison."""
    config = config or DEFAConfig.paper_default()
    headers = [
        "model",
        "GPU",
        "speedup (ours)",
        "speedup (paper)",
        "EE gain (ours)",
        "EE gain (paper)",
    ]
    rows = []
    data = {}
    for name in MODEL_NAMES:
        # Measure the pruning behaviour at a tractable scale...
        run_ctx = prepare_run(name, scale=measure_scale, seed=seed)
        result = run_defa_cached(run_ctx, config, name, measure_scale, seed=seed)
        point_keep = 1.0 - result.mean_point_reduction
        pixel_keep = 1.0 - result.mean_pixel_reduction
        sim_probe = DEFASimulator(HardwareConfig())
        probe_workloads = sim_probe.workloads_from_encoder_result(result)
        unique_ratio = float(
            np.mean([w.unique_pixels_accessed / w.num_tokens for w in probe_workloads])
        )
        intra_conflict = float(np.mean([w.intra_conflict_factor for w in probe_workloads]))

        # ...and project it to the paper's input resolution.
        project_spec = get_workload(name, project_scale)
        published = get_model_config(name).published
        data[name] = {}
        for gpu, target_tops in GPU_TARGETS:
            defa_hw = HardwareConfig().scaled_to(target_tops)
            simulator = DEFASimulator(defa_hw)
            defa_report = simulator.simulate_from_ratios(
                project_spec,
                point_keep_ratio=point_keep,
                pixel_keep_ratio=pixel_keep,
                unique_pixel_ratio=unique_ratio,
                intra_conflict_factor=intra_conflict,
            )
            gpu_model = GPUCostModel(gpu)
            gpu_time = gpu_model.encoder_attention_latency(project_spec)
            gpu_energy = gpu_model.encoder_attention_energy(project_spec)
            speedup = gpu_time / defa_report.time_s
            ee_gain = gpu_energy / defa_report.energy_per_inference_j
            paper_speedup = (
                published.speedup_2080ti if gpu is RTX_2080TI else published.speedup_3090ti
            )
            paper_ee = (
                published.ee_improvement_2080ti
                if gpu is RTX_2080TI
                else published.ee_improvement_3090ti
            )
            rows.append(
                [
                    project_spec.model.display_name,
                    gpu.name,
                    speedup,
                    paper_speedup,
                    ee_gain,
                    paper_ee,
                ]
            )
            data[name][gpu.name] = {
                "speedup": speedup,
                "paper_speedup": paper_speedup,
                "ee_gain": ee_gain,
                "paper_ee_gain": paper_ee,
                "defa_time_s": defa_report.time_s,
                "gpu_time_s": gpu_time,
                "defa_energy_j": defa_report.energy_per_inference_j,
                "gpu_energy_j": gpu_energy,
            }
    return ExperimentResult(
        experiment_id="fig9",
        title="Fig. 9 - speedup and energy-efficiency improvement over GPUs",
        headers=headers,
        rows=rows,
        notes=[
            f"pruning ratios measured at scale={measure_scale!r}, projected to {project_scale!r}",
            "EE gain = GPU energy / DEFA energy (incl. DRAM); our energy model yields larger "
            "gains than the paper's figures because the paper's EE accounting is not fully "
            "specified — see EXPERIMENTS.md.",
        ],
        data=data,
    )
