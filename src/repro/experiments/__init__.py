"""Experiment harness: one module per table/figure of the paper's evaluation.

Each experiment module exposes a ``run(...)`` function returning a structured
result object with an ``as_table()`` method that prints the same rows/series
the paper reports, together with the paper's published values for comparison.
:mod:`repro.experiments.runner` runs them all and writes a JSON summary.
"""

from repro.experiments.common import ExperimentResult, EXPERIMENTS, register_experiment
from repro.experiments import (  # noqa: F401  (importing registers the experiments)
    fig1b_latency_breakdown,
    fig6a_accuracy,
    fig6b_reduction,
    fig7a_parallelism,
    fig7b_fusion_reuse,
    fig8_breakdown,
    fig9_gpu_comparison,
    table1_asic_comparison,
)

__all__ = ["ExperimentResult", "EXPERIMENTS", "register_experiment"]
