"""Fig. 7(a): MSGS throughput boost of inter-level over intra-level processing.

The paper measures a ~3.0-3.1x throughput improvement when the four parallel
sampling points come from four different pyramid levels (conflict-free bank
mapping) instead of one level (bank conflicts serialize accesses).  This
experiment replays the actual sampling traces of each benchmark under both
banking schemes.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DEFAConfig
from repro.experiments.common import ExperimentResult, register_experiment
from repro.experiments.workload_runs import prepare_run, run_defa_cached
from repro.hardware.banking import BankingScheme, simulate_bank_conflicts, throughput_boost
from repro.nn.models import MODEL_NAMES, get_model_config


@register_experiment("fig7a")
def run(
    scale: str = "small",
    config: DEFAConfig | None = None,
    num_banks: int = 16,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 7(a) throughput-boost series."""
    config = config or DEFAConfig.paper_default()
    headers = [
        "model",
        "boost (ours)",
        "boost (paper)",
        "intra cycles/group",
        "inter cycles/group",
        "intra conflict %",
    ]
    rows = []
    data = {}
    for name in MODEL_NAMES:
        run_ctx = prepare_run(name, scale=scale, seed=seed)
        result = run_defa_cached(run_ctx, config, name, scale, seed=seed)
        boosts, intra_cpg, inter_cpg, conflict = [], [], [], []
        for layer_out in result.layer_outputs:
            # The Fig. 7(a) micro-benchmark measures the raw MSGS engine
            # throughput, so the full (unpruned) sampling stream is replayed;
            # dense_trace() materializes it when the block ran compacted.
            trace = layer_out.dense_trace()
            intra = simulate_bank_conflicts(
                trace,
                BankingScheme.INTRA_LEVEL,
                num_banks=num_banks,
            )
            inter = simulate_bank_conflicts(
                trace,
                BankingScheme.INTER_LEVEL,
                num_banks=num_banks,
            )
            boosts.append(throughput_boost(intra, inter))
            intra_cpg.append(intra.cycles_per_group)
            inter_cpg.append(inter.cycles_per_group)
            conflict.append(intra.conflict_fraction)
        published = get_model_config(name).published.msgs_throughput_boost
        rows.append(
            [
                run_ctx.spec.model.display_name,
                float(np.mean(boosts)),
                published,
                float(np.mean(intra_cpg)),
                float(np.mean(inter_cpg)),
                100.0 * float(np.mean(conflict)),
            ]
        )
        data[name] = {
            "boost": float(np.mean(boosts)),
            "published_boost": published,
            "per_layer_boost": [float(b) for b in boosts],
        }
    return ExperimentResult(
        experiment_id="fig7a",
        title="Fig. 7(a) - MSGS throughput boost of inter-level over intra-level processing",
        headers=headers,
        rows=rows,
        notes=[f"{num_banks} SRAM banks, 4 sampling points issued per cycle; scale={scale}"],
        data=data,
    )
