"""Run every registered experiment and print/serialize the results.

Usage::

    python -m repro.experiments.runner            # run everything
    python -m repro.experiments.runner fig6b fig7a  # run a subset
    python -m repro.experiments.runner --jobs 4   # run across 4 processes

With ``--jobs N`` the experiments are distributed over N worker processes
(see :mod:`repro.engine.parallel`); every experiment is deterministic, so the
results are identical to a serial run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS
from repro.experiments.common import ExperimentResult
from repro.utils.serialization import save_json


def _report(
    experiment_id: str,
    result: ExperimentResult,
    elapsed: float | None,
    output_dir: str | Path | None,
    verbose: bool,
) -> None:
    if verbose:
        print(result.as_table())
        if elapsed is not None:
            print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
        else:
            print()
    if output_dir is not None:
        save_json(
            Path(output_dir) / f"{experiment_id}.json",
            {
                "experiment_id": result.experiment_id,
                "title": result.title,
                "headers": result.headers,
                "rows": result.rows,
                "notes": result.notes,
                "data": result.data,
            },
        )


def run_experiments(
    ids: list[str] | None = None,
    output_dir: str | Path | None = None,
    verbose: bool = True,
    jobs: int = 1,
) -> dict[str, ExperimentResult]:
    """Run the selected experiments (all of them by default).

    ``jobs > 1`` distributes the experiments over that many worker processes;
    results (and their serialization) are identical to a serial run because
    every experiment is deterministic.
    """
    selected = ids or sorted(EXPERIMENTS)
    unknown = [i for i in selected if i not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids {unknown}; available: {sorted(EXPERIMENTS)}")
    if jobs <= 0:
        raise ValueError("jobs must be positive")

    results: dict[str, ExperimentResult] = {}
    if jobs > 1:
        from repro.engine.parallel import run_experiments_parallel

        start = time.time()
        # Report (and persist) each result as it completes, so one failing
        # experiment does not discard the finished ones — the same
        # save-as-you-go behaviour as the serial path.  Experiments run
        # concurrently, so per-experiment wall clocks are not observable;
        # the suite total is printed once at the end instead.
        results = run_experiments_parallel(
            selected,
            jobs,
            on_result=lambda experiment_id, result: _report(
                experiment_id, result, None, output_dir, verbose
            ),
        )
        elapsed = time.time() - start
        if verbose:
            print(
                f"[{len(selected)} experiments finished in {elapsed:.1f}s "
                f"across {min(jobs, len(selected))} worker processes]\n"
            )
        return results

    for experiment_id in selected:
        start = time.time()
        result = EXPERIMENTS[experiment_id]()
        elapsed = time.time() - start
        results[experiment_id] = result
        _report(experiment_id, result, elapsed, output_dir, verbose)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Run the DEFA reproduction experiments")
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--output-dir", default="results", help="directory for JSON results")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="number of worker processes (default: 1, serial)",
    )
    args = parser.parse_args(argv)
    run_experiments(args.experiments or None, output_dir=args.output_dir, jobs=args.jobs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
