"""Run every registered experiment and print/serialize the results.

Usage::

    python -m repro.experiments.runner            # run everything
    python -m repro.experiments.runner fig6b fig7a  # run a subset
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS
from repro.experiments.common import ExperimentResult
from repro.utils.serialization import save_json


def run_experiments(
    ids: list[str] | None = None,
    output_dir: str | Path | None = None,
    verbose: bool = True,
) -> dict[str, ExperimentResult]:
    """Run the selected experiments (all of them by default)."""
    selected = ids or sorted(EXPERIMENTS)
    unknown = [i for i in selected if i not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids {unknown}; available: {sorted(EXPERIMENTS)}")

    results: dict[str, ExperimentResult] = {}
    for experiment_id in selected:
        start = time.time()
        result = EXPERIMENTS[experiment_id]()
        elapsed = time.time() - start
        results[experiment_id] = result
        if verbose:
            print(result.as_table())
            print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
        if output_dir is not None:
            save_json(
                Path(output_dir) / f"{experiment_id}.json",
                {
                    "experiment_id": result.experiment_id,
                    "title": result.title,
                    "headers": result.headers,
                    "rows": result.rows,
                    "notes": result.notes,
                    "data": result.data,
                },
            )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Run the DEFA reproduction experiments")
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--output-dir", default="results", help="directory for JSON results")
    args = parser.parse_args(argv)
    run_experiments(args.experiments or None, output_dir=args.output_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
