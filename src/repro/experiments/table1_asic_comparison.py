"""Table 1: comparison with published attention-accelerator ASICs.

ELSA, SpAtten and BESAPU rows are the published numbers; the DEFA row is
produced by this repository's area/energy/performance models of the base
configuration.  The paper highlights DEFA's 2.2-3.7x energy-efficiency
advantage while being the only platform supporting deformable attention.
"""

from __future__ import annotations

from repro.baselines.asic import (
    ASICPlatform,
    DEFA_PUBLISHED,
    energy_efficiency_improvements,
    published_platforms,
)
from repro.experiments.common import ExperimentResult, register_experiment
from repro.hardware.area import area_model
from repro.hardware.config import HardwareConfig
from repro.hardware.simulator import DEFASimulator
from repro.workloads.specs import get_workload


def simulate_defa_row(
    hardware: HardwareConfig | None = None,
    model_name: str = "deformable_detr",
    scale: str = "paper",
    point_keep_ratio: float = 0.16,
    pixel_keep_ratio: float = 0.57,
) -> ASICPlatform:
    """Produce DEFA's Table-1 row from the simulator and the area model."""
    hardware = hardware or HardwareConfig()
    spec = get_workload(model_name, scale)
    area = area_model(hardware)
    simulator = DEFASimulator(hardware)
    report = simulator.simulate_from_ratios(
        spec, point_keep_ratio=point_keep_ratio, pixel_keep_ratio=pixel_keep_ratio
    )
    return ASICPlatform(
        name="DEFA (ours)",
        venue="this repo",
        function="DeformAttn",
        technology_nm=hardware.technology_nm,
        area_mm2=area.total_mm2,
        frequency_mhz=hardware.frequency_mhz,
        precision=f"INT{hardware.precision_bits}",
        power_mw=report.chip_power_w * 1e3,
        throughput_gops=report.effective_tops * 1e3,
    )


@register_experiment("table1")
def run(hardware: HardwareConfig | None = None) -> ExperimentResult:
    """Regenerate Table 1 (published platforms + simulated DEFA row)."""
    defa_row = simulate_defa_row(hardware)
    platforms = published_platforms() + [DEFA_PUBLISHED, defa_row]

    headers = [
        "platform",
        "function",
        "tech (nm)",
        "area (mm2)",
        "freq (MHz)",
        "precision",
        "power (mW)",
        "throughput (GOPS)",
        "EE (GOPS/W)",
    ]
    rows = [
        [
            p.name,
            p.function,
            p.technology_nm,
            p.area_mm2,
            p.frequency_mhz,
            p.precision,
            p.power_mw,
            p.throughput_gops,
            p.energy_efficiency_gops_w,
        ]
        for p in platforms
    ]
    improvements = energy_efficiency_improvements(defa_row)
    published_improvements = energy_efficiency_improvements(DEFA_PUBLISHED)
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1 - comparison with other ASIC platforms",
        headers=headers,
        rows=rows,
        notes=[
            "ELSA/SpAtten/BESAPU rows are the published numbers; 'DEFA (published)' is the "
            "paper's row; 'DEFA (ours)' comes from this repository's models.",
            "EE improvement of DEFA (ours) over "
            + ", ".join(f"{k}: {v:.1f}x" for k, v in improvements.items())
            + " (paper: "
            + ", ".join(f"{k}: {v:.1f}x" for k, v in published_improvements.items())
            + ")",
        ],
        data={
            "defa_row": {
                "area_mm2": defa_row.area_mm2,
                "power_mw": defa_row.power_mw,
                "throughput_gops": defa_row.throughput_gops,
                "energy_efficiency_gops_w": defa_row.energy_efficiency_gops_w,
            },
            "ee_improvements": improvements,
            "published_ee_improvements": published_improvements,
        },
    )
