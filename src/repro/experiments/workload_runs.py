"""Shared algorithm-level runs used by several experiments.

Most experiments need the same expensive artefact: the paper's benchmark
encoder executed on a synthetic workload, once as the FP32 unpruned baseline
and once under a DEFA configuration (with per-layer traces and masks).  This
module builds those runs and memoizes them per (model, scale, config, seed)
so that e.g. Fig. 6(b), Fig. 7(a) and Fig. 7(b) reuse one run instead of
recomputing it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderResult, DEFAEncoderRunner
from repro.nn.encoder import DeformableEncoder
from repro.nn.models import build_encoder
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.nn.weight_fitting import FittingConfig, ObjectLayout, fit_encoder_heads
from repro.utils.rng import spawn_rngs
from repro.workloads.specs import WorkloadSpec, get_workload
from repro.workloads.traces import synthetic_workload_input


@dataclass
class AlgorithmRun:
    """One workload prepared for algorithm-level experiments."""

    spec: WorkloadSpec
    encoder: DeformableEncoder
    features: np.ndarray
    layout: ObjectLayout
    pos: np.ndarray
    reference_points: np.ndarray
    baseline_memory: np.ndarray
    """Encoder output of the FP32 unpruned baseline."""

    def run_defa(self, config: DEFAConfig, collect_details: bool = False) -> DEFAEncoderResult:
        """Execute the encoder under a DEFA configuration."""
        runner = DEFAEncoderRunner(self.encoder, config)
        return runner.forward(
            self.features,
            self.pos,
            self.reference_points,
            self.spec.spatial_shapes,
            collect_details=collect_details,
        )


_RUN_CACHE: dict[tuple, AlgorithmRun] = {}
_DEFA_CACHE: dict[tuple, DEFAEncoderResult] = {}


def prepare_run(
    model_name: str,
    scale: str = "small",
    num_layers: int | None = None,
    seed: int = 0,
) -> AlgorithmRun:
    """Build (or fetch from cache) the shared workload run for one model."""
    key = (model_name, scale, num_layers, seed)
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]

    spec = get_workload(model_name, scale)
    feature_rng, encoder_rng, fit_rng = spawn_rngs(seed, 3)
    features, layout = synthetic_workload_input(spec, rng=feature_rng)
    encoder = build_encoder(spec.model, rng=encoder_rng)
    if num_layers is not None:
        encoder.layers = encoder.layers[:num_layers]
        encoder.num_layers = num_layers
    pos = sine_positional_encoding(spec.spatial_shapes, spec.model.d_model)
    reference_points = make_reference_points(spec.spatial_shapes)
    fit_encoder_heads(
        encoder,
        features,
        pos,
        reference_points,
        spec.spatial_shapes,
        layout,
        config=FittingConfig(),
        rng=fit_rng,
    )
    baseline = encoder.forward(features, pos, reference_points, spec.spatial_shapes)
    run = AlgorithmRun(
        spec=spec,
        encoder=encoder,
        features=features,
        layout=layout,
        pos=pos,
        reference_points=reference_points,
        baseline_memory=baseline,
    )
    _RUN_CACHE[key] = run
    return run


def run_defa_cached(
    run: AlgorithmRun,
    config: DEFAConfig,
    model_name: str,
    scale: str,
    seed: int = 0,
    collect_details: bool = True,
) -> DEFAEncoderResult:
    """Memoized DEFA execution of a prepared run under one configuration."""
    key = (model_name, scale, seed, tuple(sorted(config.__dict__.items())), collect_details)
    if key not in _DEFA_CACHE:
        _DEFA_CACHE[key] = run.run_defa(config, collect_details=collect_details)
    return _DEFA_CACHE[key]


def clear_caches() -> None:
    """Drop all memoized runs (used by tests to bound memory)."""
    _RUN_CACHE.clear()
    _DEFA_CACHE.clear()
