"""Fig. 6(b): reduction in sampling points, fmap pixels and computation.

The paper reports that PAP removes 82-86 % of the sampling points, FWP removes
42-44 % of the fmap pixels, and together they eliminate 52-53 % of the
MSDeformAttn computation.  This experiment runs the DEFA algorithm on the
synthetic workload of each benchmark model and reports the measured ratios
next to the published ones.
"""

from __future__ import annotations

from repro.core.config import DEFAConfig
from repro.eval.pruning_stats import collect_pruning_stats
from repro.experiments.common import ExperimentResult, register_experiment
from repro.experiments.workload_runs import prepare_run, run_defa_cached
from repro.nn.models import MODEL_NAMES, get_model_config


@register_experiment("fig6b")
def run(
    scale: str = "small",
    config: DEFAConfig | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 6(b) reduction ratios."""
    config = config or DEFAConfig.paper_default()
    headers = [
        "model",
        "points % (ours)",
        "points % (paper)",
        "pixels % (ours)",
        "pixels % (paper)",
        "FLOPs % (ours)",
        "FLOPs % (paper)",
    ]
    rows = []
    data = {}
    for name in MODEL_NAMES:
        run_ctx = prepare_run(name, scale=scale, seed=seed)
        result = run_defa_cached(run_ctx, config, name, scale, seed=seed)
        stats = collect_pruning_stats(result, model_name=name)
        published = get_model_config(name).published
        rows.append(
            [
                run_ctx.spec.model.display_name,
                100.0 * stats.sampling_point_reduction,
                100.0 * published.sampling_point_reduction,
                100.0 * stats.fmap_pixel_reduction,
                100.0 * published.fmap_pixel_reduction,
                100.0 * stats.flops_reduction,
                100.0 * published.flops_reduction,
            ]
        )
        data[name] = {
            "sampling_point_reduction": stats.sampling_point_reduction,
            "fmap_pixel_reduction": stats.fmap_pixel_reduction,
            "flops_reduction": stats.flops_reduction,
            "flops_reduction_with_output_proj": stats.flops_reduction_with_output_proj,
            "per_layer_point_reduction": list(stats.per_layer_point_reduction),
            "per_layer_pixel_reduction": list(stats.per_layer_pixel_reduction),
        }
    return ExperimentResult(
        experiment_id="fig6b",
        title="Fig. 6(b) - reduction in sampling points, fmap pixels and computation",
        headers=headers,
        rows=rows,
        notes=[
            f"workload scale: {scale}; DEFA config: {config.describe()}",
            "FLOP reduction is computed over the prunable operators "
            "(value/offset/attention projections, softmax, MSGS, aggregation).",
        ],
        data=data,
    )
