"""Quickstart: run multi-scale deformable attention with and without DEFA.

This example builds a small Deformable-DETR-style workload, runs the plain
MSDeformAttn encoder layer, then runs the same layer under the DEFA
algorithm (FWP + PAP + level-wise range narrowing + INT12) and prints the
pruning statistics and the output fidelity.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DEFAConfig
from repro.core.pipeline import DEFAAttention
from repro.eval.fidelity import compare_outputs
from repro.nn.models import build_encoder
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.nn.weight_fitting import fit_encoder_heads
from repro.utils.tables import format_table
from repro.workloads.specs import get_workload
from repro.workloads.traces import synthetic_workload_input


def main() -> None:
    # 1. A workload: the Deformable DETR encoder at a reduced input resolution.
    spec = get_workload("deformable_detr", scale="small")
    print("Workload:", spec.describe())

    # 2. Synthetic multi-scale features plus the object layout that shaped them.
    features, layout = synthetic_workload_input(spec, rng=0)
    pos = sine_positional_encoding(spec.spatial_shapes, spec.model.d_model)
    reference_points = make_reference_points(spec.spatial_shapes)

    # 3. An encoder with closed-form-fitted (object-seeking) attention heads.
    encoder = build_encoder(spec.model, rng=1)
    fit_encoder_heads(
        encoder, features, pos, reference_points, spec.spatial_shapes, layout, rng=2
    )
    layer = encoder.layers[0]
    query = features + pos

    # 4. The FP32 unpruned reference output of the first attention block.
    reference = layer.self_attn(query, reference_points, features, spec.spatial_shapes)

    # 5. The same block under the DEFA algorithm.
    defa = DEFAAttention(layer.self_attn, DEFAConfig.paper_default())
    result = defa.forward_detailed(query, reference_points, features, spec.spatial_shapes)
    fidelity = compare_outputs(reference, result.output)

    stats = result.stats
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["sampling points kept", f"{stats.points_kept}/{stats.points_total}"],
                ["sampling-point reduction", f"{100 * stats.point_reduction:.1f} %"],
                ["fmap pixels pruned for next block", f"{100 * stats.pixel_reduction_next:.1f} %"],
                ["FLOP reduction (prunable ops)", f"{100 * stats.flops_reduction:.1f} %"],
                ["relative output error vs FP32", f"{fidelity.relative_error:.4f}"],
                ["mean cosine similarity", f"{fidelity.mean_cosine_similarity:.4f}"],
            ],
            title="DEFA attention block on " + spec.name,
        )
    )
    print()
    print("Attention-probability mass kept by PAP:", f"{result.pap.kept_probability_mass:.3f}")
    print("FWP thresholds per level:", np.round(result.fwp.thresholds, 2))


if __name__ == "__main__":
    main()
