"""Accuracy / sparsity trade-off of the DEFA pruning hyper-parameters.

Sweeps the FWP threshold factor ``k`` (Eq. 2) and the PAP probability
threshold, measuring for each operating point the pruning ratios and the
output fidelity versus the FP32 unpruned baseline — the trade-off the paper
tunes during finetuning (Sec. 3.1 / 5.2).

Run with::

    python examples/pruning_tradeoff.py
"""

from __future__ import annotations

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.eval.fidelity import compare_outputs
from repro.nn.models import build_encoder
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.nn.weight_fitting import fit_encoder_heads
from repro.utils.tables import format_table
from repro.workloads.specs import get_workload
from repro.workloads.traces import synthetic_workload_input


def main() -> None:
    spec = get_workload("deformable_detr", scale="small")
    features, layout = synthetic_workload_input(spec, rng=0)
    pos = sine_positional_encoding(spec.spatial_shapes, spec.model.d_model)
    ref = make_reference_points(spec.spatial_shapes)
    encoder = build_encoder(spec.model, rng=1)
    encoder.layers = encoder.layers[:3]  # three blocks keep the sweep fast
    encoder.num_layers = 3
    fit_encoder_heads(encoder, features, pos, ref, spec.spatial_shapes, layout, rng=2)
    baseline = encoder.forward(features, pos, ref, spec.spatial_shapes)

    def evaluate(config: DEFAConfig) -> list:
        result = DEFAEncoderRunner(encoder, config).forward(
            features, pos, ref, spec.spatial_shapes
        )
        fidelity = compare_outputs(baseline, result.memory)
        return [
            100 * result.mean_point_reduction,
            100 * result.mean_pixel_reduction,
            100 * result.mean_flops_reduction,
            fidelity.relative_error,
        ]

    print("Sweep of the FWP threshold factor k (PAP fixed at the default):")
    rows = []
    for k in (0.25, 0.5, 0.75, 1.0, 1.5):
        rows.append([k] + evaluate(DEFAConfig(fwp_k=k)))
    print(
        format_table(
            ["k", "point red. %", "pixel red. %", "FLOP red. %", "rel. error"], rows
        )
    )

    print()
    print("Sweep of the PAP probability threshold (FWP fixed at the default):")
    rows = []
    for threshold in (0.01, 0.02, 0.035, 0.05, 0.08):
        rows.append([threshold] + evaluate(DEFAConfig(pap_threshold=threshold)))
    print(
        format_table(
            ["threshold", "point red. %", "pixel red. %", "FLOP red. %", "rel. error"], rows
        )
    )

    print()
    print("Level-wise vs unified bounded range (Sec. 4.1):")
    rows = []
    for label, config in [
        ("level-wise", DEFAConfig()),
        ("unified", DEFAConfig(unified_range=True)),
    ]:
        from repro.core.range_narrowing import RangeNarrowing

        narrowing = RangeNarrowing(config.effective_ranges(spec.model.num_levels))
        storage_kib = narrowing.storage_bits(spec.model.d_model) / 8 / 1024
        rows.append([label, storage_kib] + evaluate(config))
    print(
        format_table(
            ["ranges", "window SRAM (KiB)", "point red. %", "pixel red. %", "FLOP red. %", "rel. error"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
