"""Design-space exploration of the DEFA accelerator.

Uses the hardware simulator to explore the architectural choices the paper
evaluates: intra- vs inter-level banking, operator fusion, fmap reuse and
throughput scaling, plus the on-chip buffer requirement with and without
level-wise range narrowing (Sec. 2.2 / 4.1).

Run with::

    python examples/hardware_design_space.py
"""

from __future__ import annotations

from repro.core.range_narrowing import RangeNarrowing, full_fmap_storage_bits
from repro.hardware.area import area_model
from repro.hardware.banking import BankingScheme
from repro.hardware.config import HardwareConfig
from repro.hardware.simulator import DEFASimulator
from repro.utils.tables import format_table
from repro.workloads.specs import get_workload


def main() -> None:
    spec = get_workload("deformable_detr", scale="paper")
    point_keep, pixel_keep = 0.16, 0.57  # the paper's operating point (Fig. 6b)

    print("Ablation of the hardware optimizations (paper-scale workload):")
    rows = []
    variants = [
        ("DEFA (fusion + reuse + inter-level)", dict()),
        ("no operator fusion", dict(fuse_msgs_aggregation=False)),
        ("no fmap reuse", dict(fmap_reuse=False)),
        ("intra-level banking", dict(banking=BankingScheme.INTRA_LEVEL)),
        ("no pruning (dense)", dict(dense=True)),
    ]
    for label, options in variants:
        dense = options.pop("dense", False)
        simulator = DEFASimulator(HardwareConfig(), **options)
        if dense:
            report = simulator.simulate_from_ratios(spec, 1.0, 1.0)
        else:
            report = simulator.simulate_from_ratios(spec, point_keep, pixel_keep)
        rows.append(
            [
                label,
                1e3 * report.time_s,
                1e3 * report.energy.total_j,
                report.effective_tops * 1e3,
                1e3 * report.chip_power_w,
            ]
        )
    print(
        format_table(
            ["configuration", "time (ms)", "energy (mJ)", "eff. GOPS", "chip power (mW)"], rows
        )
    )

    print()
    print("Throughput scaling (the Fig. 9 design points):")
    rows = []
    for target in (0.2048, 13.3, 40.0):
        config = HardwareConfig() if target < 1 else HardwareConfig().scaled_to(target)
        report = DEFASimulator(config).simulate_from_ratios(spec, point_keep, pixel_keep)
        area = area_model(config)
        rows.append(
            [
                f"{config.peak_gops / 1e3:.2f} TOPS peak",
                1e3 * report.time_s,
                report.effective_tops,
                area.total_mm2,
            ]
        )
    print(format_table(["design point", "time (ms)", "eff. TOPS", "area (mm2)"], rows))

    print()
    print("On-chip buffer requirement (Sec. 2.2 vs Sec. 4.1):")
    full_mb = full_fmap_storage_bits(spec.spatial_shapes, spec.model.d_model) / 8 / 1024 / 1024
    narrowing = RangeNarrowing((8.0, 7.0, 7.0, 6.0))
    windows_kib = narrowing.storage_bits(spec.model.d_model, spatial_shapes=spec.spatial_shapes) / 8 / 1024
    unified_overhead = narrowing.unified_storage_overhead(
        spec.model.d_model, spatial_shapes=spec.spatial_shapes
    )
    print(f"  whole multi-scale fmap on chip : {full_mb:7.2f} MB  (the ~9.8 MB problem)")
    print(f"  level-wise bounded-range buffer: {windows_kib:7.1f} KiB")
    print(f"  unified-range extra storage    : {100 * unified_overhead:5.1f} %  (paper: ~25 %)")


if __name__ == "__main__":
    main()
