"""End-to-end synthetic detection: scenes -> backbone -> encoder -> AP.

Exercises the full pipeline of the accuracy substitution described in
DESIGN.md: synthetic COCO-like scenes are pushed through the synthetic FPN
backbone and the deformable encoder, detections are produced by the
matched-filter head, and a COCO-style AP is computed for the FP32 baseline,
the DEFA configuration and the rejected INT8 configuration.

Run with::

    python examples/end_to_end_detection.py
"""

from __future__ import annotations

from repro.experiments.fig6a_accuracy import run_synthetic_task_ap
from repro.utils.tables import format_table


def main() -> None:
    print("Running the synthetic detection task (this runs the NumPy encoder per scene)...")
    results = run_synthetic_task_ap(
        model_name="deformable_detr",
        scale="small",
        num_calibration=3,
        num_eval=4,
        seed=0,
    )
    rows = [[name, ap] for name, ap in results.items()]
    print()
    print(
        format_table(
            ["configuration", "COCO-style AP (synthetic task)"],
            rows,
            title="Synthetic-task detection accuracy",
        )
    )
    print()
    print(
        "Expected shape (mirrors Fig. 6a): the DEFA configuration stays close to the\n"
        "baseline, while INT8 quantization degrades detection substantially."
    )


if __name__ == "__main__":
    main()
