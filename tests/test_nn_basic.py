"""Tests for the NumPy NN substrate: tensor utils, modules, dense attention."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.attention import MultiHeadAttention
from repro.nn.modules import FeedForward, GELU, LayerNorm, Linear, Module, ReLU, Sequential
from repro.nn.tensor_utils import (
    cosine_similarity,
    gelu,
    layer_norm,
    relu,
    softmax,
    xavier_uniform,
)


class TestTensorUtils:
    def test_softmax_sums_to_one(self):
        x = np.random.default_rng(0).standard_normal((5, 7))
        s = softmax(x, axis=-1)
        assert np.allclose(s.sum(axis=-1), 1.0, atol=1e-5)

    def test_softmax_stability_large_values(self):
        s = softmax(np.array([1000.0, 1000.0, 999.0]))
        assert np.all(np.isfinite(s))

    def test_softmax_monotonic(self):
        s = softmax(np.array([1.0, 2.0, 3.0]))
        assert s[0] < s[1] < s[2]

    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(0).standard_normal((4, 16)).astype(np.float32)
        out = layer_norm(x, np.ones(16, np.float32), np.zeros(16, np.float32))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-2)

    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_gelu_shape_and_sign(self):
        x = np.array([-10.0, 0.0, 10.0], dtype=np.float32)
        y = gelu(x)
        assert y[0] == pytest.approx(0.0, abs=1e-3)
        assert y[2] == pytest.approx(10.0, abs=1e-3)

    def test_xavier_uniform_bounds(self):
        w = xavier_uniform(np.random.default_rng(0), 64, 32)
        bound = np.sqrt(6.0 / 96)
        assert w.shape == (64, 32)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_invalid(self):
        with pytest.raises(ValueError):
            xavier_uniform(np.random.default_rng(0), 0, 4)

    def test_cosine_similarity_identical(self):
        x = np.random.default_rng(0).standard_normal((3, 8))
        assert np.allclose(cosine_similarity(x, x), 1.0)

    def test_cosine_similarity_orthogonal(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert cosine_similarity(a, b)[0] == pytest.approx(0.0)

    @given(st.integers(1, 8), st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_softmax_probability_axioms(self, rows, cols):
        x = np.random.default_rng(rows * 100 + cols).standard_normal((rows, cols))
        s = softmax(x)
        assert np.all(s >= 0)
        assert np.allclose(s.sum(axis=-1), 1.0, atol=1e-5)


class TestModules:
    def test_linear_shapes_and_bias(self):
        layer = Linear(8, 4, rng=0)
        out = layer(np.ones((3, 8), np.float32))
        assert out.shape == (3, 4)

    def test_linear_no_bias(self):
        layer = Linear(8, 4, bias=False, rng=0)
        assert layer.bias is None
        assert layer(np.zeros((2, 8), np.float32)) == pytest.approx(np.zeros((2, 4)))

    def test_linear_wrong_input_dim(self):
        layer = Linear(8, 4, rng=0)
        with pytest.raises(ValueError):
            layer(np.ones((3, 7), np.float32))

    def test_linear_flops(self):
        assert Linear(8, 4, rng=0).flops(10) == 2 * 10 * 8 * 4

    def test_linear_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 4)

    def test_layernorm_module(self):
        norm = LayerNorm(16)
        out = norm(np.random.default_rng(0).standard_normal((5, 16)))
        assert out.shape == (5, 16)

    def test_layernorm_invalid(self):
        with pytest.raises(ValueError):
            LayerNorm(0)

    def test_sequential(self):
        model = Sequential(Linear(8, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        out = model(np.ones((4, 8), np.float32))
        assert out.shape == (4, 2)

    def test_activations_are_modules(self):
        assert isinstance(ReLU(), Module) and isinstance(GELU(), Module)

    def test_feedforward(self):
        ffn = FeedForward(16, 32, rng=0)
        assert ffn(np.ones((2, 16), np.float32)).shape == (2, 16)
        assert ffn.flops(10) == 2 * (2 * 10 * 16 * 32)

    def test_feedforward_gelu(self):
        ffn = FeedForward(8, 8, activation="gelu", rng=0)
        assert isinstance(ffn.activation, GELU)

    def test_feedforward_unknown_activation(self):
        with pytest.raises(ValueError):
            FeedForward(8, 8, activation="swish")

    def test_named_parameters_discovery(self):
        ffn = FeedForward(8, 16, rng=0)
        names = ffn.named_parameters()
        assert any("linear1.weight" in n for n in names)
        assert ffn.num_parameters() == sum(p.size for p in ffn.parameters())

    def test_named_modules(self):
        ffn = FeedForward(8, 16, rng=0)
        modules = ffn.named_modules()
        assert any(isinstance(m, Linear) for m in modules.values())


class TestMultiHeadAttention:
    def test_self_attention_shape(self):
        attn = MultiHeadAttention(d_model=32, num_heads=4, rng=0)
        x = np.random.default_rng(0).standard_normal((10, 32)).astype(np.float32)
        assert attn(x).shape == (10, 32)

    def test_cross_attention_shape(self):
        attn = MultiHeadAttention(d_model=32, num_heads=4, rng=0)
        rng = np.random.default_rng(0)
        q = rng.standard_normal((5, 32)).astype(np.float32)
        kv = rng.standard_normal((12, 32)).astype(np.float32)
        assert attn(q, kv).shape == (5, 32)

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(d_model=30, num_heads=4)

    def test_flops_quadratic_in_tokens(self):
        attn = MultiHeadAttention(d_model=32, num_heads=4, rng=0)
        f1 = sum(attn.flops(10, 10).values())
        f2 = sum(attn.flops(20, 20).values())
        assert f2 > 2 * f1  # super-linear growth (the O(N^2) term)

    def test_attention_is_permutation_sensitive_to_values(self):
        attn = MultiHeadAttention(d_model=16, num_heads=2, rng=0)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 16)).astype(np.float32)
        y = attn(x)
        x2 = x.copy()
        x2[0] += 1.0
        assert not np.allclose(y, attn(x2))
