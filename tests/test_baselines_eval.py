"""Tests for the baselines (GPU, ASIC, Faster R-CNN, DeformConv) and eval metrics."""

import numpy as np
import pytest

from repro.baselines.asic import (
    BESAPU,
    DEFA_PUBLISHED,
    ELSA,
    SPATTEN,
    energy_efficiency_improvements,
    published_platforms,
)
from repro.baselines.deform_conv import (
    DeformConvWorkload,
    fmap_size_ratio,
    sampling_point_ratio_per_head,
)
from repro.baselines.faster_rcnn import FASTER_RCNN
from repro.baselines.gpu import GPUCostModel, RTX_2080TI, RTX_3090TI
from repro.eval.ap_estimator import CalibratedAPEstimator
from repro.eval.detection_metrics import average_precision, coco_style_map, match_detections
from repro.eval.fidelity import compare_outputs
from repro.nn.detection_head import DetectionResult, box_iou_matrix, nms
from repro.workloads.specs import get_workload


class TestGPUModel:
    def test_msgs_dominates_latency(self):
        """Fig. 1(b): MSGS + aggregation take over 60 % of MSDeformAttn latency."""
        spec = get_workload("deformable_detr", "paper")
        latency = GPUCostModel(RTX_3090TI).msdeform_layer_latency(spec)
        assert 0.55 < latency.msgs_fraction < 0.75

    def test_total_is_sum_of_parts(self):
        spec = get_workload("deformable_detr", "medium")
        latency = GPUCostModel(RTX_2080TI).msdeform_layer_latency(spec)
        assert latency.total_s == pytest.approx(
            latency.msgs_aggregation_s + latency.others_s
        )
        assert set(latency.as_dict()) >= {"msgs", "value_proj", "softmax"}

    def test_3090ti_faster_than_2080ti(self):
        spec = get_workload("deformable_detr", "paper")
        t2080 = GPUCostModel(RTX_2080TI).encoder_attention_latency(spec)
        t3090 = GPUCostModel(RTX_3090TI).encoder_attention_latency(spec)
        assert t3090 < t2080

    def test_energy_uses_board_power(self):
        spec = get_workload("deformable_detr", "small")
        model = GPUCostModel(RTX_3090TI)
        assert model.encoder_attention_energy(spec) == pytest.approx(
            model.encoder_attention_latency(spec) * RTX_3090TI.board_power_w
        )

    def test_effective_throughput_far_below_peak(self):
        """The efficiency gap that motivates the accelerator."""
        spec = get_workload("deformable_detr", "paper")
        eff = GPUCostModel(RTX_3090TI).effective_throughput_tops(spec)
        assert eff < 0.25 * RTX_3090TI.peak_fp32_tflops


class TestASICBaselines:
    def test_published_energy_efficiencies(self):
        assert ELSA.energy_efficiency_gops_w == pytest.approx(1122, rel=0.01)
        assert SPATTEN.energy_efficiency_gops_w == pytest.approx(1224, rel=0.01)
        assert BESAPU.energy_efficiency_gops_w == pytest.approx(1913, rel=0.01)
        assert DEFA_PUBLISHED.energy_efficiency_gops_w == pytest.approx(4188, rel=0.01)

    def test_published_improvements_match_paper(self):
        improvements = energy_efficiency_improvements(DEFA_PUBLISHED)
        assert improvements["ELSA"] == pytest.approx(3.7, abs=0.1)
        assert improvements["SpAtten"] == pytest.approx(3.4, abs=0.1)
        assert improvements["BESAPU"] == pytest.approx(2.2, abs=0.1)

    def test_platform_order(self):
        assert [p.name for p in published_platforms()] == ["ELSA", "SpAtten", "BESAPU"]

    def test_technology_normalization(self):
        scaled = BESAPU.normalized_to_technology(40)
        assert scaled.technology_nm == 40
        assert scaled.power_mw > BESAPU.power_mw

    def test_faster_rcnn_reference(self):
        assert FASTER_RCNN.coco_ap == 42.0
        assert FASTER_RCNN.ap_margin(46.9) == pytest.approx(4.9)


class TestDeformConvComparison:
    def test_fmap_ratio_near_paper_value(self):
        """Sec. 2.2: multi-scale fmaps are ~21.3x larger than single-scale ones."""
        spec = get_workload("deformable_detr", "paper")
        dcn = DeformConvWorkload.matching_single_scale(spec, stride=32)
        ratio = fmap_size_ratio(spec, dcn)
        assert 18.0 < ratio < 24.0

    def test_point_ratio(self):
        spec = get_workload("deformable_detr", "paper")
        dcn = DeformConvWorkload.matching_single_scale(spec)
        # N_l * N_p = 16 points per head vs 9 DeformConv taps
        assert sampling_point_ratio_per_head(spec, dcn) == pytest.approx(16 / 9)

    def test_workload_counts(self):
        dcn = DeformConvWorkload(10, 10, 64)
        assert dcn.points_per_output == 9
        assert dcn.total_sampling_points == 900


class TestDetectionMetrics:
    def test_iou_identity(self):
        box = np.array([[0.1, 0.1, 0.5, 0.5]])
        assert box_iou_matrix(box, box)[0, 0] == pytest.approx(1.0)

    def test_iou_disjoint(self):
        a = np.array([[0.0, 0.0, 0.2, 0.2]])
        b = np.array([[0.5, 0.5, 0.9, 0.9]])
        assert box_iou_matrix(a, b)[0, 0] == 0.0

    def test_nms_suppresses_duplicates(self):
        boxes = np.array([[0.1, 0.1, 0.5, 0.5], [0.11, 0.11, 0.51, 0.51], [0.6, 0.6, 0.9, 0.9]])
        keep = nms(boxes, np.array([0.9, 0.8, 0.7]), iou_threshold=0.5)
        assert len(keep) == 2 and 0 in keep

    def test_match_detections_perfect(self):
        gt = np.array([[0.1, 0.1, 0.4, 0.4]])
        match = match_detections(gt, np.array([0.9]), gt, iou_threshold=0.5)
        assert match.matched.all() and match.num_ground_truth == 1

    def test_average_precision_perfect_and_empty(self):
        gt = np.array([[0.1, 0.1, 0.4, 0.4]])
        perfect = average_precision([match_detections(gt, np.array([0.9]), gt)])
        assert perfect == pytest.approx(1.0, abs=0.02)
        none = average_precision([match_detections(np.zeros((0, 4)), np.zeros(0), gt)])
        assert none == 0.0

    def test_coco_map_perfect_detector(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.4, 0.4], [0.5, 0.5, 0.8, 0.9]])]
        gt_labels = [np.array([0, 1])]
        detections = [
            DetectionResult(boxes=gt_boxes[0], scores=np.array([0.9, 0.8]), labels=gt_labels[0])
        ]
        result = coco_style_map(detections, gt_boxes, gt_labels, num_classes=2)
        assert result["ap"] > 95.0
        assert result["ap50"] >= result["ap"] - 1e-6

    def test_coco_map_false_positive_lowers_ap(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.4, 0.4]])]
        gt_labels = [np.array([0])]
        detections = [
            DetectionResult(
                boxes=np.array([[0.1, 0.1, 0.4, 0.4], [0.6, 0.6, 0.9, 0.9]]),
                scores=np.array([0.5, 0.9]),
                labels=np.array([0, 0]),
            )
        ]
        result = coco_style_map(detections, gt_boxes, gt_labels, num_classes=1)
        assert result["ap"] < 95.0

    def test_detection_result_validation(self):
        with pytest.raises(ValueError):
            DetectionResult(boxes=np.zeros((2, 4)), scores=np.zeros(1), labels=np.zeros(2))
        assert DetectionResult.empty().num_detections == 0

    def test_scene_count_mismatch(self):
        with pytest.raises(ValueError):
            coco_style_map([DetectionResult.empty()], [], [], num_classes=1)


class TestFidelityAndAPEstimator:
    def test_identical_outputs(self):
        x = np.random.default_rng(0).standard_normal((10, 8))
        report = compare_outputs(x, x)
        assert report.relative_error == 0.0
        assert report.mean_cosine_similarity == pytest.approx(1.0)

    def test_perturbation_increases_error(self):
        x = np.random.default_rng(0).standard_normal((10, 8))
        small = compare_outputs(x, x + 0.01)
        large = compare_outputs(x, x + 1.0)
        assert large.relative_error > small.relative_error
        assert large.signal_to_noise_db < small.signal_to_noise_db

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compare_outputs(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_estimator_anchored_at_reference(self):
        estimator = CalibratedAPEstimator(reference_error=0.1, reference_drop=1.43)
        assert estimator.estimate_drop(0.1) == pytest.approx(1.43, rel=1e-6)

    def test_estimator_monotone_and_saturating(self):
        estimator = CalibratedAPEstimator(reference_error=0.1)
        drops = [estimator.estimate_drop(e) for e in (0.0, 0.05, 0.1, 1.0, 10.0)]
        assert drops[0] == 0.0
        assert all(b >= a for a, b in zip(drops, drops[1:]))
        assert drops[-1] <= estimator.ap_ceiling

    def test_estimator_estimate_record(self):
        estimator = CalibratedAPEstimator(reference_error=0.1)
        estimate = estimator.estimate(0.1, baseline_ap=46.9)
        assert estimate.estimated_ap == pytest.approx(46.9 - estimate.estimated_drop)

    def test_estimator_validation(self):
        with pytest.raises(ValueError):
            CalibratedAPEstimator(reference_error=0.0)
        with pytest.raises(ValueError):
            CalibratedAPEstimator(reference_error=0.1, reference_drop=100.0)
