"""Tests for the kernel-backend registry and the execution-plan arena (PR 5).

Covers the selection machinery (env var / config / per-call override), the
:class:`~repro.kernels.ExecutionPlan` buffer-reuse semantics, bit-identity of
the fused and compiled backends against the reference backend at the kernel
and encoder level, the no-aliasing-corruption guarantee across consecutive
plan-reusing forwards, and the steady-state allocation budget (via
``tracemalloc``).  The compiled C backend (PR 7) joins every bit-identity
suite when its extension is built (``COMPILED_AVAILABLE``); on hosts without
it the registry fallback itself is tested instead (``"compiled"`` must
resolve to ``"fused"`` with a ``RuntimeWarning``, never an ImportError).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.kernels import (
    COMPILED_AVAILABLE,
    KERNEL_BACKENDS,
    ExecutionPlan,
    compiled_backend,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.quant.quantizer import QuantSpec, fake_quantize
from repro.nn.encoder import DeformableEncoder
from repro.nn.grid_sample import (
    ms_deform_attn_from_compact_trace,
    multi_scale_neighbors_sparse,
)
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.utils.shapes import LevelShape, make_level_shapes

SHAPES = [LevelShape(8, 12), LevelShape(4, 6), LevelShape(2, 3)]
N_IN = sum(s.num_pixels for s in SHAPES)
N_Q, N_H, N_L, N_P, D_H = 29, 4, 3, 2, 8

#: Backends held to bit-identity against "reference" — the compiled backend
#: joins only where its extension is actually built.
FAST_BACKENDS = ("fused",) + (("compiled",) if COMPILED_AVAILABLE else ())


def _kernel_inputs(seed=0):
    rng = np.random.default_rng(seed)
    value = rng.standard_normal((N_IN, N_H, D_H)).astype(np.float32)
    locs = rng.uniform(-0.15, 1.15, (N_Q, N_H, N_L, N_P, 2)).astype(np.float32)
    attn = rng.uniform(0.0, 1.0, (N_Q, N_H, N_L, N_P)).astype(np.float32)
    mask = rng.uniform(0.0, 1.0, attn.shape) < 0.35
    return value, locs, attn, mask


def _encoder_fixture(num_layers=3, seed=0):
    shapes = make_level_shapes(24, 32, (4, 8, 16))
    encoder = DeformableEncoder(
        num_layers=num_layers,
        d_model=64,
        num_heads=4,
        num_levels=len(shapes),
        num_points=2,
        ffn_dim=128,
        rng=seed,
    )
    n_in = sum(s.num_pixels for s in shapes)
    rng = np.random.default_rng(seed + 1)
    features = rng.standard_normal((n_in, 64)).astype(np.float32)
    pos = sine_positional_encoding(shapes, 64)
    reference_points = make_reference_points(shapes)
    return shapes, encoder, features, pos, reference_points


class TestRegistry:
    def test_known_backends(self):
        assert KERNEL_BACKENDS == ("reference", "fused", "compiled")
        for name in ("reference", "fused"):
            assert resolve_backend(name).name == name
        if COMPILED_AVAILABLE:
            assert resolve_backend("compiled").name == "compiled"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="kernel backend"):
            set_backend("turbo")
        with pytest.raises(ValueError, match="kernel backend"):
            resolve_backend("turbo")

    def test_resolve_none_follows_process_default(self):
        with use_backend("reference"):
            assert resolve_backend(None).name == "reference"
        with use_backend("fused"):
            assert resolve_backend(None).name == "fused"

    def test_use_backend_restores_previous(self):
        before = get_backend().name
        with use_backend("reference"):
            assert get_backend().name == "reference"
        assert get_backend().name == before

    def test_backend_object_passes_through(self):
        backend = resolve_backend("fused")
        assert resolve_backend(backend) is backend

    def test_config_validates_backend_name(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            DEFAConfig(kernel_backend="turbo")
        assert DEFAConfig(kernel_backend="reference").kernel_backend == "reference"


class TestExecutionPlan:
    def test_buffer_reuse_and_growth(self):
        plan = ExecutionPlan()
        a = plan.buffer("x", (16, 4), np.float32)
        b = plan.buffer("x", (8, 4), np.float32)  # smaller: reuses capacity
        assert b.base is a.base or b.base is a  # same storage
        assert plan.grows == 1 and plan.hits == 1
        c = plan.buffer("x", (64, 4), np.float32)  # larger: reallocates
        assert plan.grows == 2
        assert c.shape == (64, 4)

    def test_distinct_names_and_dtypes_get_distinct_storage(self):
        plan = ExecutionPlan()
        a = plan.buffer("x", (8,), np.float32)
        b = plan.buffer("y", (8,), np.float32)
        d = plan.buffer("x", (8,), np.float64)
        assert not np.shares_memory(a, b)
        assert not np.shares_memory(a, d)

    def test_retention_cap_serves_large_requests_fresh(self):
        plan = ExecutionPlan(max_buffer_bytes=64)
        small = plan.buffer("x", (8,), np.float32)  # 32 bytes: cached
        assert np.shares_memory(small, plan.buffer("x", (8,), np.float32))
        big_a = plan.buffer("x", (64,), np.float32)  # 256 bytes: transient
        big_b = plan.buffer("x", (64,), np.float32)
        assert not np.shares_memory(big_a, big_b)
        assert plan.allocated_bytes == 32  # only the small buffer is retained

    def test_fused_scratch_does_not_pin_large_workloads(self):
        scratch = resolve_backend("fused")._scratch
        assert scratch.max_buffer_bytes is not None

    def test_zeros_and_take(self):
        plan = ExecutionPlan()
        z = plan.zeros("z", (5, 3))
        assert not z.any()
        src = np.arange(20.0, dtype=np.float32).reshape(10, 2)
        got = plan.take("t", src, np.array([1, 3, 5]))
        np.testing.assert_array_equal(got, src[[1, 3, 5]])


class TestFusedBitIdentity:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_compact_kernel_backends_bit_identical(self, backend):
        value, locs, attn, mask = _kernel_inputs()
        trace = multi_scale_neighbors_sparse(SHAPES, locs, point_mask=mask)
        ref = ms_deform_attn_from_compact_trace(value, trace, attn, backend="reference")
        fast = ms_deform_attn_from_compact_trace(value, trace, attn, backend=backend)
        assert np.array_equal(ref, fast)

    def test_fused_trace_construction_bit_identical(self):
        _, locs, _, mask = _kernel_inputs(seed=3)
        ref = multi_scale_neighbors_sparse(SHAPES, locs, point_mask=mask)
        fused = multi_scale_neighbors_sparse(
            SHAPES, locs, point_mask=mask, plan=ExecutionPlan()
        )
        for field in ("kept", "levels", "flat_indices", "weights", "valid"):
            assert np.array_equal(getattr(ref, field), getattr(fused, field)), field

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("sparse_mode", ["dense", "sparse", "auto"])
    def test_encoder_backends_bit_identical(self, sparse_mode, backend):
        shapes, encoder, features, pos, reference_points = _encoder_fixture()
        config = DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
        ref_runner = DEFAEncoderRunner(
            encoder, config, sparse_mode=sparse_mode, backend="reference"
        )
        fast_runner = DEFAEncoderRunner(
            encoder, config, sparse_mode=sparse_mode, backend=backend
        )
        ref = ref_runner.forward(features, pos, reference_points, shapes)
        fast = fast_runner.forward(features, pos, reference_points, shapes)
        assert np.array_equal(ref.memory, fast.memory)
        for a, b in zip(ref.fmap_masks, fast.fmap_masks):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_batched_encoder_backends_bit_identical(self, backend):
        shapes, encoder, features, pos, reference_points = _encoder_fixture()
        batch = np.stack([features, features * 0.5, features + 0.1])
        config = DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
        ref = DEFAEncoderRunner(encoder, config, sparse_mode="sparse", backend="reference")
        fast = DEFAEncoderRunner(encoder, config, sparse_mode="sparse", backend=backend)
        a = ref.forward_batched(batch, pos, reference_points, shapes)
        b = fast.forward_batched(batch, pos, reference_points, shapes)
        assert np.array_equal(a.memory, b.memory)


class TestPlanReuseAcrossForwards:
    def test_no_aliasing_corruption_across_forwards_with_different_masks(self):
        """Results of forward i must survive forward i+1 untouched.

        Two forwards with different inputs produce different FWP masks and
        keep counts, so every arena buffer is rewritten at a different
        occupancy — any result aliasing a plan buffer would be corrupted.
        """
        shapes, encoder, features, pos, reference_points = _encoder_fixture()
        config = DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
        runner = DEFAEncoderRunner(encoder, config, sparse_mode="sparse", backend="fused")
        first = runner.forward(features, pos, reference_points, shapes)
        memory_snapshot = first.memory.copy()
        mask_snapshots = [m.copy() for m in first.fmap_masks]
        stats_snapshot = [(s.pixels_kept, s.points_kept) for s in first.layer_stats]

        rng = np.random.default_rng(99)
        other = rng.standard_normal(features.shape).astype(np.float32) * 2.0
        second = runner.forward(other, pos, reference_points, shapes)

        np.testing.assert_array_equal(first.memory, memory_snapshot)
        for kept, snap in zip(first.fmap_masks, mask_snapshots):
            np.testing.assert_array_equal(kept, snap)
        assert [(s.pixels_kept, s.points_kept) for s in first.layer_stats] == stats_snapshot
        # and the second result is the same as a fresh runner would produce
        fresh = DEFAEncoderRunner(encoder, config, sparse_mode="sparse", backend="fused")
        again = fresh.forward(other, pos, reference_points, shapes)
        np.testing.assert_array_equal(second.memory, again.memory)

    def test_plans_keyed_by_shape_signature_and_batch(self):
        shapes, encoder, features, pos, reference_points = _encoder_fixture()
        config = DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
        runner = DEFAEncoderRunner(encoder, config, sparse_mode="sparse", backend="fused")
        runner.forward(features, pos, reference_points, shapes)
        runner.forward_batched(
            np.stack([features, features]), pos, reference_points, shapes
        )
        keys = set(runner._plans)
        assert len(keys) == 2  # (signature, None) and (signature, 2)
        batch_sizes = {key[1] for key in keys}
        assert batch_sizes == {None, 2}

    def test_plan_cache_is_lru_bounded(self):
        shapes, encoder, features, pos, reference_points = _encoder_fixture()
        config = DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
        runner = DEFAEncoderRunner(encoder, config, sparse_mode="sparse", backend="fused")
        first_key = (tuple(s.as_tuple() for s in shapes), None)
        runner.forward(features, pos, reference_points, shapes)
        # Synthetic distinct signatures fill the cache past the bound; the
        # real signature is refreshed (LRU) halfway, so it must survive.
        for i in range(runner.MAX_EXECUTION_PLANS - 1):
            runner.execution_plan(shapes, batch_size=100 + i)
            if i == runner.MAX_EXECUTION_PLANS // 2:
                runner.execution_plan(shapes, batch_size=None)  # refresh
        assert first_key in runner._plans
        for i in range(runner.MAX_EXECUTION_PLANS + 1):
            runner.execution_plan(shapes, batch_size=200 + i)
        assert len(runner._plans) == runner.MAX_EXECUTION_PLANS
        assert first_key not in runner._plans  # evicted least-recently-used
        # A dropped signature simply re-warms: the forward still works.
        result = runner.forward(features, pos, reference_points, shapes)
        assert result.memory.shape == features.shape

    def test_collect_details_disables_the_plan(self):
        """Detailed outputs are handed to the caller, so they must not live
        in arena buffers; the runner falls back to fresh allocation."""
        shapes, encoder, features, pos, reference_points = _encoder_fixture()
        config = DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
        runner = DEFAEncoderRunner(encoder, config, sparse_mode="sparse", backend="fused")
        detailed = runner.forward(
            features, pos, reference_points, shapes, collect_details=True
        )
        kept_output = detailed.layer_outputs[1].output.copy()
        kept_weights = detailed.layer_outputs[1].attention_weights.copy()
        runner.forward(features * 1.5, pos, reference_points, shapes)
        np.testing.assert_array_equal(detailed.layer_outputs[1].output, kept_output)
        np.testing.assert_array_equal(
            detailed.layer_outputs[1].attention_weights, kept_weights
        )


class TestAllocationBudget:
    def test_steady_state_fused_forward_allocates_far_less_than_reference(self):
        """The tracemalloc smoke check of the zero-allocation plans.

        After one warm forward per signature the arena is at its high-water
        mark, so a steady-state fused forward's peak *traced* allocation
        (tracemalloc only sees allocations made after ``start()``) must stay
        under a fixed budget — a small multiple of the input size — while
        the reference backend allocates every intermediate freshly.
        """
        shapes, encoder, features, pos, reference_points = _encoder_fixture()
        config = DEFAConfig(fwp_k=1.0, enable_query_pruning=True)

        def peak_bytes(runner):
            runner.forward(features, pos, reference_points, shapes)  # warm
            tracemalloc.start()
            runner.forward(features, pos, reference_points, shapes)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        fused_peak = peak_bytes(
            DEFAEncoderRunner(encoder, config, sparse_mode="sparse", backend="fused")
        )
        reference_peak = peak_bytes(
            DEFAEncoderRunner(encoder, config, sparse_mode="sparse", backend="reference")
        )
        # Fixed budget: with the PAP/fold records in arena buffers (PR 9) the
        # only escaping arrays are the final memory copy and the per-block FWP
        # masks, plus transient NumPy reductions (argmax, flatnonzero); the
        # budget tightened from 24x to 12x the input when the last per-block
        # PAP/fold allocations moved into the plan.
        input_bytes = features.nbytes
        assert fused_peak < 12 * input_bytes, (
            f"steady-state fused forward peaked at {fused_peak} traced bytes "
            f"(budget {12 * input_bytes})"
        )
        assert fused_peak < reference_peak / 2, (
            f"fused peak {fused_peak} not well below reference peak {reference_peak}"
        )


class TestCompiledFallback:
    """The no-toolchain path: ``"compiled"`` must resolve to ``"fused"`` with
    a ``RuntimeWarning`` at every selection layer — never an ImportError —
    so configs and environment variables naming it stay valid everywhere."""

    def test_resolve_falls_back_to_fused_with_warning(self, monkeypatch):
        monkeypatch.setattr(compiled_backend, "COMPILED_AVAILABLE", False)
        with pytest.warns(RuntimeWarning, match="falling back to 'fused'"):
            backend = resolve_backend("compiled")
        assert backend.name == "fused"

    def test_set_backend_falls_back(self, monkeypatch):
        from repro.kernels import registry

        monkeypatch.setattr(compiled_backend, "COMPILED_AVAILABLE", False)
        before = registry.get_backend()
        try:
            with pytest.warns(RuntimeWarning, match="not available"):
                assert set_backend("compiled").name == "fused"
            assert get_backend().name == "fused"
        finally:
            registry._current = before

    def test_runner_with_compiled_config_serves_via_fused(self, monkeypatch):
        monkeypatch.setattr(compiled_backend, "COMPILED_AVAILABLE", False)
        config = DEFAConfig(kernel_backend="compiled")  # name stays valid
        shapes, encoder, features, pos, reference_points = _encoder_fixture(
            num_layers=1
        )
        runner = DEFAEncoderRunner(encoder, config, sparse_mode="sparse")
        with pytest.warns(RuntimeWarning, match="falling back to 'fused'"):
            assert runner.resolved_backend().name == "fused"
            assert runner.plan_stats()["backend"] == "fused"
            result = runner.forward(features, pos, reference_points, shapes)
        assert result.memory.shape == features.shape

    @pytest.mark.skipif(not COMPILED_AVAILABLE, reason="compiled library not built")
    def test_plan_stats_report_the_compiled_backend_when_available(self):
        shapes, encoder, features, pos, reference_points = _encoder_fixture(
            num_layers=1
        )
        runner = DEFAEncoderRunner(
            encoder, DEFAConfig(kernel_backend="compiled"), sparse_mode="sparse"
        )
        assert runner.plan_stats()["backend"] == "compiled"
        runner.forward(features, pos, reference_points, shapes)
        stats = runner.plan_stats()
        assert stats["backend"] == "compiled" and stats["plans"] >= 1


@pytest.mark.skipif(not COMPILED_AVAILABLE, reason="compiled library not built")
class TestCompiledFakeQuantize:
    """Unit coverage of the C fake-quantize dispatch in the projection
    helpers: every supported scale layout is bit-identical to the numpy
    in-place chain; unsupported layouts return ``None`` (numpy fallback)."""

    SPEC = QuantSpec(num_bits=12)

    def _numpy_chain(self, x, max_abs):
        out = np.empty_like(x)
        scratch = np.empty(x.shape, dtype=np.float64)
        fake_quantize(x, self.SPEC, max_abs=max_abs, out=out, scratch=scratch)
        return out

    def _compiled_chain(self, x, max_abs):
        backend = resolve_backend("compiled")
        out = np.empty_like(x)
        return backend.fake_quantize_into(x, self.SPEC, max_abs, out)

    @pytest.mark.parametrize(
        "shape,axis",
        [
            ((13, 7), None),  # scalar full-array scale
            ((3, 11, 5), (1, 2)),  # per-image (B, 1, 1) keepdims scale
            ((17, 6), (1,)),  # per-row (rows, 1) scale
        ],
    )
    def test_supported_layouts_bit_identical(self, shape, axis):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(shape).astype(np.float32) * 3.0
        if axis is None:
            max_abs = float(np.max(np.abs(x)))
        else:
            max_abs = np.max(np.abs(x), axis=axis, keepdims=True)
        expected = self._numpy_chain(x, max_abs)
        got = self._compiled_chain(x, max_abs)
        assert got is not None
        assert np.array_equal(
            expected.view(np.uint32), got.view(np.uint32)
        )  # bitwise, ±0.0 included

    def test_unsupported_layouts_decline(self):
        rng = np.random.default_rng(6)
        backend = resolve_backend("compiled")
        # Middle-axis broadcast (per-channel-like) scale: not row-wise.
        x = rng.standard_normal((3, 4, 6)).astype(np.float32)
        max_abs = np.max(np.abs(x), axis=1, keepdims=True)  # (3, 1, 6)
        assert backend.fake_quantize_into(x, self.SPEC, max_abs, np.empty_like(x)) is None
        # Non-contiguous input.
        base = rng.standard_normal((8, 10)).astype(np.float32)
        strided = base[:, ::2]
        out = np.empty(strided.shape, dtype=np.float32)
        assert backend.fake_quantize_into(strided, self.SPEC, 1.0, out) is None
        # Wrong dtype.
        x64 = rng.standard_normal((4, 4))
        assert (
            backend.fake_quantize_into(x64, self.SPEC, 1.0, np.empty((4, 4), np.float32))
            is None
        )
