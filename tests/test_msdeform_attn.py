"""Tests for the MSDeformAttn operator, encoder layers and positional utilities."""

import numpy as np
import pytest

from repro.nn.encoder import DeformableEncoder, DeformableEncoderLayer
from repro.nn.msdeform_attn import MSDeformAttn
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.utils.shapes import total_pixels


class TestPositional:
    def test_reference_points_shape_and_range(self, tiny_shapes):
        ref = make_reference_points(tiny_shapes)
        n_in = total_pixels(tiny_shapes)
        assert ref.shape == (n_in, len(tiny_shapes), 2)
        assert ref.min() > 0.0 and ref.max() < 1.0

    def test_reference_points_first_pixel_center(self, tiny_shapes):
        ref = make_reference_points(tiny_shapes)
        shape = tiny_shapes[0]
        assert ref[0, 0, 0] == pytest.approx(0.5 / shape.width)
        assert ref[0, 0, 1] == pytest.approx(0.5 / shape.height)

    def test_reference_points_same_across_levels(self, tiny_shapes):
        ref = make_reference_points(tiny_shapes)
        assert np.allclose(ref[:, 0, :], ref[:, -1, :])

    def test_empty_shapes_raises(self):
        with pytest.raises(ValueError):
            make_reference_points([])

    def test_sine_encoding_shape(self, tiny_shapes):
        pos = sine_positional_encoding(tiny_shapes, 32)
        assert pos.shape == (total_pixels(tiny_shapes), 32)
        assert np.all(np.isfinite(pos))

    def test_sine_encoding_dim_constraint(self, tiny_shapes):
        with pytest.raises(ValueError):
            sine_positional_encoding(tiny_shapes, 30)

    def test_sine_encoding_distinguishes_positions(self, tiny_shapes):
        pos = sine_positional_encoding(tiny_shapes, 32)
        assert not np.allclose(pos[0], pos[1])


class TestMSDeformAttn:
    def test_invalid_head_count(self):
        with pytest.raises(ValueError):
            MSDeformAttn(d_model=30, num_heads=4)

    def test_forward_shape(self, tiny_attn, tiny_shapes, tiny_inputs):
        query, ref, value = tiny_inputs
        out = tiny_attn(query, ref, value, tiny_shapes)
        assert out.shape == (query.shape[0], 32)
        assert np.all(np.isfinite(out))

    def test_forward_detailed_intermediates(self, tiny_attn, tiny_shapes, tiny_inputs):
        query, ref, value = tiny_inputs
        detail = tiny_attn.forward_detailed(query, ref, value, tiny_shapes, with_trace=True)
        n_q = query.shape[0]
        assert detail.attention_weights.shape == (n_q, 4, 3, 2)
        assert detail.sampling_locations.shape == (n_q, 4, 3, 2, 2)
        assert detail.value.shape == (value.shape[0], 4, 8)
        assert detail.trace is not None
        assert np.allclose(detail.output, tiny_attn(query, ref, value, tiny_shapes), atol=1e-5)

    def test_attention_probabilities_normalized(self, tiny_attn, tiny_inputs):
        query, _, _ = tiny_inputs
        probs = tiny_attn.attention_probabilities(query)
        sums = probs.reshape(query.shape[0], 4, -1).sum(axis=-1)
        assert np.allclose(sums, 1.0, atol=1e-5)

    def test_sampling_locations_follow_offset_convention(self, tiny_attn, tiny_shapes, tiny_inputs):
        query, ref, _ = tiny_inputs
        offsets = tiny_attn.project_sampling_offsets(query)
        locs = tiny_attn.compute_sampling_locations(ref, offsets, tiny_shapes)
        # Deformable DETR convention: location = reference + offset / (W_l, H_l).
        normalizer = np.array([[s.width, s.height] for s in tiny_shapes], dtype=np.float32)
        expected = ref[:, None, :, None, :] + offsets / normalizer[None, None, :, None, :]
        assert np.allclose(locs, expected, atol=1e-5)

    def test_wrong_value_length_raises(self, tiny_attn, tiny_shapes, tiny_inputs):
        query, ref, value = tiny_inputs
        with pytest.raises(ValueError):
            tiny_attn(query, ref, value[:-1], tiny_shapes)

    def test_wrong_level_count_raises(self, tiny_attn, tiny_shapes, tiny_inputs):
        query, ref, _ = tiny_inputs
        offsets = tiny_attn.project_sampling_offsets(query)
        with pytest.raises(ValueError):
            tiny_attn.compute_sampling_locations(ref, offsets, tiny_shapes[:2])

    def test_flops_breakdown_keys(self, tiny_attn):
        flops = tiny_attn.flops(num_queries=100, num_tokens=100)
        for key in ("value_proj", "sampling_offsets", "attention_weights", "output_proj", "msgs"):
            assert flops[key] > 0

    def test_zero_value_gives_bias_only_output(self, tiny_attn, tiny_shapes, tiny_inputs):
        query, ref, value = tiny_inputs
        out = tiny_attn(query, ref, np.zeros_like(value), tiny_shapes)
        # With zero values, the head outputs collapse to the value-projection
        # bias aggregated by probabilities summing to 1, then output proj.
        assert out.shape == (query.shape[0], 32)
        assert np.allclose(out, out[0], atol=1e-4)


class TestEncoder:
    def _inputs(self, shapes, d_model=32, seed=0):
        rng = np.random.default_rng(seed)
        n_in = total_pixels(shapes)
        src = rng.standard_normal((n_in, d_model)).astype(np.float32)
        pos = sine_positional_encoding(shapes, d_model)
        ref = make_reference_points(shapes)
        return src, pos, ref

    def test_layer_forward(self, tiny_shapes):
        layer = DeformableEncoderLayer(
            d_model=32, num_heads=4, num_levels=3, num_points=2, ffn_dim=64, rng=0
        )
        src, pos, ref = self._inputs(tiny_shapes)
        out = layer(src, pos, ref, tiny_shapes)
        assert out.shape == src.shape
        assert not np.allclose(out, src)

    def test_layer_flops_contains_ffn(self, tiny_shapes):
        layer = DeformableEncoderLayer(
            d_model=32, num_heads=4, num_levels=3, num_points=2, ffn_dim=64, rng=0
        )
        assert layer.flops(100)["ffn"] == 2 * 2 * 100 * 32 * 64

    def test_encoder_stacks_layers(self, tiny_shapes):
        encoder = DeformableEncoder(
            num_layers=2, d_model=32, num_heads=4, num_levels=3, num_points=2, ffn_dim=64, rng=0
        )
        src, pos, ref = self._inputs(tiny_shapes)
        detailed = encoder.forward_detailed(src, pos, ref, tiny_shapes)
        assert len(detailed.layers) == 2
        assert np.allclose(detailed.memory, encoder(src, pos, ref, tiny_shapes), atol=1e-5)

    def test_encoder_invalid_depth(self):
        with pytest.raises(ValueError):
            DeformableEncoder(num_layers=0)

    def test_encoder_layers_have_distinct_weights(self, tiny_shapes):
        encoder = DeformableEncoder(
            num_layers=2, d_model=32, num_heads=4, num_levels=3, num_points=2, ffn_dim=64, rng=0
        )
        w0 = encoder.layers[0].self_attn.value_proj.weight
        w1 = encoder.layers[1].self_attn.value_proj.weight
        assert not np.allclose(w0, w1)

    def test_encoder_flops_scale_with_depth(self, tiny_shapes):
        kwargs = dict(d_model=32, num_heads=4, num_levels=3, num_points=2, ffn_dim=64, rng=0)
        f1 = sum(DeformableEncoder(num_layers=1, **kwargs).flops(50).values())
        f2 = sum(DeformableEncoder(num_layers=2, **kwargs).flops(50).values())
        assert f2 == 2 * f1
