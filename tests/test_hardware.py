"""Tests for the DEFA hardware simulator: config, memories, banking, PE array,
dataflow, energy, area and the top-level simulator."""

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.hardware.area import area_model
from repro.hardware.banking import (
    BankingScheme,
    simulate_bank_conflicts,
    throughput_boost,
)
from repro.hardware.cacti import SRAMMacroModel
from repro.hardware.config import HardwareConfig
from repro.hardware.dataflow import LayerWorkload, build_layer_schedule
from repro.hardware.dram import HBM2Model
from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.hardware.fmap_reuse import analyze_fmap_reuse
from repro.hardware.mask_units import mask_unit_report
from repro.hardware.pe_array import ReconfigurablePEArray
from repro.hardware.simulator import DEFASimulator
from repro.hardware.sram import BankedSRAM


class TestHardwareConfig:
    def test_defaults_match_paper_design_point(self):
        config = HardwareConfig()
        assert config.technology_nm == 40
        assert config.frequency_mhz == 400.0
        assert config.precision_bits == 12
        assert config.num_banks == 16
        assert config.peak_gops == pytest.approx(204.8)

    def test_bytes_per_element(self):
        assert HardwareConfig().bytes_per_element == 1.5

    def test_scaling_reaches_target(self):
        for target in (13.3, 40.0):
            scaled = HardwareConfig().scaled_to(target)
            assert scaled.peak_gops == pytest.approx(target * 1e3, rel=0.15)

    def test_scaling_invalid(self):
        with pytest.raises(ValueError):
            HardwareConfig().scaled_to(0)


class TestMemoryModels:
    def test_cacti_area_monotone_in_capacity(self):
        small = SRAMMacroModel(capacity_bytes=8 * 1024)
        large = SRAMMacroModel(capacity_bytes=64 * 1024)
        assert large.area_mm2() > small.area_mm2()
        assert large.energy_per_access_pj() > small.energy_per_access_pj()

    def test_cacti_invalid(self):
        with pytest.raises(ValueError):
            SRAMMacroModel(capacity_bytes=0)

    def test_dram_time_and_energy(self):
        dram = HBM2Model()
        assert dram.transfer_time_s(256e9) == pytest.approx(1.0)
        assert dram.access_energy_j(1.0) == pytest.approx(8 * 1.2e-12)

    def test_dram_burst_rounding(self):
        dram = HBM2Model(burst_bytes=32)
        assert dram.effective_bytes(10, num_transfers=4) == 128
        assert dram.effective_bytes(1000, num_transfers=4) == 1000

    def test_banked_sram_bulk_and_conflicts(self):
        sram = BankedSRAM(num_banks=4, bank_capacity_bytes=1024)
        sram.record_bulk(reads=10, writes=5)
        assert sram.stats.total_accesses == 15
        # two requests to the same bank, different addresses -> 2 cycles
        cycles = sram.issue_parallel_reads(np.array([0, 0, 1]), np.array([1, 2, 1]))
        assert cycles == 2
        assert sram.stats.conflict_cycles == 1

    def test_banked_sram_same_address_broadcast(self):
        sram = BankedSRAM(num_banks=4)
        cycles = sram.issue_parallel_reads(np.array([2, 2]), np.array([7, 7]))
        assert cycles == 1

    def test_banked_sram_bad_bank(self):
        sram = BankedSRAM(num_banks=2)
        with pytest.raises(ValueError):
            sram.issue_parallel_reads(np.array([5]), np.array([0]))


class TestBanking:
    def test_inter_level_is_conflict_free(self, tiny_defa_output):
        report = simulate_bank_conflicts(tiny_defa_output.trace, BankingScheme.INTER_LEVEL)
        assert report.conflict_cycles == 0
        assert report.cycles_per_group == pytest.approx(1.0)

    def test_intra_level_has_conflicts(self, tiny_defa_output):
        report = simulate_bank_conflicts(tiny_defa_output.trace, BankingScheme.INTRA_LEVEL)
        assert report.conflict_cycles > 0
        assert report.cycles_per_group > 1.0

    def test_throughput_boost_above_one(self, tiny_defa_output):
        intra = simulate_bank_conflicts(tiny_defa_output.trace, BankingScheme.INTRA_LEVEL)
        inter = simulate_bank_conflicts(tiny_defa_output.trace, BankingScheme.INTER_LEVEL)
        assert throughput_boost(intra, inter) > 1.5

    def test_point_mask_reduces_active_points(self, tiny_defa_output):
        dense = simulate_bank_conflicts(tiny_defa_output.trace, BankingScheme.INTER_LEVEL)
        pruned = simulate_bank_conflicts(
            tiny_defa_output.trace,
            BankingScheme.INTER_LEVEL,
            point_mask=tiny_defa_output.point_mask,
        )
        assert pruned.active_points < dense.active_points

    def test_scheme_accepts_string(self, tiny_defa_output):
        report = simulate_bank_conflicts(tiny_defa_output.trace, "intra_level")
        assert report.scheme is BankingScheme.INTRA_LEVEL


class TestFmapReuse:
    def test_reuse_reduces_traffic(self, tiny_defa_output, tiny_spec):
        report = analyze_fmap_reuse(
            tiny_defa_output.trace,
            d_model=tiny_spec.model.d_model,
            num_heads=tiny_spec.model.num_heads,
            bytes_per_element=1.5,
            point_mask=tiny_defa_output.point_mask,
        )
        assert report.unique_pixels_accessed <= tiny_spec.num_tokens
        assert report.dram_bytes_with_reuse < report.dram_bytes_no_reuse
        assert 0.0 < report.dram_traffic_saving < 1.0
        assert report.reuse_factor > 1.0

    def test_invalid_heads(self, tiny_defa_output):
        with pytest.raises(ValueError):
            analyze_fmap_reuse(tiny_defa_output.trace, d_model=10, num_heads=3, bytes_per_element=1.5)


class TestPEArray:
    def test_mm_cycles(self):
        pe = ReconfigurablePEArray(HardwareConfig())
        assert pe.mm_cycles(256) == 1
        assert pe.mm_cycles(257) == 2
        assert pe.mm_cycles(0) == 0

    def test_matmul_functional(self):
        pe = ReconfigurablePEArray(HardwareConfig())
        v = np.arange(16, dtype=np.float64)
        tile = np.eye(16)
        assert np.allclose(pe.matmul(v, tile), v)

    def test_ba_cycles_scale_with_conflicts(self):
        pe = ReconfigurablePEArray(HardwareConfig())
        base = pe.ba_cycles(1000, 32, conflict_factor=1.0)
        stalled = pe.ba_cycles(1000, 32, conflict_factor=3.0)
        assert stalled == pytest.approx(3 * base, rel=0.01)

    def test_ba_invalid(self):
        pe = ReconfigurablePEArray(HardwareConfig())
        with pytest.raises(ValueError):
            pe.ba_cycles(10, 32, conflict_factor=0.5)

    def test_energy_positive(self):
        pe = ReconfigurablePEArray(HardwareConfig())
        usage = pe.mm_usage(1000).merged_with(pe.ba_usage(10, 32))
        assert pe.energy_j(usage) > 0


class TestDataflowAndEnergy:
    def _workload(self, point_keep=0.2, pixel_keep=0.6):
        return LayerWorkload.from_ratios(
            num_queries=128,
            num_tokens=128,
            d_model=256,
            num_heads=8,
            num_levels=4,
            num_points=4,
            point_keep_ratio=point_keep,
            pixel_keep_ratio=pixel_keep,
            unique_pixel_ratio=0.6,
        )

    def test_dense_factory(self):
        dense = LayerWorkload.dense(10, 10, 64, 4, 4, 4)
        assert dense.point_keep_ratio == 1.0 and dense.pixel_keep_ratio == 1.0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            LayerWorkload.from_ratios(10, 10, 64, 4, 4, 4, point_keep_ratio=1.5)

    def test_schedule_has_expected_phases(self):
        schedule = build_layer_schedule(self._workload(), HardwareConfig())
        names = [p.name for p in schedule.phases]
        for expected in (
            "attention_weights_mm",
            "softmax",
            "sampling_offsets_mm",
            "value_proj_mm",
            "msgs_aggregation_ba",
            "output_proj_mm",
        ):
            assert expected in names
        assert schedule.compute_cycles > 0
        with pytest.raises(KeyError):
            schedule.phase("nonexistent")

    def test_pruning_reduces_cycles(self):
        dense = build_layer_schedule(
            LayerWorkload.dense(128, 128, 256, 8, 4, 4), HardwareConfig()
        )
        pruned = build_layer_schedule(self._workload(), HardwareConfig())
        assert pruned.compute_cycles < dense.compute_cycles
        assert pruned.dram_bytes < dense.dram_bytes

    def test_unfused_adds_spill_phase(self):
        fused = build_layer_schedule(self._workload(), HardwareConfig(), fuse_msgs_aggregation=True)
        unfused = build_layer_schedule(
            self._workload(), HardwareConfig(), fuse_msgs_aggregation=False
        )
        assert unfused.dram_bytes > fused.dram_bytes
        assert any(p.name == "msgs_sampling_value_spill" for p in unfused.phases)

    def test_no_reuse_increases_fetch_traffic(self):
        reuse = build_layer_schedule(self._workload(), HardwareConfig(), fmap_reuse=True)
        no_reuse = build_layer_schedule(self._workload(), HardwareConfig(), fmap_reuse=False)
        assert no_reuse.phase("msgs_fmap_fetch").dram_read_bytes > reuse.phase(
            "msgs_fmap_fetch"
        ).dram_read_bytes

    def test_intra_banking_slower(self):
        workload = LayerWorkload.from_ratios(
            128, 128, 256, 8, 4, 4, point_keep_ratio=0.5, pixel_keep_ratio=1.0,
            intra_conflict_factor=3.0,
        )
        inter = build_layer_schedule(workload, HardwareConfig(), banking="inter_level")
        intra = build_layer_schedule(workload, HardwareConfig(), banking="intra_level")
        assert intra.phase("msgs_aggregation_ba").cycles > inter.phase("msgs_aggregation_ba").cycles

    def test_energy_breakdown_positive(self):
        schedule = build_layer_schedule(self._workload(), HardwareConfig())
        energy = EnergyModel(HardwareConfig()).layer_energy(schedule)
        assert energy.dram_j > 0 and energy.sram_j > 0 and energy.logic_j > 0
        fracs = energy.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_energy_merge(self):
        a = EnergyBreakdown(1.0, 2.0, 3.0)
        b = a.merged_with(a)
        assert b.total_j == 12.0

    def test_mask_unit_report(self):
        report = mask_unit_report(1000, 16000, 64000, 1e6, HardwareConfig())
        assert report.cycles == 4000
        assert report.energy_j > 0
        with pytest.raises(ValueError):
            mask_unit_report(-1, 0, 0, 0, HardwareConfig())


class TestAreaModel:
    def test_total_close_to_paper(self):
        area = area_model(HardwareConfig())
        assert 2.0 < area.total_mm2 < 3.5
        fracs = area.fractions()
        assert fracs["sram"] > fracs["pe_softmax"] > fracs["others"]
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_scaled_config_is_larger(self):
        base = area_model(HardwareConfig()).total_mm2
        scaled = area_model(HardwareConfig().scaled_to(13.3)).total_mm2
        assert scaled > 5 * base


class TestSimulator:
    def test_simulate_from_ratios(self, tiny_spec):
        sim = DEFASimulator()
        report = sim.simulate_from_ratios(tiny_spec, point_keep_ratio=0.2, pixel_keep_ratio=0.6)
        assert report.time_s > 0
        assert report.energy.total_j > 0
        assert len(report.layers) == tiny_spec.model.num_encoder_layers
        assert report.effective_tops > 0
        assert report.chip_power_w < report.total_power_w

    def test_first_layer_is_unmasked(self, tiny_spec):
        sim = DEFASimulator()
        workloads = sim.workloads_from_ratios(tiny_spec, 0.2, 0.6)
        assert workloads[0].pixel_keep_ratio == 1.0
        assert workloads[1].pixel_keep_ratio == pytest.approx(0.6, abs=0.01)

    def test_workload_from_defa_output(self, tiny_defa_output):
        sim = DEFASimulator()
        workload = sim.layer_workload_from_defa(tiny_defa_output)
        assert workload.points_kept == tiny_defa_output.stats.points_kept
        assert workload.intra_conflict_factor >= workload.inter_conflict_factor
        report = sim.simulate_layer(workload)
        assert report.time_s > 0

    def test_pruning_speeds_up_and_saves_energy(self, tiny_spec):
        sim = DEFASimulator()
        dense = sim.simulate_from_ratios(tiny_spec, 1.0, 1.0)
        pruned = sim.simulate_from_ratios(tiny_spec, 0.16, 0.57)
        assert pruned.time_s < dense.time_s
        assert pruned.energy.total_j < dense.energy.total_j

    def test_fusion_and_reuse_save_energy(self, tiny_spec):
        base = DEFASimulator().simulate_from_ratios(tiny_spec, 0.2, 0.6)
        no_fuse = DEFASimulator(fuse_msgs_aggregation=False).simulate_from_ratios(
            tiny_spec, 0.2, 0.6
        )
        no_reuse = DEFASimulator(fmap_reuse=False).simulate_from_ratios(tiny_spec, 0.2, 0.6)
        assert base.energy.total_j < no_fuse.energy.total_j
        assert base.energy.dram_bytes if False else True
        assert base.energy.total_j < no_reuse.energy.total_j

    def test_scaled_config_is_faster(self, tiny_spec):
        base = DEFASimulator().simulate_from_ratios(tiny_spec, 0.2, 0.6)
        scaled = DEFASimulator(HardwareConfig().scaled_to(13.3)).simulate_from_ratios(
            tiny_spec, 0.2, 0.6
        )
        assert scaled.time_s < base.time_s

    def test_encoder_result_requires_details(self, tiny_workload_run):
        from repro.core.encoder_runner import DEFAEncoderRunner

        run = tiny_workload_run
        runner = DEFAEncoderRunner(run["encoder"], DEFAConfig())
        result = runner.forward(
            run["features"], run["pos"], run["reference_points"], run["spec"].spatial_shapes
        )
        with pytest.raises(ValueError):
            DEFASimulator().simulate_encoder_result(result)
