"""Property tests for the compacted sampling trace (sparse execution v2)
and the row-compacted FFN/LayerNorm entry points (block-sparse encoder, PR 4).

The compacted trace (:func:`multi_scale_neighbors_sparse` and its batched
variant) must be *exactly* the dense trace restricted to the kept points —
same neighbour indices, bilinear weights, validity flags and level ids, bit
for bit — for any pyramid geometry, any sampling locations (in or out of
bounds, float32 or float64 input) and any point mask, including the
degenerate all-pruned and single-survivor masks.  Hypothesis drives the
geometry/mask space; a few deterministic tests pin the named edge cases.

The same contract holds for ``LayerNorm.forward_rows[_batched]``: layer norm
is per-row, so the compacted output is bit-identical to the dense output
restricted to the kept rows.  ``FeedForward.forward_rows[_batched]`` is
bit-identical to forwarding the gathered rows (the compaction itself adds no
rounding); against the dense output restricted to the kept rows it is held
to 1e-5, because BLAS may pick a different matmul kernel for the compacted
row count and move the last ulp of the accumulations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling_stats import (
    sampled_frequency,
    sampled_frequency_batched,
    sampled_frequency_compact,
    sampled_frequency_compact_batched,
)
from repro.nn.grid_sample import (
    ms_deform_attn_from_compact_trace,
    ms_deform_attn_from_trace,
    ms_deform_attn_from_trace_batched,
    multi_scale_neighbors,
    multi_scale_neighbors_batched,
    multi_scale_neighbors_sparse,
    multi_scale_neighbors_sparse_batched,
)
from repro.utils.shapes import LevelShape


@pytest.fixture(autouse=True, scope="module", params=["reference", "fused"])
def kernel_backend(request):
    """Run the whole property module under both kernel backends.

    Module-scoped (hypothesis forbids function-scoped fixtures under
    ``@given``): every golden property must hold bit-identically under the
    reference (PR 4) and the fused (PR 5) kernels.
    """
    from repro.kernels import use_backend

    with use_backend(request.param):
        yield request.param


@st.composite
def trace_cases(draw, batched: bool = False):
    """A random (spatial_shapes, sampling_locations, point_mask) triple.

    Locations may fall outside ``[0, 1]`` so out-of-bounds neighbours are
    exercised; the mask density spans all-pruned (0.0) through all-kept
    (1.0); the location dtype alternates between float32 and float64 (the
    constructors cast to the kernel dtype either way).
    """
    n_l = draw(st.integers(1, 4))
    shapes = [
        LevelShape(draw(st.integers(1, 6)), draw(st.integers(1, 6))) for _ in range(n_l)
    ]
    n_q = draw(st.integers(1, 8))
    n_h = draw(st.integers(1, 4))
    n_p = draw(st.integers(1, 4))
    batch = draw(st.integers(1, 3)) if batched else None
    lead = (batch,) if batched else ()
    seed = draw(st.integers(0, 2**32 - 1))
    density = draw(st.sampled_from([0.0, 0.15, 0.5, 0.85, 1.0]))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    rng = np.random.default_rng(seed)
    locations = rng.uniform(-0.3, 1.3, lead + (n_q, n_h, n_l, n_p, 2)).astype(dtype)
    mask = rng.uniform(0.0, 1.0, lead + (n_q, n_h, n_l, n_p)) < density
    return shapes, locations, mask


def _assert_matches_dense(compact, dense_trace, mask):
    """The compact trace equals the dense trace restricted to the kept points."""
    kept = np.flatnonzero(mask.reshape(-1))
    np.testing.assert_array_equal(compact.kept, kept)
    assert compact.num_kept == kept.size
    np.testing.assert_array_equal(
        compact.flat_indices, dense_trace.flat_indices.reshape(-1, 4)[kept]
    )
    np.testing.assert_array_equal(
        compact.weights, dense_trace.weights.reshape(-1, 4)[kept]
    )
    np.testing.assert_array_equal(compact.valid, dense_trace.valid.reshape(-1, 4)[kept])
    np.testing.assert_array_equal(compact.levels, dense_trace.levels.reshape(-1)[kept])
    seg = compact.segments()
    assert np.all(np.diff(seg) >= 0), "segments must be non-decreasing"


class TestCompactTraceProperties:
    @settings(max_examples=50, deadline=None)
    @given(trace_cases())
    def test_matches_dense_trace_restricted_to_kept_points(self, case):
        shapes, locations, mask = case
        dense = multi_scale_neighbors(shapes, locations)
        compact = multi_scale_neighbors_sparse(shapes, locations, point_mask=mask)
        _assert_matches_dense(compact, dense, mask)

    @settings(max_examples=30, deadline=None)
    @given(trace_cases(batched=True))
    def test_batched_matches_dense_and_image_views(self, case):
        shapes, locations, mask = case
        dense = multi_scale_neighbors_batched(shapes, locations)
        compact = multi_scale_neighbors_sparse_batched(shapes, locations, point_mask=mask)
        _assert_matches_dense(compact, dense, mask)
        # Per-image views equal single-image construction on that image.
        for b in range(locations.shape[0]):
            view = compact.image(b)
            single = multi_scale_neighbors_sparse(shapes, locations[b], point_mask=mask[b])
            np.testing.assert_array_equal(view.kept, single.kept)
            np.testing.assert_array_equal(view.flat_indices, single.flat_indices)
            np.testing.assert_array_equal(view.weights, single.weights)
            np.testing.assert_array_equal(view.valid, single.valid)
            np.testing.assert_array_equal(view.levels, single.levels)

    @settings(max_examples=30, deadline=None)
    @given(trace_cases())
    def test_no_mask_keeps_every_point(self, case):
        shapes, locations, _ = case
        dense = multi_scale_neighbors(shapes, locations)
        compact = multi_scale_neighbors_sparse(shapes, locations, point_mask=None)
        _assert_matches_dense(compact, dense, np.ones(dense.valid.shape[:-1], dtype=bool))

    @settings(max_examples=30, deadline=None)
    @given(trace_cases(), st.integers(0, 2**32 - 1))
    def test_frequency_and_kernel_match_dense_path(self, case, seed):
        """The compact trace drives FWP counting and the gather kernel to the
        same results as the dense trace + mask."""
        shapes, locations, mask = case
        n_in = sum(s.num_pixels for s in shapes)
        n_q, n_h = locations.shape[0], locations.shape[1]
        rng = np.random.default_rng(seed)
        d_h = 4
        value = rng.standard_normal((n_in, n_h, d_h)).astype(np.float32)
        attn = rng.uniform(0.0, 1.0, mask.shape).astype(np.float32)

        dense = multi_scale_neighbors(shapes, locations)
        compact = multi_scale_neighbors_sparse(shapes, locations, point_mask=mask)
        np.testing.assert_array_equal(
            sampled_frequency_compact(compact),
            sampled_frequency(dense, point_mask=mask),
        )
        out_dense = ms_deform_attn_from_trace(value, dense, attn, point_mask=mask)
        out_compact = ms_deform_attn_from_compact_trace(value, compact, attn)
        np.testing.assert_allclose(out_compact, out_dense, atol=1e-5)

    @settings(max_examples=20, deadline=None)
    @given(trace_cases(batched=True), st.integers(0, 2**32 - 1))
    def test_batched_frequency_and_kernel_match_dense_path(self, case, seed):
        shapes, locations, mask = case
        n_in = sum(s.num_pixels for s in shapes)
        batch, n_q, n_h = locations.shape[0], locations.shape[1], locations.shape[2]
        rng = np.random.default_rng(seed)
        d_h = 4
        value = rng.standard_normal((batch, n_in, n_h, d_h)).astype(np.float32)
        attn = rng.uniform(0.0, 1.0, mask.shape).astype(np.float32)

        dense = multi_scale_neighbors_batched(shapes, locations)
        compact = multi_scale_neighbors_sparse_batched(shapes, locations, point_mask=mask)
        np.testing.assert_array_equal(
            sampled_frequency_compact_batched(compact),
            sampled_frequency_batched(dense, point_mask=mask),
        )
        out_dense = ms_deform_attn_from_trace_batched(value, dense, attn, point_mask=mask)
        out_compact = ms_deform_attn_from_compact_trace(value, compact, attn)
        np.testing.assert_allclose(out_compact, out_dense, atol=1e-5)


@st.composite
def row_cases(draw, batched: bool = False):
    """A random ``(x, mask)`` pair for the row-compacted module entry points.

    Row counts span 1..64, feature dims 1..48; the mask density includes the
    all-pruned (0.0) and all-kept (1.0) extremes, and a ``single_survivor``
    draw forces exactly one kept row.  Inputs alternate float32/float64 and
    include large-magnitude scales (the modules cast to the kernel dtype).
    """
    n = draw(st.integers(1, 64))
    d = draw(st.integers(1, 48))
    batch = draw(st.integers(1, 3)) if batched else None
    lead = (batch,) if batched else ()
    seed = draw(st.integers(0, 2**32 - 1))
    density = draw(st.sampled_from([0.0, 0.2, 0.5, 0.9, 1.0, "single_survivor"]))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    scale = draw(st.sampled_from([1.0, 7.5]))
    rng = np.random.default_rng(seed)
    x = (rng.standard_normal(lead + (n, d)) * scale).astype(dtype)
    total = int(np.prod(lead + (n,)))
    if density == "single_survivor":
        mask = np.zeros(total, dtype=bool)
        mask[int(rng.integers(total))] = True
        mask = mask.reshape(lead + (n,))
    else:
        mask = rng.uniform(0.0, 1.0, lead + (n,)) < density
    return x, mask, seed


def _make_layer_norm(d: int, seed: int) -> "LayerNorm":
    from repro.nn.modules import LayerNorm

    rng = np.random.default_rng(seed)
    ln = LayerNorm(d)
    ln.weight = rng.standard_normal(d).astype(np.float32)
    ln.bias = rng.standard_normal(d).astype(np.float32)
    return ln


def _make_ffn(d: int, seed: int) -> "FeedForward":
    from repro.nn.modules import FeedForward

    return FeedForward(d, max(2 * d, 4), activation="relu", rng=seed)


class TestRowCompactedModules:
    """Property tests for the block-sparse encoder's forward_rows paths."""

    @settings(max_examples=60, deadline=None)
    @given(row_cases())
    def test_layer_norm_rows_bit_identical_to_dense_restriction(self, case):
        x, mask, seed = case
        ln = _make_layer_norm(x.shape[-1], seed)
        rows = np.flatnonzero(mask)
        compact = ln.forward_rows(x, rows)
        np.testing.assert_array_equal(compact, ln.forward(x)[rows])
        assert compact.shape == (rows.size, x.shape[-1])

    @settings(max_examples=40, deadline=None)
    @given(row_cases(batched=True))
    def test_layer_norm_rows_batched_bit_identical(self, case):
        x, mask, seed = case
        ln = _make_layer_norm(x.shape[-1], seed)
        flat_rows = np.flatnonzero(mask.reshape(-1))
        compact = ln.forward_rows_batched(x, flat_rows)
        dense = ln.forward(x).reshape(-1, x.shape[-1])[flat_rows]
        np.testing.assert_array_equal(compact, dense)

    @settings(max_examples=60, deadline=None)
    @given(row_cases())
    def test_ffn_rows_matches_dense_restriction(self, case):
        x, mask, seed = case
        ffn = _make_ffn(x.shape[-1], seed)
        rows = np.flatnonzero(mask)
        compact = ffn.forward_rows(x, rows)
        # Bit-identical to forwarding the gathered rows: the compaction adds
        # no arithmetic of its own ...
        np.testing.assert_array_equal(
            compact, ffn.forward(np.asarray(x, dtype=np.float32)[rows])
        )
        # ... and within float32 matmul precision of the dense restriction
        # (BLAS kernel choice varies with the row count).
        np.testing.assert_allclose(compact, ffn.forward(x)[rows], atol=1e-5)

    @settings(max_examples=40, deadline=None)
    @given(row_cases(batched=True))
    def test_ffn_rows_batched_matches_dense_restriction(self, case):
        x, mask, seed = case
        ffn = _make_ffn(x.shape[-1], seed)
        flat_rows = np.flatnonzero(mask.reshape(-1))
        compact = ffn.forward_rows_batched(x, flat_rows)
        dense = ffn.forward(x).reshape(-1, x.shape[-1])[flat_rows]
        np.testing.assert_allclose(compact, dense, atol=1e-5)
        # Batched compaction concatenates rows across images; it must equal
        # single-image compaction on each image's own rows exactly.
        x32 = np.asarray(x, dtype=np.float32)
        np.testing.assert_array_equal(
            compact, ffn.forward(x32.reshape(-1, x.shape[-1])[flat_rows])
        )

    def test_all_pruned_mask_yields_empty_output(self):
        ln = _make_layer_norm(8, 0)
        ffn = _make_ffn(8, 1)
        x = np.random.default_rng(2).standard_normal((12, 8)).astype(np.float32)
        empty = np.array([], dtype=np.int64)
        assert ln.forward_rows(x, empty).shape == (0, 8)
        assert ffn.forward_rows(x, empty).shape == (0, 8)
        xb = np.random.default_rng(3).standard_normal((2, 12, 8)).astype(np.float32)
        assert ln.forward_rows_batched(xb, empty).shape == (0, 8)
        assert ffn.forward_rows_batched(xb, empty).shape == (0, 8)

    def test_wrong_ndim_rejected(self):
        import pytest

        ln = _make_layer_norm(8, 0)
        ffn = _make_ffn(8, 1)
        x3 = np.zeros((2, 12, 8), dtype=np.float32)
        x2 = np.zeros((12, 8), dtype=np.float32)
        rows = np.array([0, 1])
        with pytest.raises(ValueError):
            ln.forward_rows(x3, rows)
        with pytest.raises(ValueError):
            ffn.forward_rows(x3, rows)
        with pytest.raises(ValueError):
            ln.forward_rows_batched(x2, rows)
        with pytest.raises(ValueError):
            ffn.forward_rows_batched(x2, rows)


class TestCompactTraceEdgeCases:
    SHAPES = [LevelShape(5, 7), LevelShape(3, 4), LevelShape(2, 2)]

    def _locations(self, seed=0):
        rng = np.random.default_rng(seed)
        return rng.uniform(-0.2, 1.2, (6, 3, 3, 2, 2)).astype(np.float32)

    def test_all_pruned_mask(self):
        locations = self._locations()
        mask = np.zeros(locations.shape[:-1], dtype=bool)
        compact = multi_scale_neighbors_sparse(self.SHAPES, locations, point_mask=mask)
        assert compact.num_kept == 0
        assert compact.flat_indices.shape == (0, 4)
        assert compact.keep_fraction == 0.0
        n_in = sum(s.num_pixels for s in self.SHAPES)
        np.testing.assert_array_equal(
            sampled_frequency_compact(compact), np.zeros(n_in, dtype=np.int64)
        )
        value = np.ones((n_in, 3, 4), dtype=np.float32)
        attn = np.ones(mask.shape, dtype=np.float32)
        out = ms_deform_attn_from_compact_trace(value, compact, attn)
        assert out.shape == (6, 12) and np.all(out == 0)

    def test_single_survivor_mask(self):
        locations = self._locations(seed=1)
        mask = np.zeros(locations.shape[:-1], dtype=bool)
        mask[3, 1, 2, 0] = True
        dense = multi_scale_neighbors(self.SHAPES, locations)
        compact = multi_scale_neighbors_sparse(self.SHAPES, locations, point_mask=mask)
        _assert_matches_dense(compact, dense, mask)
        assert compact.num_kept == 1
        assert compact.levels[0] == 2
        # Only the (query 3, head 1) output slot may be non-zero.
        n_in = sum(s.num_pixels for s in self.SHAPES)
        rng = np.random.default_rng(2)
        value = rng.standard_normal((n_in, 3, 4)).astype(np.float32)
        attn = np.ones(mask.shape, dtype=np.float32)
        out = ms_deform_attn_from_compact_trace(value, compact, attn).reshape(6, 3, 4)
        zeroed = out.copy()
        zeroed[3, 1] = 0
        assert np.all(zeroed == 0)

    def test_int_mask_is_coerced(self):
        locations = self._locations(seed=3)
        int_mask = (np.arange(np.prod(locations.shape[:-1])) % 3 == 0).astype(np.int32)
        int_mask = int_mask.reshape(locations.shape[:-1])
        compact = multi_scale_neighbors_sparse(self.SHAPES, locations, point_mask=int_mask)
        dense = multi_scale_neighbors(self.SHAPES, locations)
        _assert_matches_dense(compact, dense, int_mask.astype(bool))

    def test_mask_shape_mismatch_rejected(self):
        import pytest

        locations = self._locations(seed=4)
        with pytest.raises(ValueError):
            multi_scale_neighbors_sparse(
                self.SHAPES, locations, point_mask=np.ones((2, 2), dtype=bool)
            )
