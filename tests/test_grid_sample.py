"""Tests for the bilinear grid-sampling kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.pe_array import bilinear_interpolate_factorized
from repro.nn.grid_sample import (
    bilinear_neighbors,
    bilinear_sample_level,
    bilinear_sample_level_reference,
    ms_deform_attn_core,
    ms_deform_attn_from_trace,
    multi_scale_neighbors,
)


class TestBilinearNeighbors:
    def test_center_of_pixel_has_unit_weight(self):
        # Location exactly at the centre of pixel (1, 2) in a 4x4 map.
        loc = np.array([(2 + 0.5) / 4.0, (1 + 0.5) / 4.0])
        rows, cols, weights, valid = bilinear_neighbors(loc, 4, 4)
        assert rows[0] == 1 and cols[0] == 2
        assert weights[0] == pytest.approx(1.0, abs=1e-6)
        assert np.all(valid)

    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(0)
        loc = rng.random((50, 2))
        _, _, weights, _ = bilinear_neighbors(loc, 7, 9)
        assert np.allclose(weights.sum(axis=-1), 1.0, atol=1e-5)

    def test_out_of_bounds_flagged(self):
        loc = np.array([-0.5, -0.5])
        _, _, _, valid = bilinear_neighbors(loc, 4, 4)
        assert not valid.any()

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            bilinear_neighbors(np.zeros((3, 3)), 4, 4)

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            bilinear_neighbors(np.zeros(2), 0, 4)

    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_weights_nonnegative_property(self, x, y):
        _, _, weights, _ = bilinear_neighbors(np.array([x, y]), 9, 11)
        assert np.all(weights >= -1e-6)
        assert weights.sum() == pytest.approx(1.0, abs=1e-5)


class TestBilinearSampling:
    def test_matches_reference_implementation(self):
        rng = np.random.default_rng(0)
        value = rng.standard_normal((6, 8, 3)).astype(np.float32)
        loc = rng.random((20, 2)).astype(np.float32)
        fast = bilinear_sample_level(value, loc)
        slow = bilinear_sample_level_reference(value, loc)
        assert np.allclose(fast, slow, atol=1e-5)

    def test_constant_map_samples_constant(self):
        value = np.full((5, 5, 2), 3.0, dtype=np.float32)
        loc = np.array([[0.5, 0.5], [0.25, 0.75]], dtype=np.float32)
        out = bilinear_sample_level(value, loc)
        assert np.allclose(out, 3.0, atol=1e-5)

    def test_zero_padding_outside(self):
        value = np.ones((4, 4, 1), dtype=np.float32)
        out = bilinear_sample_level(value, np.array([[-1.0, -1.0]], dtype=np.float32))
        assert np.allclose(out, 0.0)

    def test_interpolation_between_two_pixels(self):
        value = np.zeros((1, 2, 1), dtype=np.float32)
        value[0, 1, 0] = 2.0
        # Exactly halfway between the two pixel centres along x.
        out = bilinear_sample_level(value, np.array([[0.5, 0.5]], dtype=np.float32))
        assert out[0, 0] == pytest.approx(1.0, abs=1e-5)

    def test_bad_value_shape(self):
        with pytest.raises(ValueError):
            bilinear_sample_level(np.zeros((4, 4)), np.zeros((1, 2)))

    def test_factorized_bi_matches_standard_form(self):
        rng = np.random.default_rng(0)
        n0, n1, n2, n3 = rng.standard_normal(4)
        t0, t1 = rng.random(2)
        expected = (
            n0 * (1 - t1) * (1 - t0)
            + n1 * t1 * (1 - t0)
            + n2 * (1 - t1) * t0
            + n3 * t1 * t0
        )
        assert bilinear_interpolate_factorized(n0, n1, n2, n3, t0, t1) == pytest.approx(expected)


class TestMultiScale:
    def _locations(self, shapes, n_q=10, n_h=2, n_p=3, seed=0):
        rng = np.random.default_rng(seed)
        return rng.random((n_q, n_h, len(shapes), n_p, 2)).astype(np.float32)

    def test_trace_shapes(self, tiny_shapes):
        locs = self._locations(tiny_shapes)
        trace = multi_scale_neighbors(tiny_shapes, locs)
        assert trace.rows.shape == (10, 2, 3, 3, 4)
        assert trace.num_queries == 10
        assert trace.num_levels == len(tiny_shapes)

    def test_trace_flat_indices_in_range(self, tiny_shapes):
        locs = self._locations(tiny_shapes)
        trace = multi_scale_neighbors(tiny_shapes, locs)
        n_in = sum(s.num_pixels for s in tiny_shapes)
        valid_idx = trace.flat_indices[trace.valid]
        assert valid_idx.min() >= 0 and valid_idx.max() < n_in
        assert np.all(trace.flat_indices[~trace.valid] == -1)

    def test_trace_level_consistency(self, tiny_shapes):
        locs = self._locations(tiny_shapes)
        trace = multi_scale_neighbors(tiny_shapes, locs)
        from repro.utils.shapes import level_start_indices

        starts = level_start_indices(tiny_shapes)
        sizes = [s.num_pixels for s in tiny_shapes]
        for lvl in range(len(tiny_shapes)):
            idx = trace.flat_indices[:, :, lvl][trace.valid[:, :, lvl]]
            assert np.all((idx >= starts[lvl]) & (idx < starts[lvl] + sizes[lvl]))

    def test_wrong_level_count_raises(self, tiny_shapes):
        locs = self._locations(tiny_shapes[:2])
        with pytest.raises(ValueError):
            multi_scale_neighbors(tiny_shapes, locs)

    def test_core_output_shape(self, tiny_shapes):
        rng = np.random.default_rng(0)
        n_in = sum(s.num_pixels for s in tiny_shapes)
        value = rng.standard_normal((n_in, 2, 4)).astype(np.float32)
        locs = self._locations(tiny_shapes)
        attn = np.full((10, 2, 3, 3), 1.0 / 9, dtype=np.float32)
        out = ms_deform_attn_core(value, tiny_shapes, locs, attn)
        assert out.shape == (10, 8)

    def test_core_and_trace_paths_agree(self, tiny_shapes):
        rng = np.random.default_rng(0)
        n_in = sum(s.num_pixels for s in tiny_shapes)
        value = rng.standard_normal((n_in, 2, 4)).astype(np.float32)
        locs = self._locations(tiny_shapes)
        attn = rng.random((10, 2, 3, 3)).astype(np.float32)
        attn /= attn.sum(axis=(-2, -1), keepdims=True)
        out_core = ms_deform_attn_core(value, tiny_shapes, locs, attn)
        trace = multi_scale_neighbors(tiny_shapes, locs)
        out_trace = ms_deform_attn_from_trace(value, trace, attn)
        assert np.allclose(out_core, out_trace, atol=1e-4)

    def test_point_mask_zeroes_contribution(self, tiny_shapes):
        rng = np.random.default_rng(0)
        n_in = sum(s.num_pixels for s in tiny_shapes)
        value = rng.standard_normal((n_in, 2, 4)).astype(np.float32)
        locs = self._locations(tiny_shapes)
        attn = rng.random((10, 2, 3, 3)).astype(np.float32)
        mask = np.zeros((10, 2, 3, 3), dtype=bool)
        out = ms_deform_attn_core(value, tiny_shapes, locs, attn, point_mask=mask)
        assert np.allclose(out, 0.0)

    def test_value_token_mismatch_raises(self, tiny_shapes):
        value = np.zeros((5, 2, 4), dtype=np.float32)
        locs = self._locations(tiny_shapes)
        attn = np.zeros((10, 2, 3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            ms_deform_attn_core(value, tiny_shapes, locs, attn)

    def test_attention_weight_linearity(self, tiny_shapes):
        """Doubling all attention weights doubles the output (linearity)."""
        rng = np.random.default_rng(0)
        n_in = sum(s.num_pixels for s in tiny_shapes)
        value = rng.standard_normal((n_in, 2, 4)).astype(np.float32)
        locs = self._locations(tiny_shapes)
        attn = rng.random((10, 2, 3, 3)).astype(np.float32)
        out1 = ms_deform_attn_core(value, tiny_shapes, locs, attn)
        out2 = ms_deform_attn_core(value, tiny_shapes, locs, 2.0 * attn)
        assert np.allclose(out2, 2.0 * out1, atol=1e-4)
