"""Tests for the PR 10 fault model: the plan DSL and the engine under fire.

The unit tests cover :mod:`repro.engine.faults` in isolation (spec
validation, builders, the per-incarnation executor with ``_hard_crash``
monkeypatched).  The integration tests spawn real worker processes and
drive each scripted fault kind — crash, watchdog-killed hang, retryable
raise, poison pill — to full recovery, asserting the served outputs stay
bit-equal to the serial reference through every non-poison fault.

Timer semantics are driven by the *injected* clock: the tests never sleep
through a backoff or a watchdog bound — they jump the engine clock past it
(``OffsetClock``) and keep polling, with a real-time bailout only as a
hang-safety net.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.engine import (
    FAULT_KINDS,
    FaultInjectedError,
    FaultPlan,
    FaultSpec,
    ModelBankSpec,
    PoisonRequestError,
    ServingConfig,
    ServingEngine,
    WorkItem,
)
from repro.engine import faults as faults_module
from repro.engine.faults import WorkerFaultState
from repro.utils.shapes import LevelShape

SHAPES = (LevelShape(8, 12), LevelShape(4, 6))
D_MODEL = 32


class TestFaultSpec:
    def test_known_kinds(self):
        assert FAULT_KINDS == ("crash", "hang", "raise", "delay")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind 'segv'"):
            FaultSpec("segv", batch=0)

    def test_negative_coordinates_rejected(self):
        for kwargs in ({"batch": -1}, {"batch": 0, "worker": -1},
                       {"batch": 0, "incarnation": -2}):
            with pytest.raises(ValueError, match="non-negative"):
                FaultSpec("crash", **kwargs)

    def test_hang_and_delay_need_positive_seconds(self):
        for kind in ("hang", "delay"):
            with pytest.raises(ValueError, match="seconds > 0"):
                FaultSpec(kind, batch=0)
            assert FaultSpec(kind, batch=0, seconds=1.5).seconds == 1.5

    def test_crash_and_raise_take_no_seconds(self):
        for kind in ("crash", "raise"):
            with pytest.raises(ValueError, match="takes no seconds"):
                FaultSpec(kind, batch=0, seconds=1.0)


class TestFaultPlan:
    def test_builders_accumulate_in_order(self):
        plan = (
            FaultPlan()
            .with_crash(batch=2)
            .with_hang(seconds=30.0, batch=0, incarnation=1)
            .with_raise(batch=1, incarnation=2)
            .with_delay(seconds=0.5, batch=3, worker=1)
            .with_poison("req-7", 42)
        )
        assert [f.kind for f in plan.faults] == ["crash", "hang", "raise", "delay"]
        assert plan.poison_items == ("req-7", 42)
        # Builders return new frozen plans; the original is untouched.
        assert FaultPlan().faults == ()

    def test_duplicate_ordinal_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault"):
            FaultPlan().with_crash(batch=1).with_raise(batch=1)

    def test_same_ordinal_different_incarnation_allowed(self):
        plan = FaultPlan().with_crash(batch=1).with_raise(batch=1, incarnation=1)
        assert plan.fault_for(0, 0, 1).kind == "crash"
        assert plan.fault_for(0, 1, 1).kind == "raise"
        assert plan.fault_for(0, 2, 1) is None
        assert plan.fault_for(1, 0, 1) is None

    def test_poisons_matches_any_item(self):
        plan = FaultPlan().with_poison("bad")
        assert plan.poisons(("ok-1", "bad", "ok-2"))
        assert not plan.poisons(("ok-1", "ok-2"))
        assert not FaultPlan().poisons(("bad",))

    def test_plan_is_picklable_inside_a_spec(self):
        spec = ModelBankSpec(fault_plan=FaultPlan().with_crash(batch=0))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.fault_plan.faults[0].kind == "crash"


class TestWorkerFaultState:
    def _state(self, plan, worker=0, incarnation=0):
        return WorkerFaultState(plan, worker, incarnation)

    def test_fires_only_on_scripted_ordinal(self, monkeypatch):
        crashes: list[int] = []
        monkeypatch.setattr(faults_module, "_hard_crash", lambda: crashes.append(1))
        state = self._state(FaultPlan().with_crash(batch=2))
        state.on_batch(("a",))
        state.on_batch(("b",))
        assert not crashes
        state.on_batch(("c",))
        assert crashes == [1]

    def test_other_incarnation_does_not_fire(self, monkeypatch):
        monkeypatch.setattr(
            faults_module, "_hard_crash", lambda: pytest.fail("crashed")
        )
        state = self._state(FaultPlan().with_crash(batch=0), incarnation=1)
        state.on_batch(("a",))
        assert state.batches_seen == 1

    def test_raise_fault_raises_retryable_error(self):
        state = self._state(FaultPlan().with_raise(batch=0))
        with pytest.raises(FaultInjectedError, match="batch ordinal 0"):
            state.on_batch(("a",))
        # The ordinal advanced: the next batch serves clean.
        state.on_batch(("b",))

    def test_hang_sleeps_scripted_seconds(self, monkeypatch):
        slept: list[float] = []
        monkeypatch.setattr(faults_module.time, "sleep", slept.append)
        state = self._state(FaultPlan().with_hang(seconds=30.0, batch=0))
        state.on_batch(("a",))
        assert slept == [30.0]

    def test_poison_crashes_every_incarnation(self, monkeypatch):
        crashes: list[int] = []
        monkeypatch.setattr(faults_module, "_hard_crash", lambda: crashes.append(1))
        plan = FaultPlan().with_poison("bad")
        for incarnation in range(3):
            self._state(plan, incarnation=incarnation).on_batch(("ok", "bad"))
        assert crashes == [1, 1, 1]

    def test_poison_takes_precedence_over_scripted_fault(self, monkeypatch):
        class Crashed(BaseException):
            """Stands in for os._exit, which never returns."""

        def crash():
            raise Crashed

        monkeypatch.setattr(faults_module, "_hard_crash", crash)
        state = self._state(FaultPlan().with_raise(batch=0).with_poison("bad"))
        # The poison crash must fire before the scripted raise is consulted.
        with pytest.raises(Crashed):
            state.on_batch(("bad",))


# ---------------------------------------------------------------------------
# Integration: real workers, scripted faults, injected-clock recovery.


class OffsetClock:
    """Injected engine clock: real monotonic time plus a test-owned offset.

    Timer waits (restart backoff, watchdog bounds) are skipped by advancing
    the offset — never by sleeping through them — while in-flight healthy
    batches still age at real speed, so the watchdog cannot spuriously kill
    a worker that is merely computing.
    """

    def __init__(self) -> None:
        self.offset = 0.0

    def __call__(self) -> float:
        return time.monotonic() + self.offset

    def advance(self, dt: float) -> None:
        self.offset += dt


def _spec(fault_plan: FaultPlan | None = None) -> ModelBankSpec:
    return ModelBankSpec(
        num_layers=2,
        d_model=D_MODEL,
        num_heads=4,
        num_levels=2,
        num_points=2,
        ffn_dim=64,
        rng_seed=0,
        classes=(("fp32", DEFAConfig(quant_bits=None)),),
        fault_plan=fault_plan,
    )


def _items(n: int):
    out = []
    n_in = sum(s.num_pixels for s in SHAPES)
    for i in range(n):
        rng = np.random.default_rng(100 + i)
        out.append(
            WorkItem(
                item_id=f"req-{i}",
                features=rng.standard_normal((n_in, D_MODEL)).astype(np.float32),
                spatial_shapes=SHAPES,
            )
        )
    return out


def _reference(items):
    """Serial per-image loop on a fault-free bank: the bit-equality target."""
    bank = _spec().build()
    return [
        bank.forward("fp32", item.features[None], list(SHAPES))[0] for item in items
    ]


def _faulted_engine(plan: FaultPlan, clock: OffsetClock, **config) -> ServingEngine:
    defaults = dict(
        num_workers=1,
        max_batch_size=2,
        # Deliberately long: only an injected-clock jump can get past it
        # inside the test bailout, which is what proves the restart timer
        # runs on the injected clock rather than wall time.
        restart_backoff_s=5.0,
        max_retries=5,
    )
    defaults.update(config)
    return ServingEngine(_spec(plan).build, ServingConfig(**defaults), clock=clock)


def _spawn_workers(engine: ServingEngine) -> None:
    """Spawn worker processes without the pump thread: the test is the only
    driver of ``poll``, so every timer decision flows through the injected
    clock."""
    with engine._lock:
        for handle in engine._workers:
            engine._spawn(handle)


def _drive(engine, clock, futures, bailout_s: float = 120.0) -> None:
    """Poll until every future resolves, jumping the injected clock over any
    pending restart backoff.  ``bailout_s`` (real time) only guards the test
    itself against a genuinely wedged engine."""
    deadline = time.monotonic() + bailout_s
    while not all(f.done() for f in futures):
        if time.monotonic() > deadline:
            pytest.fail(f"engine did not serve in {bailout_s}s: {engine._diagnose()}")
        engine.poll()
        with engine._lock:
            restarts = [
                h.restart_at for h in engine._workers if h.restart_at is not None
            ]
            if restarts:
                jump = min(restarts) - clock()
                if jump > 0:
                    clock.advance(jump)


def _drive_to_primary(engine, clock, bailout_s: float = 60.0) -> None:
    deadline = time.monotonic() + bailout_s
    while engine.mode != "primary":
        if time.monotonic() > deadline:
            pytest.fail(f"engine did not recover in {bailout_s}s: {engine._diagnose()}")
        engine.poll()
        with engine._lock:
            restarts = [
                h.restart_at for h in engine._workers if h.restart_at is not None
            ]
            if restarts:
                jump = min(restarts) - clock()
                if jump > 0:
                    clock.advance(jump)


class TestFaultRecovery:
    """Each fault kind recovers to primary with bit-equal served outputs."""

    def _run(self, plan, num_items=6, **config):
        items = _items(num_items)
        reference = _reference(items)
        clock = OffsetClock()
        engine = _faulted_engine(plan, clock, **config)
        _spawn_workers(engine)
        try:
            futures = [engine.submit(item, request_class="fp32") for item in items]
            _drive(engine, clock, futures)
            _drive_to_primary(engine, clock)
            return engine, futures, reference
        except BaseException:
            engine.shutdown()
            raise

    def _assert_bit_equal(self, futures, reference, skip=()):
        for i, (future, expected) in enumerate(zip(futures, reference)):
            if i in skip:
                continue
            np.testing.assert_array_equal(future.result(timeout=1.0), expected)

    def test_crash_fault_recovers_bit_equal(self):
        engine, futures, reference = self._run(FaultPlan().with_crash(batch=1))
        try:
            self._assert_bit_equal(futures, reference)
            assert engine.stats.worker_deaths == 1
            assert engine.stats.num_retried >= 1
            assert engine.stats.num_quarantined == 0
            assert engine.mode == "primary"
        finally:
            engine.shutdown()

    def test_hang_fault_watchdog_recovers_bit_equal(self):
        engine, futures, reference = self._run(
            FaultPlan().with_hang(seconds=30.0, batch=1),
            batch_timeout_s=1.0,
        )
        try:
            self._assert_bit_equal(futures, reference)
            assert engine.stats.watchdog_kills == 1
            assert engine.stats.worker_deaths == 1
            assert engine.stats.num_quarantined == 0
            assert engine.mode == "primary"
        finally:
            engine.shutdown()

    def test_raise_fault_retries_bit_equal_without_death(self):
        engine, futures, reference = self._run(FaultPlan().with_raise(batch=0))
        try:
            self._assert_bit_equal(futures, reference)
            assert engine.stats.worker_deaths == 0
            # The faulted batch (2 requests) was requeued, not failed.
            assert engine.stats.num_retried == 2
            assert engine.stats.num_quarantined == 0
            assert engine.mode == "primary"
        finally:
            engine.shutdown()

    def test_poison_request_fails_alone_others_bit_equal(self):
        """The acceptance gate: a poison pill fails exactly its own future
        with :class:`PoisonRequestError` after ``max_retries`` worker kills,
        never runs on the in-process fallback, and every innocent request —
        including the one co-batched with it — still serves bit-equal."""
        poison_index = 2
        engine, futures, reference = self._run(
            FaultPlan().with_poison(f"req-{poison_index}"),
            num_items=4,
            max_retries=2,
        )
        try:
            self._assert_bit_equal(futures, reference, skip=(poison_index,))
            with pytest.raises(PoisonRequestError, match="quarantined as poison"):
                futures[poison_index].result(timeout=1.0)
            error = futures[poison_index].exception()
            assert error.item_id == f"req-{poison_index}"
            # Co-batched crash + two isolated redispatch crashes = 3 kills,
            # one past the max_retries=2 budget.
            assert error.kills == 3
            assert error.max_retries == 2
            assert engine.stats.worker_deaths == 3
            assert engine.stats.num_quarantined == 1
            # Poison safety: nothing — least of all the poison request —
            # ever executed on the in-process fallback.
            assert engine.stats.degraded_batches == 0
            assert engine.mode == "primary"
        finally:
            engine.shutdown()
