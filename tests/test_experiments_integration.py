"""Integration tests: the experiment harness end to end at the tiny scale."""

import pytest

from repro.core.config import DEFAConfig
from repro.experiments import EXPERIMENTS
from repro.experiments.common import ExperimentResult, register_experiment
from repro.experiments import (
    fig1b_latency_breakdown,
    fig6b_reduction,
    fig7a_parallelism,
    fig8_breakdown,
    table1_asic_comparison,
)
from repro.experiments.workload_runs import clear_caches, prepare_run, run_defa_cached
from repro.eval.pruning_stats import collect_pruning_stats, summarize_reports
from repro.utils.serialization import save_json


@pytest.fixture(scope="module", autouse=True)
def _clear_caches_after_module():
    yield
    clear_caches()


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        expected = {"fig1b", "fig6a", "fig6b", "fig7a", "fig7b", "fig8", "fig9", "table1"}
        assert expected <= set(EXPERIMENTS)

    def test_register_decorator(self):
        @register_experiment("dummy_test_experiment")
        def run() -> ExperimentResult:
            return ExperimentResult("dummy_test_experiment", "t", ["a"], [[1]])

        assert EXPERIMENTS["dummy_test_experiment"]().rows == [[1]]
        del EXPERIMENTS["dummy_test_experiment"]

    def test_result_table_and_serialization(self, tmp_path):
        result = ExperimentResult("x", "title", ["a", "b"], [[1, 2.0]], notes=["n"])
        text = result.as_table()
        assert "title" in text and "note: n" in text
        save_json(tmp_path / "x.json", {"rows": result.rows})


class TestWorkloadRuns:
    def test_prepare_run_cached(self):
        a = prepare_run("deformable_detr", scale="tiny", num_layers=1, seed=0)
        b = prepare_run("deformable_detr", scale="tiny", num_layers=1, seed=0)
        assert a is b
        assert a.baseline_memory.shape == (a.spec.num_tokens, 256)

    def test_defa_run_cached(self):
        run = prepare_run("deformable_detr", scale="tiny", num_layers=1, seed=0)
        config = DEFAConfig.paper_default()
        a = run_defa_cached(run, config, "deformable_detr", "tiny", seed=0)
        b = run_defa_cached(run, config, "deformable_detr", "tiny", seed=0)
        assert a is b


class TestFastExperiments:
    def test_fig1b(self):
        result = fig1b_latency_breakdown.run(scale="paper")
        assert len(result.rows) == 3
        for row in result.rows:
            measured, published = row[1], row[2]
            assert 50.0 < measured < 80.0
            assert abs(measured - published) < 15.0

    def test_fig8(self):
        result = fig8_breakdown.run()
        data = result.data
        assert 2.0 < data["total_area_mm2"] < 3.5
        assert data["area_fractions"]["sram"] > 0.5
        assert data["energy_fractions"]["dram"] > max(
            data["energy_fractions"]["sram"], data["energy_fractions"]["logic"]
        )

    def test_table1(self):
        result = table1_asic_comparison.run()
        assert len(result.rows) == 5
        improvements = result.data["ee_improvements"]
        assert all(v > 1.0 for v in improvements.values())

    def test_published_table1_improvements(self):
        result = table1_asic_comparison.run()
        published = result.data["published_ee_improvements"]
        assert published["ELSA"] == pytest.approx(3.7, abs=0.1)


class TestAlgorithmExperimentsTiny:
    """Slower experiments exercised at the tiny scale to keep CI fast."""

    def test_fig6b_shape_of_result(self):
        result = fig6b_reduction.run(scale="tiny")
        assert len(result.rows) == 3
        for name, payload in result.data.items():
            assert 0.5 < payload["sampling_point_reduction"] < 1.0
            assert 0.0 < payload["flops_reduction"] < 1.0

    def test_fig7a_boost_above_one(self):
        result = fig7a_parallelism.run(scale="tiny")
        for name, payload in result.data.items():
            assert payload["boost"] > 1.2

    def test_pruning_stats_summary(self):
        run = prepare_run("deformable_detr", scale="tiny", seed=0)
        defa = run_defa_cached(run, DEFAConfig.paper_default(), "deformable_detr", "tiny", seed=0)
        report = collect_pruning_stats(defa, "deformable_detr")
        summary = summarize_reports([report, report])
        assert summary["sampling_point_reduction"] == pytest.approx(
            report.sampling_point_reduction
        )
