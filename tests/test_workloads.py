"""Tests for workload specs, synthetic scenes, the backbone, datasets and traces."""

import numpy as np
import pytest

from repro.nn.backbone import SyntheticFPNBackbone
from repro.nn.detection_head import PrototypeDetectionHead
from repro.nn.models import MODEL_NAMES, build_encoder, get_model_config, list_model_configs
from repro.workloads.dataset import SyntheticDetectionDataset
from repro.workloads.specs import SCALE_PRESETS, get_workload, list_workloads
from repro.workloads.synthetic_images import SceneGenerator
from repro.workloads.traces import generate_layer_traces, synthetic_workload_input


class TestModelConfigs:
    def test_three_benchmarks(self):
        assert set(MODEL_NAMES) == {"deformable_detr", "dn_detr", "dino"}
        assert len(list_model_configs()) == 3

    def test_aliases(self):
        assert get_model_config("De DETR").name == "deformable_detr"
        assert get_model_config("DN-DETR").name == "dn_detr"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model_config("yolo")

    def test_published_numbers_present(self):
        for config in list_model_configs():
            assert config.published.baseline_ap > config.published.defa_ap
            assert 0.5 < config.published.msgs_latency_fraction < 0.7

    def test_build_encoder_matches_config(self):
        config = get_model_config("deformable_detr")
        encoder = build_encoder(config, rng=0)
        assert len(encoder.layers) == config.num_encoder_layers
        assert encoder.layers[0].self_attn.num_levels == config.num_levels


class TestWorkloadSpecs:
    def test_paper_scale_token_count(self):
        spec = get_workload("deformable_detr", "paper")
        # 100x134 + 50x67 + 25x34 + 13x17 = 17821 tokens
        assert spec.num_tokens == 17821
        assert spec.num_sampling_points_per_query == 128

    def test_all_scales_available(self):
        for scale in SCALE_PRESETS:
            assert get_workload("dino", scale).num_tokens > 0

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_workload("dino", "huge")

    def test_list_workloads(self):
        assert len(list_workloads("tiny")) == 3

    def test_flops_breakdown_consistency(self):
        spec = get_workload("deformable_detr", "tiny")
        breakdown = spec.layer_flops_breakdown()
        assert sum(breakdown.values()) == spec.layer_flops()
        assert spec.encoder_attention_flops() == spec.layer_flops() * 6

    def test_multi_scale_ratio_near_paper(self):
        spec = get_workload("deformable_detr", "paper")
        assert 19.0 < spec.multi_scale_to_single_scale_ratio() < 23.0

    def test_describe_keys(self):
        desc = get_workload("dino", "tiny").describe()
        assert "num_tokens" in desc and "encoder_gflops" in desc


class TestSyntheticScenes:
    def test_scene_properties(self):
        generator = SceneGenerator(image_height=64, image_width=96, rng=0)
        scene = generator.generate()
        assert scene.image.shape == (64, 96, 3)
        assert scene.image.min() >= 0.0 and scene.image.max() <= 1.0
        assert scene.boxes.shape == (scene.num_objects, 4)
        assert np.all(scene.boxes[:, 2] > scene.boxes[:, 0])
        assert np.all((scene.labels >= 0) & (scene.labels < generator.num_classes))

    def test_batch_generation(self):
        generator = SceneGenerator(image_height=32, image_width=32, rng=0)
        scenes = generator.generate_batch(3)
        assert len(scenes) == 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SceneGenerator(num_classes=0)
        with pytest.raises(ValueError):
            SceneGenerator(min_objects=5, max_objects=2)

    def test_objects_change_the_image(self):
        generator = SceneGenerator(image_height=64, image_width=64, min_objects=3, rng=0)
        scene = generator.generate()
        box = scene.boxes[0]
        cx = int((box[0] + box[2]) / 2 * 64)
        cy = int((box[1] + box[3]) / 2 * 64)
        background = scene.image[0, 0]
        assert not np.allclose(scene.image[cy, cx], background, atol=0.05)


class TestBackbone:
    def test_pyramid_shapes(self):
        backbone = SyntheticFPNBackbone(d_model=64, strides=(8, 16), rng=0)
        image = np.random.default_rng(0).random((64, 96, 3)).astype(np.float32)
        pyramid = backbone(image)
        assert [s.as_tuple() for s in pyramid.spatial_shapes] == [(8, 12), (4, 6)]
        assert pyramid.flat.shape == (8 * 12 + 4 * 6, 64)
        assert len(pyramid.levels) == 2

    def test_feature_energy_concentrated_on_objects(self):
        generator = SceneGenerator(image_height=64, image_width=64, min_objects=2, max_objects=3, rng=1)
        scene = generator.generate()
        backbone = SyntheticFPNBackbone(d_model=32, strides=(8,), rng=0)
        level = backbone(scene.image).levels[0]
        energy = np.linalg.norm(level, axis=-1)
        box = scene.boxes[0]
        cx = int((box[0] + box[2]) / 2 * level.shape[1])
        cy = int((box[1] + box[3]) / 2 * level.shape[0])
        assert energy[cy, cx] != pytest.approx(float(np.median(energy)), rel=1e-3)

    def test_invalid_image(self):
        backbone = SyntheticFPNBackbone(d_model=16, rng=0)
        with pytest.raises(ValueError):
            backbone(np.zeros((10, 10)))


class TestTracesAndDataset:
    def test_synthetic_workload_input(self, tiny_spec):
        features, layout = synthetic_workload_input(tiny_spec, rng=0)
        assert features.shape == (tiny_spec.num_tokens, 256)
        assert layout.num_objects == 8

    def test_generate_layer_traces(self, tiny_spec):
        traces = generate_layer_traces(tiny_spec, num_layers=1, rng=0)
        assert len(traces) == 1
        trace = traces[0]
        assert trace.attention_weights.shape == (
            tiny_spec.num_tokens,
            8,
            4,
            4,
        )
        assert trace.trace.flat_indices.shape[-1] == 4

    def test_generate_traces_requires_layout_with_custom_features(self, tiny_spec):
        features = np.zeros((tiny_spec.num_tokens, 256), dtype=np.float32)
        with pytest.raises(ValueError):
            generate_layer_traces(tiny_spec, features=features, layout=None, fit_heads=True)

    def test_dataset_splits(self):
        config = get_model_config("deformable_detr")
        dataset = SyntheticDetectionDataset(
            config, image_height=64, image_width=96, num_calibration=2, num_eval=2, rng=0
        )
        assert len(dataset.calibration) == 2 and len(dataset.evaluation) == 2
        sample = dataset.calibration[0]
        assert sample.features.shape[1] == config.d_model
        assert len(dataset.spatial_shapes) == len(config.strides)

    def test_dataset_invalid_split(self):
        config = get_model_config("deformable_detr")
        with pytest.raises(ValueError):
            SyntheticDetectionDataset(config, 64, 96, num_calibration=0)


class TestDetectionHead:
    def test_calibrate_and_detect_recovers_objects(self):
        rng = np.random.default_rng(0)
        from repro.utils.shapes import LevelShape

        shapes = [LevelShape(16, 16)]
        d_model = 16
        prototype_dir = np.zeros(d_model)
        prototype_dir[0] = 5.0
        memory = rng.normal(0, 0.1, size=(256, d_model))
        # plant an object signature at pixel (4, 4)
        memory[4 * 16 + 4] += prototype_dir
        boxes = np.array([[4 / 16 - 0.05, 4 / 16 - 0.05, 4 / 16 + 0.1, 4 / 16 + 0.1]])
        labels = np.array([0])
        head = PrototypeDetectionHead(num_classes=1, score_threshold=0.3)
        head.calibrate([memory], shapes, [boxes], [labels])
        result = head.detect(memory, shapes)
        assert result.num_detections >= 1
        best = result.boxes[np.argmax(result.scores)]
        cx = (best[0] + best[2]) / 2
        cy = (best[1] + best[3]) / 2
        assert abs(cx - 4.5 / 16) < 0.15 and abs(cy - 4.5 / 16) < 0.15

    def test_detect_requires_calibration(self):
        from repro.utils.shapes import LevelShape

        head = PrototypeDetectionHead(num_classes=1)
        with pytest.raises(RuntimeError):
            head.detect(np.zeros((4, 8)), [LevelShape(2, 2)])
