"""Tests for the DEFA algorithm level: config, FWP, PAP, range narrowing, FLOPs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DEFAConfig
from repro.core.flops import msdeform_attn_flops
from repro.core.fwp import apply_fmap_mask, compute_fmap_mask, mask_storage_bits
from repro.core.pap import compute_point_mask, point_probability_histogram
from repro.core.range_narrowing import RangeNarrowing, full_fmap_storage_bits
from repro.core.sampling_stats import frequency_stats, sampled_frequency, split_frequency_by_level
from repro.nn.tensor_utils import softmax
from repro.utils.shapes import LevelShape


class TestDEFAConfig:
    def test_defaults_enable_everything(self):
        config = DEFAConfig()
        assert config.enable_fwp and config.enable_pap and config.enable_range_narrowing
        assert config.quant_bits == 12

    def test_baseline_disables_everything(self):
        config = DEFAConfig.baseline()
        assert not config.enable_fwp and not config.enable_pap
        assert config.quant_bits is None

    def test_with_overrides(self):
        config = DEFAConfig().with_overrides(fwp_k=1.5)
        assert config.fwp_k == 1.5
        assert config.enable_pap

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DEFAConfig(pap_threshold=1.5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            DEFAConfig(fwp_k=-0.1)

    def test_invalid_quant_bits(self):
        with pytest.raises(ValueError):
            DEFAConfig(quant_bits=1)

    def test_effective_ranges_levelwise(self):
        config = DEFAConfig(level_ranges=(8.0, 6.0, 4.0, 3.0))
        assert config.effective_ranges(4) == (8.0, 6.0, 4.0, 3.0)

    def test_effective_ranges_unified(self):
        config = DEFAConfig(level_ranges=(8.0, 6.0, 4.0, 3.0), unified_range=True)
        assert config.effective_ranges(4) == (8.0, 8.0, 8.0, 8.0)

    def test_effective_ranges_disabled(self):
        config = DEFAConfig.baseline()
        assert all(np.isinf(r) for r in config.effective_ranges(4))

    def test_effective_ranges_too_few(self):
        config = DEFAConfig(level_ranges=(8.0, 6.0))
        with pytest.raises(ValueError):
            config.effective_ranges(4)

    def test_describe(self):
        desc = DEFAConfig().describe()
        assert "INT12" in desc["quantization"]


class TestPAP:
    def _probs(self, n_q=50, n_h=2, n_l=3, n_p=4, sharp=4.0, seed=0):
        rng = np.random.default_rng(seed)
        logits = sharp * rng.standard_normal((n_q, n_h, n_l * n_p))
        return softmax(logits, axis=-1).reshape(n_q, n_h, n_l, n_p)

    def test_mask_prunes_low_probabilities(self):
        probs = self._probs()
        result = compute_point_mask(probs, threshold=0.05)
        assert result.pruned_fraction > 0.3
        assert np.all(probs[~result.point_mask] < 0.05)

    def test_zero_threshold_keeps_everything(self):
        probs = self._probs()
        result = compute_point_mask(probs, threshold=0.0)
        assert result.keep_fraction == 1.0

    def test_keep_top1_guarantee(self):
        probs = self._probs()
        result = compute_point_mask(probs, threshold=0.99, keep_top1=True)
        per_pair = result.point_mask.reshape(probs.shape[0], probs.shape[1], -1).sum(axis=-1)
        assert np.all(per_pair >= 1)

    def test_renormalization(self):
        probs = self._probs()
        result = compute_point_mask(probs, threshold=0.05, renormalize=True)
        sums = result.attention_weights.reshape(probs.shape[0], probs.shape[1], -1).sum(axis=-1)
        assert np.allclose(sums, 1.0, atol=1e-5)

    def test_without_renormalization_mass_below_one(self):
        probs = self._probs()
        result = compute_point_mask(probs, threshold=0.05, renormalize=False)
        assert result.kept_probability_mass <= 1.0 + 1e-6

    def test_high_sharpness_gives_high_reduction(self):
        """The paper's motivation: softmax exponentially amplifies differences."""
        flat = compute_point_mask(self._probs(sharp=0.1), threshold=0.04)
        sharp = compute_point_mask(self._probs(sharp=5.0), threshold=0.04)
        assert sharp.pruned_fraction > flat.pruned_fraction

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            compute_point_mask(np.zeros((3, 3)), threshold=0.1)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            compute_point_mask(self._probs(), threshold=1.0)

    def test_histogram(self):
        edges, counts = point_probability_histogram(self._probs(), num_bins=20)
        assert len(edges) == 21 and counts.sum() == 50 * 2 * 3 * 4

    @given(st.floats(0.0, 0.2))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_threshold(self, threshold):
        probs = self._probs(seed=7)
        low = compute_point_mask(probs, threshold=threshold)
        high = compute_point_mask(probs, threshold=min(threshold + 0.05, 0.99))
        assert high.pruned_fraction >= low.pruned_fraction - 1e-9

    @given(
        seed=st.integers(0, 2**31 - 1),
        sharp=st.floats(0.1, 8.0),
        threshold=st.floats(0.0, 0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_keep_top1_invariant(self, seed, sharp, threshold):
        """With ``keep_top1=True`` the argmax point of every (query, head) is kept.

        This must hold for *any* probability tensor and threshold — even ones
        where the threshold exceeds every probability of a pair.
        """
        probs = self._probs(n_q=12, sharp=sharp, seed=seed)
        result = compute_point_mask(probs, threshold=threshold, keep_top1=True)
        n_q, n_h = probs.shape[:2]
        flat_probs = probs.reshape(n_q, n_h, -1)
        flat_mask = result.point_mask.reshape(n_q, n_h, -1)
        top = np.argmax(flat_probs, axis=-1)
        q_idx, h_idx = np.meshgrid(np.arange(n_q), np.arange(n_h), indexing="ij")
        assert flat_mask[q_idx, h_idx, top].all()
        # ... and every kept point is either above threshold or the top-1.
        kept_not_top = flat_mask.copy()
        kept_not_top[q_idx, h_idx, top] = False
        assert np.all(flat_probs[kept_not_top] >= threshold)


class TestFWP:
    def _shapes(self):
        return [LevelShape(4, 4), LevelShape(2, 2)]

    def test_threshold_formula(self):
        shapes = self._shapes()
        freq = np.zeros(20)
        freq[:4] = 10.0  # mean of level 0 = 40/16 = 2.5
        result = compute_fmap_mask(freq, shapes, k=1.0)
        assert result.thresholds[0] == pytest.approx(2.5)
        # only the 4 high-frequency pixels survive in level 0
        assert result.fmap_mask[:16].sum() == 4
        # level 1 is all zeros -> threshold 0 -> everything kept
        assert result.fmap_mask[16:].all()

    def test_k_zero_keeps_all(self):
        freq = np.random.default_rng(0).integers(0, 10, 20).astype(float)
        result = compute_fmap_mask(freq, self._shapes(), k=0.0)
        assert result.keep_fraction == 1.0

    def test_monotone_in_k(self):
        freq = np.random.default_rng(0).integers(0, 10, 20).astype(float)
        kept = [
            compute_fmap_mask(freq, self._shapes(), k=k).keep_fraction for k in (0.2, 0.6, 1.2)
        ]
        assert kept[0] >= kept[1] >= kept[2]

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            compute_fmap_mask(np.zeros(5), self._shapes(), k=1.0)

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            compute_fmap_mask(np.zeros(20), self._shapes(), k=-1.0)

    @given(
        seed=st.integers(0, 2**31 - 1),
        k=st.floats(0.0, 3.0),
        max_freq=st.integers(1, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_fwp_invariants_match_eq2(self, seed, k, max_freq):
        """Property check of Eq. 2: per-level thresholds are ``k * mean`` and
        keep-fractions always lie in ``[0, 1]``."""
        shapes = self._shapes()
        rng = np.random.default_rng(seed)
        freq = rng.integers(0, max_freq + 1, size=20).astype(float)
        result = compute_fmap_mask(freq, shapes, k=k)
        assert np.all(result.level_keep_fractions >= 0.0)
        assert np.all(result.level_keep_fractions <= 1.0)
        assert 0.0 <= result.keep_fraction <= 1.0
        # Recompute the Eq. 2 thresholds independently, level by level.
        offset = 0
        for lvl, shape in enumerate(shapes):
            level_freq = freq[offset : offset + shape.num_pixels]
            expected_threshold = k * level_freq.mean()
            assert result.thresholds[lvl] == pytest.approx(expected_threshold)
            expected_keep = level_freq >= expected_threshold
            np.testing.assert_array_equal(
                result.fmap_mask[offset : offset + shape.num_pixels], expected_keep
            )
            assert result.level_keep_fractions[lvl] == pytest.approx(expected_keep.mean())
            offset += shape.num_pixels

    def test_apply_fmap_mask_zeroes_rows(self):
        value = np.ones((6, 3), dtype=np.float32)
        mask = np.array([True, False, True, True, False, True])
        out = apply_fmap_mask(value, mask)
        assert np.allclose(out[1], 0.0) and np.allclose(out[0], 1.0)
        assert np.allclose(value, 1.0)  # original untouched

    def test_apply_none_mask_is_identity(self):
        value = np.ones((4, 2), dtype=np.float32)
        assert apply_fmap_mask(value, None) is value

    def test_mask_storage_bits(self):
        assert mask_storage_bits(np.ones(100, dtype=bool)) == 100


class TestBatchedPruningHelpers:
    def _batched_trace(self, batch=3, seed=0):
        from repro.nn.grid_sample import multi_scale_neighbors_batched

        shapes = [LevelShape(4, 4), LevelShape(2, 2)]
        rng = np.random.default_rng(seed)
        locs = rng.uniform(-0.1, 1.1, size=(batch, 7, 2, 2, 3, 2)).astype(np.float32)
        return shapes, multi_scale_neighbors_batched(shapes, locs), rng

    def test_sampled_frequency_batched_matches_per_image(self):
        from repro.core.sampling_stats import sampled_frequency_batched

        shapes, trace, rng = self._batched_trace()
        mask = rng.random((3, 7, 2, 2, 3)) > 0.4
        batched = sampled_frequency_batched(trace, point_mask=mask)
        for b in range(3):
            single = sampled_frequency(trace.image(b), point_mask=mask[b])
            np.testing.assert_array_equal(batched[b], single)

    def test_compute_fmap_mask_batched_matches_per_image(self):
        from repro.core.fwp import compute_fmap_mask_batched

        shapes = [LevelShape(4, 4), LevelShape(2, 2)]
        rng = np.random.default_rng(1)
        freq = rng.integers(0, 9, size=(3, 20)).astype(float)
        batched = compute_fmap_mask_batched(freq, shapes, k=0.8)
        assert len(batched) == 3
        for b in range(3):
            single = compute_fmap_mask(freq[b], shapes, k=0.8)
            np.testing.assert_array_equal(batched[b].fmap_mask, single.fmap_mask)
            np.testing.assert_allclose(batched[b].thresholds, single.thresholds)
            np.testing.assert_allclose(
                batched[b].level_keep_fractions, single.level_keep_fractions
            )

    def test_compute_fmap_mask_batched_validation(self):
        from repro.core.fwp import compute_fmap_mask_batched

        shapes = [LevelShape(4, 4), LevelShape(2, 2)]
        with pytest.raises(ValueError):
            compute_fmap_mask_batched(np.zeros(20), shapes, k=1.0)
        with pytest.raises(ValueError):
            compute_fmap_mask_batched(np.zeros((2, 5)), shapes, k=1.0)
        with pytest.raises(ValueError):
            compute_fmap_mask_batched(np.zeros((2, 20)), shapes, k=-1.0)


class TestSamplingStats:
    def test_sampled_frequency_counts_neighbors(self, tiny_defa_output):
        freq = sampled_frequency(tiny_defa_output.trace)
        active = tiny_defa_output.trace.valid
        assert freq.sum() == np.count_nonzero(active)

    def test_point_mask_reduces_counts(self, tiny_defa_output):
        full = sampled_frequency(tiny_defa_output.trace)
        masked = sampled_frequency(tiny_defa_output.trace, point_mask=tiny_defa_output.point_mask)
        assert masked.sum() <= full.sum()

    def test_split_by_level(self, tiny_defa_output, tiny_spec):
        freq = sampled_frequency(tiny_defa_output.trace)
        maps = split_frequency_by_level(freq, tiny_spec.spatial_shapes)
        assert len(maps) == len(tiny_spec.spatial_shapes)
        assert sum(m.sum() for m in maps) == freq.sum()

    def test_frequency_stats_uniform(self):
        stats = frequency_stats(np.full(100, 5.0))
        assert stats.gini == pytest.approx(0.0, abs=0.02)
        assert stats.zero_fraction == 0.0

    def test_frequency_stats_skewed(self):
        freq = np.zeros(100)
        freq[:5] = 100.0
        stats = frequency_stats(freq)
        assert stats.gini > 0.9
        assert stats.zero_fraction == 0.95
        assert stats.top10_share == pytest.approx(1.0)

    def test_frequency_stats_empty_raises(self):
        with pytest.raises(ValueError):
            frequency_stats(np.zeros(0))


class TestRangeNarrowing:
    def test_clamp(self):
        narrowing = RangeNarrowing((2.0, 1.0))
        offsets = np.zeros((1, 1, 2, 1, 2), dtype=np.float32)
        offsets[..., 0, :, 0] = 5.0
        offsets[..., 1, :, 1] = -3.0
        clamped = narrowing.clamp_offsets(offsets)
        assert clamped[..., 0, :, 0].max() == pytest.approx(2.0)
        assert clamped[..., 1, :, 1].min() == pytest.approx(-1.0)

    def test_clipping_fraction(self):
        narrowing = RangeNarrowing((1.0,))
        offsets = np.array([[[[[0.5, 2.0]]]]], dtype=np.float32)
        assert narrowing.clipping_fraction(offsets) == pytest.approx(0.5)

    def test_unified_costs_more_storage(self):
        narrowing = RangeNarrowing((8.0, 7.0, 7.0, 6.0))
        overhead = narrowing.unified_storage_overhead(d_model=256)
        assert 0.1 < overhead < 0.5  # the paper quotes ~25 % extra

    def test_unified_of_uniform_is_identity(self):
        narrowing = RangeNarrowing((4.0, 4.0))
        assert narrowing.unified_storage_overhead(d_model=64) == pytest.approx(0.0)

    def test_storage_capped_by_level_size(self):
        narrowing = RangeNarrowing((100.0,))
        shapes = [LevelShape(4, 4)]
        capped = narrowing.storage_bits(d_model=8, spatial_shapes=shapes)
        assert capped == 16 * 8 * 12

    def test_full_fmap_storage_matches_paper_magnitude(self):
        """Sec 2.2: holding the full multi-scale fmap needs ~10 MB of buffer."""
        from repro.utils.shapes import make_level_shapes

        shapes = make_level_shapes(800, 1066, (8, 16, 32, 64))
        mb = full_fmap_storage_bits(shapes, d_model=256, bits_per_element=12) / 8 / 1024 / 1024
        assert 6.0 < mb < 12.0

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            RangeNarrowing(())
        with pytest.raises(ValueError):
            RangeNarrowing((0.0,))

    def test_mismatched_offsets_raise(self):
        narrowing = RangeNarrowing((2.0, 1.0))
        with pytest.raises(ValueError):
            narrowing.clamp_offsets(np.zeros((1, 1, 3, 1, 2)))


class TestFlops:
    def test_dense_equals_pruned_without_masks(self):
        breakdown = msdeform_attn_flops(64, 4, 3, 2, num_queries=100, num_tokens=100)
        assert breakdown.total_dense() == breakdown.total_pruned()
        assert breakdown.reduction() == 0.0

    def test_pruning_reduces_flops(self):
        dense = msdeform_attn_flops(64, 4, 3, 2, 100, 100)
        pruned = msdeform_attn_flops(64, 4, 3, 2, 100, 100, points_kept=100 * 4 * 3 * 2 // 5, pixels_kept=60)
        assert pruned.total_pruned() < dense.total_dense()
        assert 0.0 < pruned.reduction() < 1.0

    def test_output_proj_not_in_default_total(self):
        breakdown = msdeform_attn_flops(64, 4, 3, 2, 100, 100)
        assert breakdown.total_dense(include_output_proj=True) > breakdown.total_dense()

    def test_value_proj_scales_with_pixels(self):
        full = msdeform_attn_flops(64, 4, 3, 2, 100, 100)
        half = msdeform_attn_flops(64, 4, 3, 2, 100, 100, pixels_kept=50)
        assert half.pruned["value_proj"] == full.dense["value_proj"] // 2

    def test_invalid_points_kept(self):
        with pytest.raises(ValueError):
            msdeform_attn_flops(64, 4, 3, 2, 10, 10, points_kept=10**9)

    def test_invalid_head_split(self):
        with pytest.raises(ValueError):
            msdeform_attn_flops(65, 4, 3, 2, 10, 10)

    def test_merge(self):
        a = msdeform_attn_flops(64, 4, 3, 2, 100, 100)
        merged = a.merged_with(a)
        assert merged.total_dense() == 2 * a.total_dense()
